"""Operational monitoring: one snapshot across a whole deployment.

Production caches live or die by their observability.  Historically this
module hand-copied every counter a component kept into an ad-hoc row list;
it is now a thin view over :class:`repro.telemetry.MetricsRegistry`.  Each
component publishes its own ``metric_rows()`` provider and
:func:`take_snapshot` simply registers whichever components are given and
collects — same rows, same order, same rendering, but one naming scheme
(:data:`repro.telemetry.METRIC_NAMES`) and no duplicated bookkeeping.

:class:`DeploymentSnapshot` survives as a **deprecated shim** so existing
call sites keep working: ``add``/``get``/``names``/``render`` delegate to
the backing registry, and ``add`` emits :class:`DeprecationWarning`
(register a provider or use :meth:`~repro.telemetry.MetricsRegistry.record`
instead).  The only name change relative to the pre-registry output is
``objects.memoized`` → ``bem.objects.memoized``
(:data:`repro.telemetry.DEPRECATED_ALIASES`); ``get`` resolves the old
spelling with a warning.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..network.firewall import Firewall
from ..network.sniffer import Sniffer
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.naming import DEPRECATED_ALIASES
from .reporting import format_table


class DeploymentSnapshot:
    """Point-in-time health view of one BEM/DPC deployment.

    .. deprecated::
        Kept as a compatibility facade over
        :class:`repro.telemetry.MetricsRegistry`.  New code should use the
        registry directly (``registry.collect()`` /
        :func:`repro.telemetry.render_metrics`).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def rows(self) -> List[Tuple[str, object]]:
        """Every metric row, in provider registration order."""
        return self.registry.collect()

    def add(self, name: str, value: object) -> None:
        """Append one metric row.  Deprecated: use the registry."""
        warnings.warn(
            "DeploymentSnapshot.add() is deprecated; register a metric_rows()"
            " provider or use MetricsRegistry.record() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.registry.record(name, value)

    def get(self, name: str) -> object:
        """Look up a metric by name; raises KeyError if absent.

        Pre-registry spellings in
        :data:`repro.telemetry.DEPRECATED_ALIASES` are resolved to their
        canonical names with a :class:`DeprecationWarning`.
        """
        canonical = DEPRECATED_ALIASES.get(name)
        for row_name, value in self.registry.collect():
            if row_name == name:
                return value
            if canonical is not None and row_name == canonical:
                warnings.warn(
                    "metric %r was renamed to %r" % (name, canonical),
                    DeprecationWarning,
                    stacklevel=2,
                )
                return value
        raise KeyError(name)

    def names(self) -> List[str]:
        """All metric names, in collection order."""
        return [name for name, _ in self.registry.collect()]

    def render(self) -> str:
        """ASCII table of every collected metric."""
        return format_table(["metric", "value"], self.rows)


def take_snapshot(
    bem: Optional[BackEndMonitor] = None,
    dpc: Optional[DynamicProxyCache] = None,
    firewall: Optional[Firewall] = None,
    sniffer: Optional[Sniffer] = None,
    recovery=None,
    overload=None,
    channel=None,
    db=None,
    breaker=None,
    tracer=None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentSnapshot:
    """Collect the current counters of whichever components are given.

    A thin view over :class:`repro.telemetry.MetricsRegistry`: each non-None
    component is registered as a row provider (they all expose
    ``metric_rows()``) and the returned :class:`DeploymentSnapshot` reads
    straight from ``registry.collect()``.  ``recovery``, ``overload``,
    ``db``, ``breaker`` and ``tracer`` are duck-typed so this module stays
    import-independent of those subsystems; ``breaker`` may be a
    :class:`repro.overload.breaker.CircuitBreaker` (its ``stats`` carries
    the rows) or the stats object itself.  Pass ``registry`` to accumulate
    into an existing registry instead of a fresh one.
    """
    reg = registry if registry is not None else MetricsRegistry()
    if breaker is not None:
        breaker = getattr(breaker, "stats", breaker)
    for component in (
        bem, dpc, firewall, sniffer, recovery, overload, channel,
        db, breaker, tracer,
    ):
        if component is not None:
            reg.register_provider(component)
    return DeploymentSnapshot(registry=reg)
