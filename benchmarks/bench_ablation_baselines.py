"""Ablation: the Section 3 comparison, quantified on one workload.

Four systems serve the identical BooksOnline request stream (mixed
registered/anonymous visitors).  Reported per system: origin-link payload
bytes, cache hit ratio, and the fraction of *wrong pages* served (vs the
uncached oracle).  This is the paper's Table-of-tradeoffs (§3.3) as data:

* page-level proxy cache — big byte savings, wrong pages;
* ESI assembly          — biggest byte savings, wrong pages (fixed layout);
* back-end fragment cache — correct, zero byte savings;
* DPC                   — correct AND large byte savings.
"""

import random

from repro.appserver import HttpRequest
from repro.baselines.esi import EsiAssembler
from repro.baselines.page_cache import PageLevelCache
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.baselines.backend_cache import BackendFragmentCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books

REQUESTS = 120


def workload(seed=21):
    rng = random.Random(seed)
    stream = []
    for _ in range(REQUESTS):
        category = rng.choice(["Fiction", "Science", "History", "Children"])
        if rng.random() < 0.5:
            user = "user%03d" % rng.randrange(6)
            stream.append(
                HttpRequest("/catalog.jsp", {"categoryID": category},
                            user_id=user, session_id="sess-%s" % user)
            )
        else:
            stream.append(
                HttpRequest("/catalog.jsp", {"categoryID": category},
                            session_id="anon-%d" % rng.randrange(10))
            )
    return stream


def run_no_cache():
    server = books.build_server(cost_model=FREE)
    origin_bytes = 0
    for request in workload():
        origin_bytes += server.handle(request).payload_bytes
    return dict(system="no cache", origin_bytes=origin_bytes,
                hit_ratio=0.0, wrong_pages=0)


def run_page_cache():
    clock = SimulatedClock()
    server = books.build_server(clock=clock, cost_model=FREE)
    cache = PageLevelCache(clock, ttl_s=600.0)
    wrong = 0
    for request in workload():
        served, _ = cache.serve(request, server.handle)
        if served.body != server.render_reference_page(request):
            wrong += 1
    return dict(system="page-level proxy", origin_bytes=cache.stats.origin_bytes,
                hit_ratio=cache.stats.hit_ratio, wrong_pages=wrong)


def run_esi():
    server = books.build_server(cost_model=FREE)
    esi = EsiAssembler(server)
    wrong = 0
    for request in workload():
        html, _ = esi.serve(request)
        if html != server.render_reference_page(request):
            wrong += 1
    return dict(system="ESI assembly", origin_bytes=esi.stats.origin_payload_bytes,
                hit_ratio=esi.stats.template_hit_ratio, wrong_pages=wrong)


def run_backend():
    clock = SimulatedClock()
    cache = BackendFragmentCache(capacity=1024, clock=clock)
    server = books.build_server(clock=clock, bem=cache, cost_model=FREE)
    cache.attach_database(server.services.db.bus)
    origin_bytes = 0
    wrong = 0
    for request in workload():
        response = server.handle(request)
        origin_bytes += response.payload_bytes
        if response.body != server.render_reference_page(request):
            wrong += 1
    return dict(system="back-end cache", origin_bytes=origin_bytes,
                hit_ratio=cache.hit_ratio, wrong_pages=wrong)


def run_dpc():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=1024)
    origin_bytes = 0
    wrong = 0
    for request in workload():
        response = server.handle(request)
        origin_bytes += response.payload_bytes
        page = dpc.process_response(response.body)
        if page.html != server.render_reference_page(request):
            wrong += 1
    return dict(system="DPC (this paper)", origin_bytes=origin_bytes,
                hit_ratio=bem.hit_ratio, wrong_pages=wrong)


def test_baseline_comparison(benchmark, report):
    def run_all():
        return [run_no_cache(), run_page_cache(), run_esi(), run_backend(),
                run_dpc()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {row["system"]: row for row in results}
    base = by_name["no cache"]["origin_bytes"]

    report(
        "Section 3 comparison on one BooksOnline workload (%d requests)"
        % REQUESTS,
        ["system", "origin bytes", "vs no cache", "hit ratio",
         "wrong pages"],
        [
            [
                row["system"],
                row["origin_bytes"],
                "%.1f%%" % (100.0 * row["origin_bytes"] / base),
                "%.3f" % row["hit_ratio"],
                "%d/%d" % (row["wrong_pages"], REQUESTS),
            ]
            for row in results
        ],
    )

    # The paper's qualitative table, asserted:
    assert by_name["page-level proxy"]["wrong_pages"] > 0
    assert by_name["ESI assembly"]["wrong_pages"] > 0
    assert by_name["back-end cache"]["wrong_pages"] == 0
    assert by_name["DPC (this paper)"]["wrong_pages"] == 0
    assert by_name["back-end cache"]["origin_bytes"] == base
    assert by_name["DPC (this paper)"]["origin_bytes"] < 0.6 * base
