"""The §6/§8 deployment case study: order-of-magnitude reductions.

"Our implementation results demonstrate that our system is not only
capable of providing order-of-magnitude reductions in bandwidth
requirements, but also order-of-magnitude reductions in end-to-end
response times."

Reproduced in the deployment's operating regime — large personalized
fragments, high locality — on the simulated testbed, plus a run of the
financial-portal site itself.
"""

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.harness.experiments import case_study
from repro.network.clock import SimulatedClock
from repro.sites import financial


def test_case_study_order_of_magnitude(benchmark, report):
    result = benchmark.pedantic(
        lambda: case_study(requests=1000, warmup=250), rounds=1, iterations=1
    )

    report(
        "Case study: DPC vs no-cache at deployment operating point",
        ["metric", "no cache", "DPC", "reduction"],
        [
            [
                "origin-link bytes",
                result.origin_bytes_no_cache,
                result.origin_bytes_dpc,
                "%.1fx" % result.bandwidth_reduction_factor,
            ],
            [
                "mean response time (ms)",
                "%.2f" % (result.mean_rt_no_cache * 1000),
                "%.2f" % (result.mean_rt_dpc * 1000),
                "%.1fx" % result.response_time_reduction_factor,
            ],
            [
                "p95 response time (ms)",
                "%.2f" % (result.p95_rt_no_cache * 1000),
                "%.2f" % (result.p95_rt_dpc * 1000),
                "%.1fx" % (result.p95_rt_no_cache / max(result.p95_rt_dpc, 1e-12)),
            ],
            ["measured hit ratio", "-", "%.3f" % result.measured_hit_ratio, "-"],
        ],
    )

    # The order-of-magnitude claims.
    assert result.bandwidth_reduction_factor >= 10.0
    assert result.response_time_reduction_factor >= 10.0


def test_case_study_financial_portal(benchmark, report):
    """The portal itself: warm per-user pages built almost entirely from
    shared fragments."""

    def run_portal():
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=2048, clock=clock)
        server = financial.build_server(clock=clock, bem=bem)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=2048)

        cold_bytes = warm_bytes = 0
        users = ["trader%03d" % i for i in range(20)]
        for user in users:  # cold pass
            response = server.handle(
                HttpRequest("/portfolio.jsp", user_id=user, session_id=user)
            )
            cold_bytes += response.payload_bytes
            dpc.process_response(response.body)
        for user in users:  # warm pass
            response = server.handle(
                HttpRequest("/portfolio.jsp", user_id=user, session_id=user)
            )
            warm_bytes += response.payload_bytes
            dpc.process_response(response.body)
        return cold_bytes, warm_bytes, bem.hit_ratio

    cold_bytes, warm_bytes, hit_ratio = benchmark.pedantic(
        run_portal, rounds=1, iterations=1
    )

    report(
        "Financial portal: cold vs warm origin bytes (20 traders)",
        ["pass", "origin bytes", "bytes/page"],
        [
            ["cold (first visit)", cold_bytes, cold_bytes // 20],
            ["warm (repeat visit)", warm_bytes, warm_bytes // 20],
            ["reduction", "%.1fx" % (cold_bytes / warm_bytes), "-"],
        ],
    )

    assert warm_bytes < cold_bytes
    assert hit_ratio > 0.4
