"""Microbenchmark: sentinel scan throughput, fast lane vs KMP reference.

Isolates the single hottest operation of the serve path — the linear scan
of a response body for the tag sentinel — from everything else the testbed
does.  Useful for attributing an end-to-end regression: if ``hotpath``
regresses but ``scan`` does not, the problem is in parsing/assembly or the
network model, not the scanner.
"""

from __future__ import annotations

import gc
import random
import time
from typing import Dict, List

from ..core import fastpath
from ..core.scanner import TagScanner
from ..core.template import SENTINEL

#: Size of each synthetic response body scanned per iteration.
TEXT_BYTES = 65536

#: Reduced settings for smoke runs.
SMOKE_SETTINGS: Dict[str, int] = {"iterations": 30, "pairs": 5}


def _make_text(seed: int) -> str:
    """A ``TEXT_BYTES``-long body with a few embedded sentinels."""
    rng = random.Random(seed)
    filler = "".join(
        rng.choice("abcdefghijklmnopqrstuvwxyz <>~:") for _ in range(512)
    )
    body = (filler * (TEXT_BYTES // len(filler) + 1))[:TEXT_BYTES]
    # Splice in a handful of real sentinels so both lanes do match work.
    chunk = TEXT_BYTES // 8
    return SENTINEL.join(body[i : i + chunk] for i in range(0, TEXT_BYTES, chunk))


def _timed_scan(kmp: bool, text: str, iterations: int) -> float:
    """Wall seconds for ``iterations`` scans on one lane.

    ``kmp_positions`` always runs the reference loop; the fast branch pins
    the fast lanes so the measurement is independent of the ambient
    :mod:`repro.core.fastpath` state.
    """
    scanner = TagScanner(SENTINEL)
    scan = scanner.kmp_positions if kmp else scanner.positions
    with fastpath.fast_lanes():
        start = time.perf_counter()
        for _ in range(iterations):
            scan(text)
        return time.perf_counter() - start


def run_scan(iterations: int = 100, pairs: int = 7, seed: int = 7) -> Dict[str, object]:
    """Measure scan speedup (fast over KMP); returns a JSON-ready dict.

    Uses the same paired, order-alternating, lower-quartile scheme as the
    end-to-end ``hotpath`` benchmark.  Also asserts both lanes report the
    same match positions on the benchmark text.
    """
    text = _make_text(seed)
    reference_scanner = TagScanner(SENTINEL)
    fast_scanner = TagScanner(SENTINEL)
    with fastpath.fast_lanes():
        fast_positions = fast_scanner.positions(text)
    if reference_scanner.kmp_positions(text) != fast_positions:
        raise AssertionError("scan lanes disagree on match positions")

    ratios: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _timed_scan(False, text, iterations)  # warm-up
        for index in range(pairs):
            order = (True, False) if index % 2 == 0 else (False, True)
            walls = {}
            for kmp in order:
                gc.collect()
                walls[kmp] = _timed_scan(kmp, text, iterations)
            ratios.append(walls[True] / walls[False])
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    return {
        "benchmark": "scan",
        "text_bytes": len(text),
        "iterations": iterations,
        "pairs": pairs,
        "sentinels_found": len(fast_positions),
        "speedup": {
            "lower_quartile": round(ratios[len(ratios) // 4], 4),
            "median": round(ratios[len(ratios) // 2], 4),
        },
    }
