"""Tests for the Sniffer byte counters."""

from repro.network.message import ProtocolOverheadModel, request_message, response_message
from repro.network.sniffer import Sniffer, TrafficCounters


class TestTrafficCounters:
    def test_record_accumulates(self):
        counters = TrafficCounters()
        model = ProtocolOverheadModel()
        counters.record(response_message(1000), model)
        counters.record(response_message(2000), model)  # 2000 B -> 2 packets
        assert counters.messages == 2
        assert counters.payload_bytes == 3000
        assert counters.wire_bytes == 3000 + 3 * 40 + 2 * 120
        assert counters.packets == 3

    def test_merge(self):
        a = TrafficCounters(messages=1, payload_bytes=10, wire_bytes=50, packets=1)
        b = TrafficCounters(messages=2, payload_bytes=20, wire_bytes=100, packets=2)
        merged = a.merged_with(b)
        assert merged.messages == 3
        assert merged.payload_bytes == 30
        assert merged.wire_bytes == 150
        assert merged.packets == 3


class TestSniffer:
    def test_separates_kinds(self):
        sniffer = Sniffer()
        sniffer.observe(request_message(100))
        sniffer.observe(response_message(1000))
        sniffer.observe(response_message(500))
        assert sniffer.counters("request").messages == 1
        assert sniffer.counters("response").messages == 2
        assert sniffer.response_payload_bytes == 1500

    def test_total_spans_kinds(self):
        sniffer = Sniffer()
        sniffer.observe(request_message(100))
        sniffer.observe(response_message(200))
        assert sniffer.total_payload_bytes == 300
        assert sniffer.total().messages == 2

    def test_wire_bytes_include_headers(self):
        sniffer = Sniffer()
        sniffer.observe(response_message(1000))
        assert sniffer.response_wire_bytes == 1000 + 40 + 120
        assert sniffer.total_wire_bytes == 1160

    def test_unseen_kind_is_zero(self):
        assert Sniffer().counters("request").payload_bytes == 0

    def test_reset(self):
        sniffer = Sniffer()
        sniffer.observe(response_message(1000))
        sniffer.reset()
        assert sniffer.total_payload_bytes == 0

    def test_disabled_overhead_payload_equals_wire(self):
        sniffer = Sniffer(overhead=ProtocolOverheadModel(enabled=False))
        sniffer.observe(response_message(5000))
        assert sniffer.response_wire_bytes == sniffer.response_payload_bytes == 5000
