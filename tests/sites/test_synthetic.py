"""Tests for the synthetic Table 2 application."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.errors import ConfigurationError
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites.synthetic import (
    SyntheticParams,
    build_server,
    build_services,
    fragment_content,
    touch_fragment,
)


class TestSyntheticParams:
    def test_default_pool_is_pages_times_fragments(self):
        assert SyntheticParams().effective_pool_size == 40

    def test_page_composition(self):
        params = SyntheticParams()
        assert params.pool_indexes_for_page(0) == [0, 1, 2, 3]
        assert params.pool_indexes_for_page(9) == [36, 37, 38, 39]

    def test_shared_pool_wraps(self):
        params = SyntheticParams(pool_size=6)
        assert params.pool_indexes_for_page(1) == [4, 5, 0, 1]

    def test_page_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SyntheticParams().pool_indexes_for_page(10)

    def test_cacheable_count_matches_factor(self):
        params = SyntheticParams(cacheability=0.6)
        assert params.cacheable_count() == 24  # floor(40 * 0.6)

    def test_cacheability_extremes(self):
        assert SyntheticParams(cacheability=1.0).cacheable_count() == 40
        assert SyntheticParams(cacheability=0.0).cacheable_count() == 0

    def test_cacheable_pattern_is_spread(self):
        params = SyntheticParams(cacheability=0.5)
        flags = [params.is_cacheable(k) for k in range(8)]
        assert flags.count(True) == 4
        assert flags != [True] * 4 + [False] * 4  # interleaved, not blocked

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SyntheticParams(num_pages=0)
        with pytest.raises(ConfigurationError):
            SyntheticParams(cacheability=1.5)


class TestFragmentContent:
    def test_exact_size(self):
        for size in (1, 10, 16, 100, 1024, 5000):
            assert len(fragment_content(3, 7, size)) == size

    def test_version_changes_content(self):
        assert fragment_content(1, 0, 100) != fragment_content(1, 1, 100)

    def test_no_sentinel_in_content(self):
        assert "<~" not in fragment_content(5, 123, 5000)

    def test_ascii_sizes_are_byte_sizes(self):
        content = fragment_content(1, 2, 2048)
        assert len(content.encode("utf-8")) == 2048


class TestSyntheticServing:
    def test_page_body_is_exact_fragment_sum(self):
        params = SyntheticParams(fragment_size=256)
        server = build_server(params, cost_model=FREE)
        response = server.handle(HttpRequest("/page.jsp", {"pageID": "2"}))
        assert response.body_bytes == 4 * 256

    def test_cacheable_and_noncacheable_split(self):
        params = SyntheticParams(cacheability=0.5)
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=64, clock=clock)
        server = build_server(params, clock=clock, bem=bem, cost_model=FREE)
        response = server.handle(HttpRequest("/page.jsp", {"pageID": "0"}))
        assert response.meta["set_count"] == 2  # half the page is cacheable

    def test_touch_fragment_bumps_version(self):
        params = SyntheticParams()
        services = build_services(params)
        touch_fragment(services, 5)
        assert services.db.table("synthetic_data").get(5)["version"] == 1

    def test_touch_unknown_fragment(self):
        services = build_services(SyntheticParams())
        with pytest.raises(ConfigurationError):
            touch_fragment(services, 999)

    def test_touch_invalidates_through_trigger(self):
        params = SyntheticParams(cacheability=1.0)
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=64, clock=clock)
        services = build_services(params)
        server = build_server(params, services=services, clock=clock, bem=bem,
                              cost_model=FREE)
        bem.attach_database(services.db.bus)
        request = HttpRequest("/page.jsp", {"pageID": "0"})
        server.handle(request)
        server.handle(request)
        assert bem.stats.fragment_hits == 4  # warm

        touch_fragment(services, 0)
        response = server.handle(request)
        assert response.meta["misses"] == 1
        assert response.meta["hits"] == 3
