"""Tests for replacement policies in isolation."""

import pytest

from repro.core.cache_directory import DirectoryEntry
from repro.core.fragments import FragmentID
from repro.core.replacement import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    TtlAwarePolicy,
    make_policy,
)
from repro.errors import ConfigurationError


def entry(name, key, created=0.0, accessed=0.0, hits=0, ttl=None):
    return DirectoryEntry(
        fragment_id=FragmentID.create(name),
        dpc_key=key,
        created_at=created,
        last_access=accessed,
        hits=hits,
        ttl=ttl,
    )


class TestPolicies:
    def test_lru_picks_least_recent(self):
        entries = [entry("a", 0, accessed=5.0), entry("b", 1, accessed=2.0)]
        assert LruPolicy().select_victim(entries, now=10.0).dpc_key == 1

    def test_lfu_picks_least_used(self):
        entries = [entry("a", 0, hits=10), entry("b", 1, hits=2)]
        assert LfuPolicy().select_victim(entries, now=0.0).dpc_key == 1

    def test_lfu_ties_broken_by_recency(self):
        entries = [
            entry("a", 0, hits=2, accessed=9.0),
            entry("b", 1, hits=2, accessed=1.0),
        ]
        assert LfuPolicy().select_victim(entries, now=0.0).dpc_key == 1

    def test_fifo_picks_oldest(self):
        entries = [entry("a", 0, created=5.0), entry("b", 1, created=1.0)]
        assert FifoPolicy().select_victim(entries, now=0.0).dpc_key == 1

    def test_ttl_picks_soonest_to_expire(self):
        entries = [
            entry("a", 0, created=0.0, ttl=100.0),
            entry("b", 1, created=0.0, ttl=10.0),
        ]
        assert TtlAwarePolicy().select_victim(entries, now=5.0).dpc_key == 1

    def test_ttl_prefers_ttl_entries_over_immortal(self):
        entries = [
            entry("a", 0, ttl=None),
            entry("b", 1, created=0.0, ttl=1000.0),
        ]
        assert TtlAwarePolicy().select_victim(entries, now=0.0).dpc_key == 1

    def test_empty_candidates_give_none(self):
        assert LruPolicy().select_victim([], now=0.0) is None


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "lfu", "fifo", "ttl"])
    def test_known_names(self, name):
        assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("random")


class TestGreedyDualSize:
    def test_factory_knows_gds(self):
        assert make_policy("gds").name == "gds"

    def test_small_stale_entry_evicted_before_large_fresh(self):
        from repro.core.replacement import GreedyDualSizePolicy

        policy = GreedyDualSizePolicy()
        small = entry("small", 0)
        small.size_bytes = 100
        large = entry("large", 1)
        large.size_bytes = 100_000
        # Equal cost/size credit at first touch (cost == size), so the
        # tiebreak and inflation dynamics decide; after one eviction the
        # inflation floor rises, favouring keeping recently-credited ones.
        victim = policy.select_victim([small, large], now=0.0)
        assert victim in (small, large)

    def test_inflation_rises_after_eviction(self):
        from repro.core.replacement import GreedyDualSizePolicy

        policy = GreedyDualSizePolicy(cost_of=lambda e: 1.0)
        a = entry("a", 0)
        a.size_bytes = 1000   # credit 1/1000: cheap to lose
        b = entry("b", 1)
        b.size_bytes = 10     # credit 1/10
        first = policy.select_victim([a, b], now=0.0)
        assert first is a     # lowest cost/size credit
        assert policy._inflation == pytest.approx(1.0 / 1000)

    def test_refreshed_entries_get_inflated_credit(self):
        from repro.core.replacement import GreedyDualSizePolicy

        policy = GreedyDualSizePolicy(cost_of=lambda e: 1.0)
        a = entry("a", 0)
        a.size_bytes = 1000
        b = entry("b", 1)
        b.size_bytes = 1000
        policy.select_victim([a, b], now=0.0)  # evicts one, inflates L
        # Touch b (its hits change) -> fresh credit includes inflation.
        b.hits += 1
        survivor_credit = policy._credit_of(b)
        assert survivor_credit > 1.0 / 1000

    def test_gds_works_inside_directory(self):
        from repro.core.cache_directory import CacheDirectory
        from repro.core.fragments import FragmentID, FragmentMetadata

        directory = CacheDirectory(2, policy=make_policy("gds"))
        for i in range(8):
            directory.insert(
                FragmentID.create("f", {"i": i}),
                FragmentMetadata(),
                size_bytes=(i + 1) * 100,
                now=float(i),
            )
            directory.check_invariants()
        assert directory.valid_count() == 2
