"""Bandwidth measurement, mirroring the paper's use of the Sniffer tool.

"The number of bytes served is obtained by measuring bandwidth using the
Sniffer network monitoring tool.  More precisely, the bandwidth measurement
is taken between the Origin Site machine and the External machine."  (§6)

A :class:`Sniffer` attaches to a :class:`~repro.network.channel.Channel` and
counts every byte that crosses it, in both directions, *including protocol
headers* — that inclusiveness is what separates the experimental curves from
the analytical ones in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .message import ProtocolOverheadModel, WireMessage


@dataclass
class TrafficCounters:
    """Byte and message counters for one direction of traffic."""

    messages: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    packets: int = 0

    def record(self, message: WireMessage, overhead: ProtocolOverheadModel) -> None:
        """Account one message under this direction's counters.

        Wire bytes and packets come from the message's own accessors, which
        delegate to the overhead model — the same arithmetic the channel
        charges, so Sniffer totals can never drift from link totals.
        """
        self.messages += 1
        self.payload_bytes += message.payload_bytes
        self.wire_bytes += message.wire_bytes(overhead)
        self.packets += message.packets(overhead)

    def merged_with(self, other: "TrafficCounters") -> "TrafficCounters":
        """A new counter equal to the element-wise sum."""
        return TrafficCounters(
            messages=self.messages + other.messages,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            wire_bytes=self.wire_bytes + other.wire_bytes,
            packets=self.packets + other.packets,
        )


@dataclass
class Sniffer:
    """Counts traffic crossing a monitored link.

    The per-kind breakdown ("request" vs "response") lets experiments report
    the response-only view (closest to the analytical B) next to the full
    wire view (what the paper's Sniffer reported).
    """

    overhead: ProtocolOverheadModel = field(default_factory=ProtocolOverheadModel)
    by_kind: Dict[str, TrafficCounters] = field(default_factory=dict)

    def observe(self, message: WireMessage) -> None:
        """Record one message crossing the monitored link."""
        counters = self.by_kind.setdefault(message.kind, TrafficCounters())
        counters.record(message, self.overhead)

    # -- reporting ----------------------------------------------------------

    def total(self) -> TrafficCounters:
        """Counters summed over both directions/kinds."""
        merged = TrafficCounters()
        for counters in self.by_kind.values():
            merged = merged.merged_with(counters)
        return merged

    def counters(self, kind: str) -> TrafficCounters:
        """Counters for one message kind ('request' or 'response')."""
        return self.by_kind.get(kind, TrafficCounters())

    @property
    def total_wire_bytes(self) -> int:
        """Wire bytes over both directions."""
        return self.total().wire_bytes

    @property
    def total_payload_bytes(self) -> int:
        """Payload bytes over both directions."""
        return self.total().payload_bytes

    @property
    def response_payload_bytes(self) -> int:
        """Payload bytes of responses only."""
        return self.counters("response").payload_bytes

    @property
    def response_wire_bytes(self) -> int:
        """Wire bytes of responses only."""
        return self.counters("response").wire_bytes

    def metric_rows(self) -> list:
        """Registry rows: monitored-link traffic under ``link.*``."""
        return [
            ("link.request_payload_bytes", self.counters("request").payload_bytes),
            ("link.response_payload_bytes", self.counters("response").payload_bytes),
            ("link.total_wire_bytes", self.total_wire_bytes),
        ]

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        self.by_kind.clear()
