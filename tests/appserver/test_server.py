"""Tests for the application server against a miniature site."""

import pytest

from repro.appserver import ApplicationServer, DynamicScript, HttpRequest, SiteServices
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import Dependency
from repro.database import Database, schema
from repro.errors import ScriptError, ScriptNotFound
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE


class MiniScript(DynamicScript):
    path = "/mini.jsp"

    def run(self, ctx):
        item = ctx.request.param("item", "default")
        ctx.write("<html>")
        ctx.block(
            "body",
            {"item": item},
            lambda: "<p>%s:%s</p>"
            % (item, ctx.services.db.table("items").get(item)["v"]),
        )
        ctx.write("</html>")


class ExplodingScript(DynamicScript):
    path = "/boom.jsp"

    def run(self, ctx):
        raise ValueError("kaboom")


def make_services():
    db = Database()
    table = db.create_table(schema("items", [("k", "str"), ("v", "int")]))
    table.insert({"k": "default", "v": 1})
    table.insert({"k": "other", "v": 2})
    services = SiteServices(db=db)
    services.tags.tag(
        "body",
        dependencies=lambda params: (Dependency("items", key=params["item"]),),
    )
    return services


def make_server(bem=None, clock=None, **kwargs):
    services = make_services()
    server = ApplicationServer(services, clock=clock, bem=bem, cost_model=FREE, **kwargs)
    server.register(MiniScript())
    server.register(ExplodingScript())
    return server


class TestPlainMode:
    def test_serves_full_page(self):
        server = make_server()
        response = server.handle(HttpRequest("/mini.jsp"))
        assert response.body == "<html><p>default:1</p></html>"
        assert response.meta["mode"] == "plain"

    def test_unknown_path(self):
        server = make_server()
        with pytest.raises(ScriptNotFound):
            server.handle(HttpRequest("/nope.jsp"))

    def test_script_errors_wrapped(self):
        server = make_server()
        with pytest.raises(ScriptError, match="kaboom"):
            server.handle(HttpRequest("/boom.jsp"))

    def test_duplicate_registration_rejected(self):
        server = make_server()
        with pytest.raises(ScriptError):
            server.register(MiniScript())

    def test_requests_counted(self):
        server = make_server()
        server.handle(HttpRequest("/mini.jsp"))
        server.handle(HttpRequest("/mini.jsp"))
        assert server.requests_served == 2


class TestDpcMode:
    def test_first_response_sets_then_gets(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        server = make_server(bem=bem, clock=clock)
        first = server.handle(HttpRequest("/mini.jsp"))
        second = server.handle(HttpRequest("/mini.jsp"))
        assert first.meta["set_count"] == 1
        assert second.meta["get_count"] == 1
        assert second.body_bytes < first.body_bytes

    def test_dpc_assembles_identical_page(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        server = make_server(bem=bem, clock=clock)
        dpc = DynamicProxyCache(capacity=8)
        oracle = server.render_reference_page(HttpRequest("/mini.jsp"))
        for _ in range(3):
            response = server.handle(HttpRequest("/mini.jsp"))
            assert dpc.process_response(response.body).html == oracle

    def test_update_regenerates_through_dependency(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        server = make_server(bem=bem, clock=clock)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=8)

        dpc.process_response(server.handle(HttpRequest("/mini.jsp")).body)
        server.services.db.table("items").update({"v": 42}, key="default")
        page = dpc.process_response(server.handle(HttpRequest("/mini.jsp")).body)
        assert "default:42" in page.html

    def test_clock_mismatch_rejected(self):
        bem = BackEndMonitor(capacity=8)  # its own clock
        with pytest.raises(ScriptError):
            make_server(bem=bem, clock=SimulatedClock())

    def test_mode_meta(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        server = make_server(bem=bem, clock=clock)
        assert server.handle(HttpRequest("/mini.jsp")).meta["mode"] == "dpc"


class TestGenerationCost:
    def test_generation_time_recorded_and_clock_advanced(self):
        from repro.network.latency import GenerationCostModel

        clock = SimulatedClock()
        services = make_services()
        server = ApplicationServer(
            services, clock=clock, cost_model=GenerationCostModel()
        )
        server.register(MiniScript())
        response = server.handle(HttpRequest("/mini.jsp"))
        assert response.meta["generation_s"] > 0
        assert clock.now() == pytest.approx(response.meta["generation_s"])

    def test_hit_is_cheaper_than_miss(self):
        from repro.network.latency import GenerationCostModel

        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        services = make_services()
        server = ApplicationServer(
            services, clock=clock, bem=bem, cost_model=GenerationCostModel()
        )
        server.register(MiniScript())
        miss = server.handle(HttpRequest("/mini.jsp")).meta["generation_s"]
        hit = server.handle(HttpRequest("/mini.jsp")).meta["generation_s"]
        assert hit < miss


class TestReferenceOracle:
    def test_oracle_does_not_touch_counters(self):
        server = make_server()
        server.render_reference_page(HttpRequest("/mini.jsp"))
        assert server.requests_served == 0

    def test_oracle_matches_plain_serving(self):
        server = make_server()
        oracle = server.render_reference_page(HttpRequest("/mini.jsp"))
        served = server.handle(HttpRequest("/mini.jsp")).body
        assert oracle == served
