"""Transactions: atomic multi-row updates with commit-time triggers.

Fragment invalidation must key off *committed* states: if a script updates
three rows that together produce one consistent catalog view, the BEM must
not invalidate (and a concurrent request must not regenerate) against a
half-applied state, and a rolled-back update must invalidate nothing.

The engine therefore supports flat transactions:

* ``with db.transaction(): ...`` — mutations apply to tables immediately
  (this is a single-threaded simulation; there is no concurrent reader to
  isolate), but their :class:`ChangeEvent` s are **buffered** and published
  only at commit, in order.
* On rollback, the undo log restores every pre-image and the buffered
  events are discarded — no listener ever learns the transaction happened.

Nested ``transaction()`` calls are rejected: the reproduction needs
atomicity of trigger delivery, not savepoints.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DatabaseError
from .triggers import DELETE, INSERT, UPDATE, ChangeEvent, TriggerBus


class TransactionLog:
    """Event buffer + undo log for one open transaction."""

    def __init__(self) -> None:
        self.events: List[ChangeEvent] = []

    def record(self, event: ChangeEvent) -> None:
        """Buffer one change event."""
        self.events.append(event)

    def undo_order(self) -> List[ChangeEvent]:
        """Events in reverse order, for rollback."""
        return list(reversed(self.events))


class TransactionManager:
    """Owns the open-transaction state for one database.

    Installed between the tables and the trigger bus: tables publish into
    :meth:`publish`, which either forwards immediately (autocommit) or
    buffers (inside a transaction).
    """

    def __init__(self, bus: TriggerBus) -> None:
        self.bus = bus
        self._log: Optional[TransactionLog] = None
        self.commits = 0
        self.rollbacks = 0

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction is open."""
        return self._log is not None

    # -- the publish seam -------------------------------------------------------

    def publish(self, event: ChangeEvent) -> None:
        """Forward an event now, or buffer it inside a transaction."""
        if self._log is not None:
            self._log.record(event)
        else:
            self.bus.publish(event)

    # -- lifecycle ---------------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction; rejects nesting."""
        if self._log is not None:
            raise DatabaseError("nested transactions are not supported")
        self._log = TransactionLog()

    def commit(self) -> int:
        """Publish every buffered event, in order; returns the count."""
        if self._log is None:
            raise DatabaseError("no transaction in progress")
        log, self._log = self._log, None
        for event in log.events:
            self.bus.publish(event)
        self.commits += 1
        return len(log.events)

    def rollback(self, undo) -> int:
        """Restore pre-images via ``undo(event)``; returns mutations undone.

        ``undo`` is supplied by the database (it knows how to reach table
        internals without re-triggering events).
        """
        if self._log is None:
            raise DatabaseError("no transaction in progress")
        log, self._log = self._log, None
        for event in log.undo_order():
            undo(event)
        self.rollbacks += 1
        return len(log.events)


def undo_event_on(table, event: ChangeEvent) -> None:
    """Reverse one mutation on ``table`` without publishing anything."""
    if event.operation == INSERT:
        table.silent_delete(event.key)
    elif event.operation == UPDATE:
        table.silent_restore(event.key, event.old_row)
    elif event.operation == DELETE:
        table.silent_restore(event.key, event.old_row)
    else:  # pragma: no cover - exhaustive over operations
        raise DatabaseError("cannot undo operation %r" % event.operation)
