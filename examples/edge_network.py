#!/usr/bin/env python
"""§7 preview: the DPC in forward-proxy mode, at the network edge.

Deploys three edge DPCs with session-affinity routing (consistent
hashing — URLs cannot route fragment traffic), a shared origin, and
trigger-bus coherency.  Demonstrates:

* user affinity: a user's personalized fragments warm exactly one edge;
* coherency: a catalog price change propagates to every edge;
* failover: an edge dies mid-session and the user transparently moves,
  still receiving a correct page.

Run:  python examples/edge_network.py
"""

import random

from repro.appserver import HttpRequest
from repro.core import ProxyGroup, RequestRouter
from repro.network.latency import FREE
from repro.sites import books


class EdgeNetwork:
    def __init__(self, edges=("edge-nyc", "edge-lon", "edge-sgp")):
        self.group = ProxyGroup(capacity_per_proxy=1024)
        self.router = RequestRouter()
        for name in edges:
            self.group.add_proxy(name)
            self.router.add_proxy(name)
        self.services = books.build_services()
        self.group.attach_database(self.services.db.bus)
        self.servers = {
            name: books.build_server(
                services=self.services, clock=self.group.clock,
                bem=self.group.member(name)[0], cost_model=FREE,
            )
            for name in self.group.names()
        }
        self.oracle = books.build_server(
            services=self.services, clock=self.group.clock, cost_model=FREE
        )

    def serve(self, request):
        edge = self.router.route(request.user_id, request.session_id)
        _, dpc = self.group.member(edge)
        response = self.servers[edge].handle(request)
        return dpc.process_response(response.body).html, edge


def catalog(user, category="Fiction"):
    return HttpRequest("/catalog.jsp", {"categoryID": category},
                       user_id=user, session_id="sess-%s" % user)


def main():
    net = EdgeNetwork()
    rng = random.Random(3)

    print("=== session affinity ===")
    for user in ("user000", "user001", "user002", "user003"):
        _, edge = net.serve(catalog(user))
        print("  %s -> %s" % (user, edge))

    print("\n=== warm traffic across the fleet ===")
    for _ in range(60):
        user = "user%03d" % rng.randrange(8)
        html, _ = net.serve(catalog(user, rng.choice(["Fiction", "Science"])))
    print("  group hit ratio after 60 requests: %.3f"
          % net.group.group_hit_ratio())

    print("\n=== coherency: a price change reaches every edge ===")
    net.services.db.table(books.PRODUCTS_TABLE).update(
        {"price": 4.99}, key="FIC-000"
    )
    seen_edges = set()
    for user in ("user000", "user001", "user002", "user004", "user005"):
        request = catalog(user)
        html, edge = net.serve(request)
        seen_edges.add(edge)
        assert "$4.99" in html
        assert html == net.oracle.render_reference_page(request)
    print("  fresh price served from edges: %s" % sorted(seen_edges))
    print("  coherency messages so far: %d" % net.group.coherency_messages)

    print("\n=== failover ===")
    request = catalog("user006")
    _, primary = net.serve(request)
    print("  user006's primary edge: %s ... taking it down" % primary)
    net.router.mark_down(primary)
    html, backup = net.serve(request)
    assert html == net.oracle.render_reference_page(request)
    print("  transparently served from %s, page still correct" % backup)
    print("  router recorded %d failover(s)" % net.router.failovers)


if __name__ == "__main__":
    main()
