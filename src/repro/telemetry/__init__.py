"""Telemetry: virtual-time request tracing and the unified metrics registry.

The observability layer for the whole reproduction.  Three pieces:

* :mod:`~repro.telemetry.tracing` — a :class:`Tracer` that opens
  per-request span trees on the *simulated* clock (``request →
  channel.transfer → bem.process → script.exec → db.query → …``),
  propagated via ``HttpRequest.trace`` / ``WireMessage.trace``.  Disabled
  tracing is zero-cost; enabled tracing yields gap-free trees whose root
  duration equals the measured virtual response time.
* :mod:`~repro.telemetry.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges, and fixed-bucket histograms under one dotted-name
  scheme (:data:`METRIC_NAMES`); components register themselves as row
  providers instead of being scraped by hand.
* :mod:`~repro.telemetry.export` — JSON-lines and aligned-text exporters
  plus the span-tree pretty-printer; :mod:`~repro.telemetry.profiling`
  adds the ``@profiled`` wall-clock hook used by the benchmarks.

Quick taste::

    from repro.harness.testbed import Testbed, TestbedConfig
    from repro.telemetry import render_span_tree

    testbed = Testbed(TestbedConfig(mode="dpc", tracing=True))
    timed = testbed.build_workload().materialize(1)[0]
    testbed.serve_once(timed.request)
    print(render_span_tree(testbed.tracer.last_root))
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Row,
)
from .naming import (
    METRIC_NAMES,
    valid_metric_name,
    validate_metric_name,
)
from .tracing import (
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    assert_gap_free,
    assert_well_formed,
)
from .export import (
    parse_json_lines,
    registry_from_rows,
    render_metrics,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    spans_from_json_lines,
    spans_to_json_lines,
    to_json_lines,
)
from .profiling import (
    disable_profiling,
    enable_profiling,
    profiled,
    profiling_enabled,
)
from .stats import mean, percentile, summarize

__all__ = [
    # metrics
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Row",
    # naming
    "METRIC_NAMES",
    "valid_metric_name",
    "validate_metric_name",
    # tracing
    "NULL_TRACER",
    "Span",
    "TraceContext",
    "Tracer",
    "assert_gap_free",
    "assert_well_formed",
    # export
    "parse_json_lines",
    "registry_from_rows",
    "render_metrics",
    "render_span_tree",
    "span_from_dict",
    "span_to_dict",
    "spans_from_json_lines",
    "spans_to_json_lines",
    "to_json_lines",
    # profiling
    "disable_profiling",
    "enable_profiling",
    "profiled",
    "profiling_enabled",
    # stats
    "mean",
    "percentile",
    "summarize",
]
