"""Tests for the §7 edge-placement experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.edge import (
    EdgeExperimentConfig,
    compare_deployments,
    run_edge_experiment,
)

FAST = dict(requests=120, warmup=30)


class TestConfig:
    def test_invalid_deployment(self):
        with pytest.raises(ConfigurationError):
            EdgeExperimentConfig(deployment="cdn")


class TestDeploymentComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_deployments(**FAST)

    def test_response_time_ordering(self, results):
        assert (
            results["forward_proxy"].mean_response_time
            < results["reverse_proxy"].mean_response_time
            < results["origin_only"].mean_response_time
        )

    def test_forward_proxy_slashes_wan_bytes(self, results):
        assert (
            results["forward_proxy"].wan_payload_bytes
            < 0.1 * results["origin_only"].wan_payload_bytes
        )

    def test_reverse_proxy_wan_bytes_unchanged(self, results):
        """The §6 configuration saves inside the site, not across the WAN:
        the full assembled page still crosses to the user."""
        assert (
            results["reverse_proxy"].wan_payload_bytes
            == results["origin_only"].wan_payload_bytes
        )

    def test_hit_ratios(self, results):
        assert results["origin_only"].measured_hit_ratio == 0.0
        assert results["forward_proxy"].measured_hit_ratio > 0.9
        assert results["reverse_proxy"].measured_hit_ratio > 0.9

    def test_wire_bytes_exceed_payload(self, results):
        for result in results.values():
            assert result.wan_wire_bytes > result.wan_payload_bytes


class TestSingleRun:
    def test_deterministic(self):
        config = EdgeExperimentConfig(
            deployment="forward_proxy", requests=80, warmup_requests=20
        )
        a = run_edge_experiment(config)
        b = run_edge_experiment(
            EdgeExperimentConfig(
                deployment="forward_proxy", requests=80, warmup_requests=20
            )
        )
        assert a.wan_payload_bytes == b.wan_payload_bytes
        assert a.mean_response_time == b.mean_response_time
