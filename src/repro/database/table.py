"""Row storage for one table: primary-key dict plus secondary indexes.

Tables are the unit of change notification (every mutation publishes a
:class:`~repro.database.triggers.ChangeEvent`) and of dependency declaration
for fragments (a fragment can depend on a whole table or on specific rows).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..errors import IntegrityError, SchemaError
from .indexes import HashIndex
from .schema import TableSchema
from .triggers import DELETE, INSERT, UPDATE, ChangeEvent, TriggerBus

Predicate = Callable[[Dict[str, object]], bool]


class Table:
    """One table's rows, keyed by primary key, with optional hash indexes.

    Rows handed out by read methods are *copies*: callers cannot corrupt the
    store by mutating results, and old/new images in change events stay
    distinct.
    """

    def __init__(self, schema: TableSchema, bus: Optional[TriggerBus] = None) -> None:
        self.schema = schema
        self._bus = bus
        self._rows: Dict[object, Dict[str, object]] = {}
        self._indexes: Dict[str, HashIndex] = {}
        #: Rows touched by reads since the last counter reset; feeds the
        #: per-row query cost in the generation delay model.
        self.rows_read = 0
        self.rows_written = 0

    @property
    def name(self) -> str:
        """The table's name (from its schema)."""
        return self.schema.name

    # -- index management -----------------------------------------------------

    def create_index(self, column: str) -> HashIndex:
        """Create (or return the existing) hash index on ``column``."""
        self.schema.column(column)  # validates existence
        if column in self._indexes:
            return self._indexes[column]
        index = HashIndex(self.name, column)
        for pk, row in self._rows.items():
            index.add(row[column], pk)
        self._indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        """Whether a hash index exists on ``column``."""
        return column in self._indexes

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: Dict[str, object]) -> Dict[str, object]:
        """Insert a row; returns the validated stored row (a copy)."""
        validated = self.schema.validate_row(row)
        pk = validated[self.schema.primary_key]
        if pk in self._rows:
            raise IntegrityError(
                "duplicate primary key %r in table %r" % (pk, self.name)
            )
        self._rows[pk] = validated
        for column, index in self._indexes.items():
            index.add(validated[column], pk)
        self.rows_written += 1
        self._publish(ChangeEvent(self.name, INSERT, pk, row=dict(validated)))
        return dict(validated)

    def update(
        self,
        changes: Dict[str, object],
        where: Optional[Predicate] = None,
        key: object = None,
    ) -> int:
        """Apply ``changes`` to matching rows; returns the count updated.

        Either a ``key`` (primary key) or a ``where`` predicate selects the
        rows; passing neither updates every row.  Changing the primary key
        itself is not supported (no script in the reproduction needs it, and
        forbidding it keeps slot/index bookkeeping simple).
        """
        if self.schema.primary_key in changes:
            raise SchemaError("updating the primary key is not supported")
        for column in changes:
            self.schema.column(column)
        updated = 0
        for pk in self._matching_keys(where, key):
            old = self._rows[pk]
            new = dict(old)
            changed_columns = []
            for column, value in changes.items():
                validated = self.schema.column(column).validate_value(value)
                if old[column] != validated:
                    changed_columns.append(column)
                new[column] = validated
            if not changed_columns:
                continue
            for column in changed_columns:
                if column in self._indexes:
                    self._indexes[column].remove(old[column], pk)
                    self._indexes[column].add(new[column], pk)
            self._rows[pk] = new
            updated += 1
            self.rows_written += 1
            self._publish(
                ChangeEvent(
                    self.name,
                    UPDATE,
                    pk,
                    row=dict(new),
                    old_row=dict(old),
                    changed_columns=tuple(changed_columns),
                )
            )
        return updated

    def delete(self, where: Optional[Predicate] = None, key: object = None) -> int:
        """Delete matching rows; returns the count deleted."""
        doomed = list(self._matching_keys(where, key))
        for pk in doomed:
            old = self._rows.pop(pk)
            for column, index in self._indexes.items():
                index.remove(old[column], pk)
            self.rows_written += 1
            self._publish(ChangeEvent(self.name, DELETE, pk, old_row=dict(old)))
        return len(doomed)

    # -- reads ------------------------------------------------------------------

    def get(self, key: object) -> Optional[Dict[str, object]]:
        """Fetch one row by primary key, or ``None``."""
        row = self._rows.get(key)
        if row is None:
            return None
        self.rows_read += 1
        return dict(row)

    def scan(self, where: Optional[Predicate] = None) -> Iterator[Dict[str, object]]:
        """Full scan in insertion order, optionally filtered.

        Every row examined counts as read, matching or not — that is what a
        real scan costs, and what the latency model charges for.
        """
        for row in list(self._rows.values()):
            self.rows_read += 1
            if where is None or where(row):
                yield dict(row)

    def lookup(self, column: str, value: object) -> List[Dict[str, object]]:
        """Equality lookup, via the index on ``column`` when one exists."""
        index = self._indexes.get(column)
        if index is None:
            return list(self.scan(lambda row: row[column] == value))
        rows = []
        for pk in index.lookup(value):
            self.rows_read += 1
            rows.append(dict(self._rows[pk]))
        return rows

    def keys(self) -> List[object]:
        """All primary keys, in insertion order."""
        return list(self._rows.keys())

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: object) -> bool:
        return key in self._rows

    # -- internals ---------------------------------------------------------------

    def _matching_keys(
        self, where: Optional[Predicate], key: object
    ) -> Iterable[object]:
        if key is not None:
            return [key] if key in self._rows else []
        if where is None:
            return list(self._rows.keys())
        matches = []
        for pk, row in self._rows.items():
            self.rows_read += 1
            if where(dict(row)):
                matches.append(pk)
        return matches

    def _publish(self, event: ChangeEvent) -> None:
        if self._bus is not None:
            self._bus.publish(event)

    # -- transaction support (undo primitives; never publish events) --------------

    def silent_delete(self, key: object) -> None:
        """Undo an INSERT: remove the row without emitting any event."""
        old = self._rows.pop(key)
        for column, index in self._indexes.items():
            index.remove(old[column], key)

    def silent_restore(self, key: object, row: Dict[str, object]) -> None:
        """Undo an UPDATE or DELETE: put the pre-image back, eventlessly."""
        current = self._rows.get(key)
        if current is not None:
            for column, index in self._indexes.items():
                if current[column] != row[column]:
                    index.remove(current[column], key)
                    index.add(row[column], key)
        else:
            for column, index in self._indexes.items():
                index.add(row[column], key)
        self._rows[key] = dict(row)

    def reset_counters(self) -> None:
        """Zero the rows-read/rows-written counters."""
        self.rows_read = 0
        self.rows_written = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Table(%r, %d rows)" % (self.name, len(self))
