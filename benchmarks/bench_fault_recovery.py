"""Fault recovery: hit-ratio time-series under DPC crash and partition.

Not a paper figure — the paper's §4.3.3 only documents the blunt restart
protocol (clear the DPC, flush the BEM).  This bench charts what the
``repro.faults`` subsystem adds on top: a crash dips the hit ratio to
zero (downtime bridged by BEM bypass), the epoch resync runs on the first
post-restart exchange, and miss traffic re-warms the cache back to within
five points of the pre-crash steady state.  A paired no-fault run on the
same seed gives the reference curve, and a link partition shows the
retry/dead-letter path trading availability, never correctness.
"""

from repro.faults.chaos import ChaosConfig, run_chaos, summarize_recovery
from repro.faults.injectors import ChannelPartition, DpcCrash
from repro.harness.testbed import TestbedConfig

REQUESTS = 900
WARMUP = 100
BUCKET = 50
SEED = 11
CRASH_AT = 6.0
DOWNTIME = 0.2
TOLERANCE = 0.05


def chaos_config(faults):
    return ChaosConfig(
        testbed=TestbedConfig(
            mode="dpc", requests=REQUESTS, warmup_requests=WARMUP, seed=SEED
        ),
        faults=faults,
        bucket_requests=BUCKET,
    )


def crash_and_baseline():
    baseline = run_chaos(chaos_config([]))
    crashed = run_chaos(chaos_config([DpcCrash(at=CRASH_AT, downtime=DOWNTIME)]))
    return baseline, crashed


def test_dpc_crash_recovery(benchmark, report):
    baseline, crashed = benchmark.pedantic(crash_and_baseline, rounds=1, iterations=1)
    summary = summarize_recovery(crashed, fault_at=CRASH_AT, tolerance=TOLERANCE)

    report(
        "DPC crash at t=%.1fs (downtime %.1fs): hit ratio & wire bytes per bucket"
        % (CRASH_AT, DOWNTIME),
        ["t (s)", "h (no fault)", "h (crash)", "wire B (no fault)", "wire B (crash)"],
        [
            [
                "%.2f" % fault_bucket.start_time,
                "%.3f" % base_bucket.hit_ratio,
                "%.3f" % fault_bucket.hit_ratio,
                "%d" % base_bucket.wire_bytes,
                "%d" % fault_bucket.wire_bytes,
            ]
            for base_bucket, fault_bucket in zip(baseline.buckets, crashed.buckets)
        ],
    )
    report(
        "Crash recovery summary",
        ["metric", "value"],
        [
            ["steady-state hit ratio", "%.3f" % summary.steady_hit_ratio],
            ["dip hit ratio", "%.3f" % summary.dip_hit_ratio],
            ["recovery time (s)", "%.2f" % summary.recovery_time_s],
            ["requests bridged by bypass", "%d" % crashed.bypassed_requests],
            ["bypass bytes", "%d" % crashed.degradation.bypass_bytes],
            [
                "entries dropped by resync",
                "%d" % crashed.recovery.entries_dropped,
            ],
            ["incorrect pages", "%d" % crashed.incorrect_pages],
        ],
    )

    # Correctness: never a wrong page, with or without the fault.
    assert baseline.incorrect_pages == 0
    assert crashed.incorrect_pages == 0
    # The crash visibly dipped the hit ratio, and it re-climbed to within
    # five points of steady state before the run ended.
    assert summary.dip_hit_ratio < summary.steady_hit_ratio - TOLERANCE
    assert summary.recovered
    # Downtime was bridged: availability stayed at 100%.
    assert crashed.failed_requests == 0
    assert crashed.bypassed_requests > 0
    # Determinism: the exact same config reproduces the exact series.
    rerun = run_chaos(chaos_config([DpcCrash(at=CRASH_AT, downtime=DOWNTIME)]))
    assert rerun.series() == crashed.series()


def test_partition_degrades_availability_not_correctness(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_chaos(
            chaos_config([ChannelPartition(at=CRASH_AT, duration=0.5)])
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "Origin-link partition at t=%.1fs (0.5s): per-bucket impact" % CRASH_AT,
        ["t (s)", "hit ratio", "failed", "wire bytes"],
        [
            [
                "%.2f" % bucket.start_time,
                "%.3f" % bucket.hit_ratio,
                "%d" % bucket.failed,
                "%d" % bucket.wire_bytes,
            ]
            for bucket in result.buckets
        ],
    )
    report(
        "Partition summary",
        ["metric", "value"],
        [
            ["failed requests (dead-lettered)", "%d" % result.failed_requests],
            ["delivery retries", "%d" % result.delivery.retries],
            ["dead letters", "%d" % result.delivery.dead_letters],
            ["availability", "%.4f" % result.degradation.availability(result.requests)],
            ["incorrect pages", "%d" % result.incorrect_pages],
        ],
    )

    # The partition costs availability — and only availability.
    assert result.incorrect_pages == 0
    assert result.failed_requests > 0
    assert result.delivery.dead_letters > 0
    assert result.degradation.availability(result.requests) > 0.9
