"""Tests for the back-end fragment cache baseline."""

import pytest

from repro.appserver import ApplicationServer, HttpRequest
from repro.baselines.backend_cache import BackendFragmentCache
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.template import Literal
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites.synthetic import SyntheticParams, build_server, build_services


def fid(name, **params):
    return FragmentID.create(name, params or None)


class TestMonitorProtocol:
    def test_hit_returns_inline_literal(self):
        cache = BackendFragmentCache(capacity=8)
        cache.process_block(fid("f"), FragmentMetadata(), lambda: "content")
        calls = []
        instruction = cache.process_block(
            fid("f"), FragmentMetadata(), lambda: calls.append(1) or "regen"
        )
        assert instruction == Literal("content")  # inline bytes, not a tag
        assert calls == []  # computation still saved
        assert cache.stats.hits == 1

    def test_non_cacheable_passthrough(self):
        cache = BackendFragmentCache(capacity=8)
        meta = FragmentMetadata(cacheable=False)
        assert cache.process_block(fid("x"), meta, lambda: "a") == Literal("a")
        assert cache.process_block(fid("x"), meta, lambda: "b") == Literal("b")

    def test_flush(self):
        cache = BackendFragmentCache(capacity=8)
        cache.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        assert cache.flush() == 1
        assert cache.directory.valid_count() == 0

    def test_explicit_invalidation(self):
        cache = BackendFragmentCache(capacity=8)
        cache.process_block(fid("f", u="bob"), FragmentMetadata(), lambda: "x")
        assert cache.invalidate_fragment("f", {"u": "bob"})


class TestBandwidthContrast:
    def test_backend_saves_computation_not_bytes(self):
        """The §3.1 point: correct, compute-saving, zero byte savings."""
        params = SyntheticParams(cacheability=1.0)
        clock = SimulatedClock()
        cache = BackendFragmentCache(capacity=64, clock=clock)
        services = build_services(params)
        server = build_server(params, services=services, clock=clock,
                              bem=cache, cost_model=FREE)
        request = HttpRequest("/page.jsp", {"pageID": "0"})
        cold = server.handle(request)
        warm = server.handle(request)
        assert cache.stats.hits == 4
        # Bytes identical cold vs warm: the full page always ships.
        assert warm.body_bytes == cold.body_bytes
        assert warm.body == cold.body

    def test_served_page_is_correct(self):
        params = SyntheticParams(cacheability=1.0)
        clock = SimulatedClock()
        cache = BackendFragmentCache(capacity=64, clock=clock)
        services = build_services(params)
        server = build_server(params, services=services, clock=clock,
                              bem=cache, cost_model=FREE)
        request = HttpRequest("/page.jsp", {"pageID": "1"})
        server.handle(request)
        warm = server.handle(request)
        assert warm.body == server.render_reference_page(request)

    def test_invalidation_keeps_backend_cache_fresh(self):
        from repro.sites.synthetic import touch_fragment

        params = SyntheticParams(cacheability=1.0)
        clock = SimulatedClock()
        cache = BackendFragmentCache(capacity=64, clock=clock)
        services = build_services(params)
        server = build_server(params, services=services, clock=clock,
                              bem=cache, cost_model=FREE)
        cache.attach_database(services.db.bus)
        request = HttpRequest("/page.jsp", {"pageID": "0"})
        server.handle(request)
        touch_fragment(services, 0)
        warm = server.handle(request)
        assert warm.body == server.render_reference_page(request)
        assert "v00000001" in warm.body
