"""Tests for arrival processes."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    BurstyProcess,
    DeterministicProcess,
    FlashCrowdProcess,
    PoissonProcess,
)


class TestDeterministicProcess:
    def test_even_spacing(self):
        process = DeterministicProcess(rate=10.0)
        times = list(process.arrival_times(random.Random(1), 5))
        assert times == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            DeterministicProcess(rate=0)


class TestPoissonProcess:
    def test_mean_rate_converges(self):
        process = PoissonProcess(rate=50.0)
        times = list(process.arrival_times(random.Random(3), 5000))
        observed_rate = len(times) / times[-1]
        assert observed_rate == pytest.approx(50.0, rel=0.1)

    def test_gaps_positive(self):
        process = PoissonProcess(rate=5.0)
        rng = random.Random(1)
        gaps = [gap for gap, _ in zip(process.gaps(rng), range(100))]
        assert all(gap > 0 for gap in gaps)

    def test_reproducible_with_seed(self):
        process = PoissonProcess(rate=5.0)
        a = list(process.arrival_times(random.Random(9), 20))
        b = list(process.arrival_times(random.Random(9), 20))
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=-1)


class TestBurstyProcess:
    def test_produces_requested_count(self):
        process = BurstyProcess(burst_rate=100.0, idle_gap=1.0, burst_length=5.0)
        times = list(process.arrival_times(random.Random(2), 200))
        assert len(times) == 200
        assert times == sorted(times)

    def test_bursts_have_idle_gaps(self):
        process = BurstyProcess(burst_rate=1000.0, idle_gap=10.0, burst_length=4.0)
        times = list(process.arrival_times(random.Random(4), 100))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) >= 10.0       # idle separators exist
        assert min(gaps) < 0.1          # burst interior is dense

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_rate=0, idle_gap=1.0)
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_rate=1.0, idle_gap=1.0, burst_length=0.5)


class TestFlashCrowdProcess:
    def make(self, **kwargs):
        defaults = dict(
            base_rate=10.0, multiplier=10.0, burst_at=10.0,
            hold_s=5.0, decay_s=2.0,
        )
        defaults.update(kwargs)
        return FlashCrowdProcess(**defaults)

    def test_rate_is_piecewise(self):
        process = self.make()
        assert process.rate(0.0) == pytest.approx(10.0)
        assert process.rate(9.99) == pytest.approx(10.0)
        assert process.rate(10.0) == pytest.approx(100.0)   # burst begins
        assert process.rate(14.99) == pytest.approx(100.0)  # still holding
        # Exponential decay back toward baseline after the hold window.
        assert 10.0 < process.rate(16.0) < 100.0
        assert process.rate(17.0) == pytest.approx(10.0 * (1 + 9 * math.exp(-1.0)))
        assert process.rate(100.0) == pytest.approx(10.0, rel=1e-3)

    def test_deterministic_arrivals_are_monotone_and_dense_in_burst(self):
        process = self.make(deterministic=True)
        times = list(process.arrival_times(random.Random(0), 400))
        assert times == sorted(times)
        pre = sum(1 for t in times if 0.0 <= t < 10.0)
        burst = sum(1 for t in times if 10.0 <= t < 15.0)
        # 10 req/s for 10 s vs 100 req/s for 5 s.
        assert pre == pytest.approx(100, abs=2)
        assert burst == pytest.approx(500 - 100, abs=2) or burst == 300
        assert burst / 5.0 > (pre / 10.0) * 5   # at least 5x denser

    def test_random_arrivals_reproducible_and_denser_in_burst(self):
        process = self.make()
        a = list(process.arrival_times(random.Random(7), 300))
        b = list(process.arrival_times(random.Random(7), 300))
        assert a == b
        pre_rate = sum(1 for t in a if t < 10.0) / 10.0
        burst = [t for t in a if 10.0 <= t < 15.0]
        if burst:
            assert len(burst) / 5.0 > pre_rate * 3

    def test_no_burst_multiplier_one_is_flat(self):
        process = self.make(multiplier=1.0)
        for t in (0.0, 10.0, 12.0, 30.0):
            assert process.rate(t) == pytest.approx(10.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FlashCrowdProcess(base_rate=0)
        with pytest.raises(ConfigurationError):
            FlashCrowdProcess(base_rate=1.0, multiplier=0.5)
        with pytest.raises(ConfigurationError):
            FlashCrowdProcess(base_rate=1.0, burst_at=-1.0)
        with pytest.raises(ConfigurationError):
            FlashCrowdProcess(base_rate=1.0, decay_s=0)
