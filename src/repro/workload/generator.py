"""The WebLoad equivalent: a deterministic, seedable request generator.

Combines the three workload dimensions of the paper's model:

* **what** — Zipf-popular pages (:mod:`repro.workload.zipf`),
* **who**  — registered/anonymous visitors (:mod:`repro.workload.users`),
* **when** — an arrival process (:mod:`repro.workload.arrivals`),

into a stream of timestamped :class:`HttpRequest` objects the testbed
replays against any origin configuration.  Everything is derived from one
seed, so the no-cache and DPC runs of an experiment see *identical* request
streams — the comparisons are paired, not merely statistically similar.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence

from ..appserver.http import HttpRequest
from ..errors import ConfigurationError
from .arrivals import ArrivalProcess, DeterministicProcess
from .users import UserPopulation, Visitor
from .zipf import ZipfDistribution


@dataclass(frozen=True)
class PageSpec:
    """One requestable page: a path plus fixed query parameters."""

    path: str
    params: tuple = ()  # tuple of (key, value) pairs, hashable

    @staticmethod
    def create(path: str, params: Optional[Dict[str, str]] = None) -> "PageSpec":
        """Build a PageSpec from a path and a parameter dict."""
        items = tuple(sorted((params or {}).items()))
        return PageSpec(path=path, params=items)

    def to_request(self, visitor: Visitor, header_bytes: int = 300) -> HttpRequest:
        """Materialize an HttpRequest for one visitor."""
        return HttpRequest(
            path=self.path,
            params=dict(self.params),
            user_id=visitor.user_id,
            session_id=visitor.session_id,
            header_bytes=header_bytes,
        )


@dataclass(frozen=True)
class TimedRequest:
    """A request with its arrival instant (virtual seconds)."""

    at: float
    request: HttpRequest
    page_rank: int  # 1-indexed Zipf rank of the page
    #: Absolute virtual deadline, when the workload carries one (mirrors
    #: ``request.deadline_at`` for convenient trace inspection).
    deadline_at: Optional[float] = None


class WorkloadGenerator:
    """Produces the paired request streams for an experiment."""

    def __init__(
        self,
        pages: Sequence[PageSpec],
        population: Optional[UserPopulation] = None,
        arrivals: Optional[ArrivalProcess] = None,
        page_alpha: float = 1.0,
        seed: int = 42,
        deadline_s: Optional[float] = None,
    ) -> None:
        if not pages:
            raise ConfigurationError("at least one page is required")
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        self.pages = list(pages)
        #: Relative per-request deadline; every generated request carries
        #: ``deadline_at = at + deadline_s``, propagated end to end so the
        #: proxy and origin can refuse work they can no longer finish.
        self.deadline_s = deadline_s
        self.population = population if population is not None else UserPopulation(
            user_ids=[], registered_fraction=0.0
        )
        self.arrivals = arrivals if arrivals is not None else DeterministicProcess(
            rate=100.0
        )
        self.page_zipf = ZipfDistribution(len(self.pages), alpha=page_alpha)
        self.seed = seed

    def stream(self, count: int) -> Iterator[TimedRequest]:
        """Generate ``count`` timestamped requests, reproducibly."""
        rng = random.Random(self.seed)
        times = self.arrivals.arrival_times(rng, count)
        for at in times:
            rank = self.page_zipf.sample(rng)
            visitor = self.population.draw(rng)
            request = self.pages[rank - 1].to_request(visitor)
            deadline_at = (
                at + self.deadline_s if self.deadline_s is not None else None
            )
            request = replace(request, arrived_at=at, deadline_at=deadline_at)
            yield TimedRequest(
                at=at, request=request, page_rank=rank, deadline_at=deadline_at
            )

    def materialize(self, count: int) -> List[TimedRequest]:
        """The first ``count`` timed requests as a list."""
        return list(self.stream(count))

    def empirical_page_counts(self, count: int) -> Dict[str, int]:
        """Requests per page URL, for workload sanity checks."""
        counts: Dict[str, int] = {}
        for timed in self.stream(count):
            counts[timed.request.url] = counts.get(timed.request.url, 0) + 1
        return counts


def synthetic_pages(num_pages: int) -> List[PageSpec]:
    """Page specs for the synthetic site's ``/page.jsp?pageID=i``."""
    return [
        PageSpec.create("/page.jsp", {"pageID": str(i)}) for i in range(num_pages)
    ]
