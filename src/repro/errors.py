"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems define narrower classes here
(rather than in their own modules) so that the hierarchy is visible in one
place and no import cycles arise between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ProtocolError(ReproError):
    """Malformed or protocol-violating BEM→DPC wire input.

    Umbrella for every way an origin response can be unparseable or
    unexecutable at the proxy: truncated or garbled tags, GETs referencing
    out-of-range or never-set dpcKeys, and oversized fragment payloads.
    The DPC must reject such input with this typed error — never with a
    raw ``KeyError``/``IndexError`` — so callers can fail the one response
    instead of the whole proxy.
    """


# --------------------------------------------------------------------------
# Core (DPC / BEM) errors
# --------------------------------------------------------------------------


class CacheError(ReproError):
    """Base class for cache-related failures."""


class DirectoryFullError(CacheError):
    """The BEM cache directory is full and replacement could not free space."""


class SlotError(CacheError, ProtocolError):
    """A DPC slot operation referenced an out-of-range or unassigned dpcKey."""


class AssemblyError(CacheError, ProtocolError):
    """The DPC could not assemble a page from a template.

    Raised when a GET instruction references a slot that holds no content.
    Under the BEM protocol this indicates a protocol violation (the BEM only
    emits GET for fragments its directory believes are resident), so it is an
    error rather than a silent miss.
    """


class TemplateError(ProtocolError):
    """A serialized page template could not be parsed."""


class OversizedFragmentError(ProtocolError):
    """A SET carried a fragment payload larger than the configured maximum."""


class TaggingError(ReproError):
    """The tagging API was misused (e.g. nested tagged blocks)."""


# --------------------------------------------------------------------------
# Application-server errors
# --------------------------------------------------------------------------


class AppServerError(ReproError):
    """Base class for application-server failures."""


class ScriptNotFound(AppServerError):
    """No dynamic script is registered for the requested path."""


class ScriptError(AppServerError):
    """A dynamic script raised during execution."""


class SessionError(AppServerError):
    """Session lookup or creation failed."""


# --------------------------------------------------------------------------
# Database errors
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for database failures."""


class SchemaError(DatabaseError):
    """A table/column definition or reference was invalid."""


class QueryError(DatabaseError):
    """A query was malformed or referenced unknown tables/columns."""


class SqlSyntaxError(QueryError):
    """The tiny SQL dialect parser rejected a statement."""


class IntegrityError(DatabaseError):
    """A constraint (primary key uniqueness, NOT NULL) was violated."""


# --------------------------------------------------------------------------
# CMS errors
# --------------------------------------------------------------------------


class CmsError(ReproError):
    """Base class for content-management-system failures."""


class UnknownUserError(CmsError):
    """A profile lookup referenced a user that is not registered."""


class ContentNotFound(CmsError):
    """A content item was requested that the repository does not hold."""


# --------------------------------------------------------------------------
# Network errors
# --------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class ChannelClosed(NetworkError):
    """A message was sent over a channel that has been closed."""


class MessageDropped(NetworkError):
    """A message was discarded in flight by an injected network fault."""


class RoutingError(NetworkError):
    """The forward-proxy router could not place a request on any proxy."""


# --------------------------------------------------------------------------
# Fault-injection / resilience errors
# --------------------------------------------------------------------------


class FaultError(ReproError):
    """Base class for failures surfaced by the fault/resilience subsystem."""


class ProxyUnavailableError(FaultError):
    """The DPC is down (crashed or partitioned) and no fallback is allowed."""


class RecoveryError(FaultError):
    """A resync/anti-entropy pass could not restore a consistent state."""


class DeliveryTimeoutError(FaultError):
    """A retried delivery exhausted its attempts and was dead-lettered."""


# --------------------------------------------------------------------------
# Overload-protection errors
# --------------------------------------------------------------------------


class OverloadError(ReproError):
    """Base class for overload-protection rejections (the system said no).

    These are *flow-control* outcomes, not bugs: a bounded queue was full,
    a deadline could not be met, or a shedding policy refused admission.
    Callers account them and degrade; they never indicate corruption.
    """


class QueueFullError(OverloadError):
    """A bounded queue was at capacity and the arrival was rejected."""


class DeadlineExceededError(OverloadError):
    """A request's deadline expired before (or while) it could be served."""


class RequestShedError(OverloadError):
    """An admission-control policy refused an origin-bound request."""


class CircuitOpenError(OverloadError):
    """The circuit breaker toward a saturated origin is open."""
