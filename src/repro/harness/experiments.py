"""One function per paper artifact: the experiment layer behind the benches.

Each ``figure_*`` function returns structured rows combining the analytical
series (Section 5 model) with measured series from the simulated testbed
(Section 6), mirroring the paired curves in the paper's figures.  The
benches print them and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..analysis import (
    AnalysisParams,
    TABLE2,
    bytes_ratio,
    firewall_savings_percent,
    network_savings_percent,
    savings_percent,
)
from ..network import ProtocolOverheadModel
from ..sites.synthetic import SyntheticParams
from .testbed import TestbedConfig, TestbedResult, run_testbed

#: Default request counts: small enough to keep the suite quick, large
#: enough that measured ratios are stable to a couple of percent.
DEFAULT_REQUESTS = 1500
DEFAULT_WARMUP = 300


def _analysis_for(synthetic: SyntheticParams, hit_ratio: float) -> AnalysisParams:
    """The closed-form configuration matching a synthetic-site setup."""
    return TABLE2.with_(
        hit_ratio=hit_ratio,
        fragment_size=float(synthetic.fragment_size),
        fragments_per_page=synthetic.fragments_per_page,
        num_pages=synthetic.num_pages,
        cacheability=synthetic.cacheability,
    )


def run_pair(
    synthetic: SyntheticParams,
    target_hit_ratio: float,
    requests: int = DEFAULT_REQUESTS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 42,
    overhead: Optional[ProtocolOverheadModel] = None,
) -> Tuple[TestbedResult, TestbedResult]:
    """Run no-cache and DPC testbeds over the identical workload."""
    if overhead is None:
        overhead = ProtocolOverheadModel()
    common = dict(
        synthetic=synthetic,
        target_hit_ratio=target_hit_ratio,
        requests=requests,
        warmup_requests=warmup,
        seed=seed,
        overhead=overhead,
    )
    no_cache = run_testbed(TestbedConfig(mode="no_cache", **common))
    dpc = run_testbed(TestbedConfig(mode="dpc", **common))
    return no_cache, dpc


# ---------------------------------------------------------------------------
# Figure rows
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RatioRow:
    """One x-point of a B_C/B_NC comparison (Figures 2(a)/3(b))."""

    fragment_size: int
    analytical_ratio: float
    experimental_payload_ratio: Optional[float] = None
    experimental_wire_ratio: Optional[float] = None
    measured_hit_ratio: Optional[float] = None


@dataclass(frozen=True)
class SavingsRow:
    """One x-point of a savings-% comparison (Figures 2(b)/5)."""

    hit_ratio: float
    analytical_savings_pct: float
    experimental_savings_pct: Optional[float] = None
    experimental_wire_savings_pct: Optional[float] = None
    measured_hit_ratio: Optional[float] = None


@dataclass(frozen=True)
class CacheabilityRow:
    """One x-point of the cacheability sweeps (Figures 3(a)/6)."""

    cacheability: float
    analytical_network_savings_pct: float
    analytical_firewall_savings_pct: float
    experimental_network_savings_pct: Optional[float] = None
    experimental_firewall_savings_pct: Optional[float] = None


def figure_2a_rows(
    sizes: Sequence[int] = (100, 250, 500, 1024, 2048, 3072, 4096, 5120),
    base: Optional[SyntheticParams] = None,
    hit_ratio: float = 0.8,
) -> List[RatioRow]:
    """Analytical-only B_C/B_NC vs fragment size."""
    if base is None:
        base = SyntheticParams()
    rows = []
    for size in sizes:
        params = _analysis_for(replace(base, fragment_size=size), hit_ratio)
        rows.append(RatioRow(fragment_size=size, analytical_ratio=bytes_ratio(params)))
    return rows


def figure_2b_rows(
    hit_ratios: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0),
    base: Optional[SyntheticParams] = None,
) -> List[SavingsRow]:
    """Analytical-only savings-% vs hit ratio."""
    if base is None:
        base = SyntheticParams()
    return [
        SavingsRow(
            hit_ratio=h,
            analytical_savings_pct=savings_percent(_analysis_for(base, h)),
        )
        for h in hit_ratios
    ]


def figure_3a_rows(
    cacheabilities: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    base: Optional[SyntheticParams] = None,
    hit_ratio: float = 0.8,
) -> List[CacheabilityRow]:
    """Analytical network + firewall savings vs cacheability."""
    if base is None:
        base = SyntheticParams()
    rows = []
    for cacheability in cacheabilities:
        params = _analysis_for(replace(base, cacheability=cacheability), hit_ratio)
        rows.append(
            CacheabilityRow(
                cacheability=cacheability,
                analytical_network_savings_pct=network_savings_percent(params),
                analytical_firewall_savings_pct=firewall_savings_percent(params),
            )
        )
    return rows


def figure_3b_rows(
    sizes: Sequence[int] = (100, 250, 500, 1024, 2048, 4096),
    hit_ratio: float = 0.8,
    requests: int = DEFAULT_REQUESTS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 42,
) -> List[RatioRow]:
    """Analytical + experimental B_C/B_NC vs fragment size."""
    rows = []
    for size in sizes:
        synthetic = SyntheticParams(fragment_size=size)
        analytical = bytes_ratio(_analysis_for(synthetic, hit_ratio))
        no_cache, dpc = run_pair(
            synthetic, hit_ratio, requests=requests, warmup=warmup, seed=seed
        )
        rows.append(
            RatioRow(
                fragment_size=size,
                analytical_ratio=analytical,
                experimental_payload_ratio=_safe_div(
                    dpc.response_payload_bytes, no_cache.response_payload_bytes
                ),
                experimental_wire_ratio=_safe_div(
                    dpc.response_wire_bytes, no_cache.response_wire_bytes
                ),
                measured_hit_ratio=dpc.measured_hit_ratio,
            )
        )
    return rows


def figure_5_rows(
    hit_ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    fragment_size: int = 1024,
    requests: int = DEFAULT_REQUESTS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 42,
) -> List[SavingsRow]:
    """Analytical + experimental savings-% vs hit ratio."""
    rows = []
    synthetic = SyntheticParams(fragment_size=fragment_size)
    for h in hit_ratios:
        analytical = savings_percent(_analysis_for(synthetic, h))
        no_cache, dpc = run_pair(
            synthetic, h, requests=requests, warmup=warmup, seed=seed
        )
        rows.append(
            SavingsRow(
                hit_ratio=h,
                analytical_savings_pct=analytical,
                experimental_savings_pct=_savings_pct(
                    no_cache.response_payload_bytes, dpc.response_payload_bytes
                ),
                experimental_wire_savings_pct=_savings_pct(
                    no_cache.response_wire_bytes, dpc.response_wire_bytes
                ),
                measured_hit_ratio=dpc.measured_hit_ratio,
            )
        )
    return rows


def figure_6_rows(
    cacheabilities: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    hit_ratio: float = 0.8,
    requests: int = DEFAULT_REQUESTS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 42,
) -> List[CacheabilityRow]:
    """Analytical + experimental network savings vs cacheability.

    The firewall-savings column is computed from *measured* byte counts and
    scan work, not re-derived from the model — this is the measured Result 1.
    """
    rows = []
    for cacheability in cacheabilities:
        synthetic = SyntheticParams(cacheability=cacheability)
        params = _analysis_for(synthetic, hit_ratio)
        no_cache, dpc = run_pair(
            synthetic, hit_ratio, requests=requests, warmup=warmup, seed=seed
        )
        scan_nc = no_cache.firewall_bytes
        scan_c = dpc.firewall_bytes + dpc.dpc_scanned_bytes
        rows.append(
            CacheabilityRow(
                cacheability=cacheability,
                analytical_network_savings_pct=network_savings_percent(params),
                analytical_firewall_savings_pct=firewall_savings_percent(params),
                experimental_network_savings_pct=_savings_pct(
                    no_cache.response_payload_bytes, dpc.response_payload_bytes
                ),
                experimental_firewall_savings_pct=_savings_pct(scan_nc, scan_c),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Case study (§6/§8 deployment claims)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CaseStudyResult:
    """Bandwidth and response-time comparison for one origin mode pair."""

    origin_bytes_no_cache: int
    origin_bytes_dpc: int
    mean_rt_no_cache: float
    mean_rt_dpc: float
    p95_rt_no_cache: float
    p95_rt_dpc: float
    measured_hit_ratio: float

    @property
    def bandwidth_reduction_factor(self) -> float:
        """Origin bytes without cache over origin bytes with the DPC."""
        return _safe_div(self.origin_bytes_no_cache, max(self.origin_bytes_dpc, 1))

    @property
    def response_time_reduction_factor(self) -> float:
        """Mean response time without cache over the DPC's."""
        return _safe_div(self.mean_rt_no_cache, max(self.mean_rt_dpc, 1e-12))


def case_study(
    requests: int = 1200,
    warmup: int = 300,
    fragment_size: int = 4096,
    seed: int = 7,
) -> CaseStudyResult:
    """The deployment scenario: big fragments, high locality, heavy logic.

    Large personalized portal fragments with high hit ratios are the regime
    the financial-institution deployment lives in; this is where the
    order-of-magnitude claims come from.
    """
    synthetic = SyntheticParams(fragment_size=fragment_size, cacheability=1.0)
    no_cache, dpc = run_pair(
        synthetic, target_hit_ratio=0.98, requests=requests, warmup=warmup, seed=seed
    )
    return CaseStudyResult(
        origin_bytes_no_cache=no_cache.response_payload_bytes,
        origin_bytes_dpc=dpc.response_payload_bytes,
        mean_rt_no_cache=no_cache.mean_response_time,
        mean_rt_dpc=dpc.mean_response_time,
        p95_rt_no_cache=no_cache.percentile_response_time(0.95),
        p95_rt_dpc=dpc.percentile_response_time(0.95),
        measured_hit_ratio=dpc.measured_hit_ratio,
    )


# ---------------------------------------------------------------------------


def _safe_div(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return 0.0
    return numerator / denominator


def _savings_pct(no_cache: float, cached: float) -> float:
    if no_cache == 0:
        return 0.0
    return (1.0 - cached / no_cache) * 100.0
