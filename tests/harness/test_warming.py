"""Tests for the cache warmer."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.errors import ConfigurationError
from repro.harness.warming import CacheWarmer
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books
from repro.workload import PageSpec


@pytest.fixture
def stack():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=512, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=512)
    return server, bem, dpc


CATALOG_PAGES = [
    PageSpec.create("/catalog.jsp", {"categoryID": c})
    for c in ("Fiction", "Science")
]


class TestWarming:
    def test_requires_cache_enabled_origin(self):
        server = books.build_server(cost_model=FREE)
        with pytest.raises(ConfigurationError):
            CacheWarmer(server, DynamicProxyCache(capacity=8))

    def test_warming_loads_fragments(self, stack):
        server, bem, dpc = stack
        report = CacheWarmer(server, dpc).warm_pages(CATALOG_PAGES)
        assert report.was_effective
        assert report.fragments_loaded > 0
        assert report.slots_occupied == report.fragments_loaded
        assert report.requests_replayed == 2

    def test_second_pass_is_all_warm(self, stack):
        server, bem, dpc = stack
        warmer = CacheWarmer(server, dpc)
        warmer.warm_pages(CATALOG_PAGES)
        second = warmer.warm_pages(CATALOG_PAGES)
        assert second.fragments_loaded == 0
        assert second.fragments_already_warm > 0
        assert not second.was_effective

    def test_first_live_user_after_warming_is_cheap(self, stack):
        server, bem, dpc = stack
        CacheWarmer(server, dpc).warm_pages(CATALOG_PAGES)
        response = server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="live-user")
        )
        assert response.meta["misses"] == 0
        page = dpc.process_response(response.body)
        assert page.fragments_get > 0

    def test_warming_registered_users_preloads_personal_fragments(self, stack):
        server, bem, dpc = stack
        warmer = CacheWarmer(server, dpc)
        warmer.warm_pages(CATALOG_PAGES, user_ids=[None, "user000"])
        response = server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user000", session_id="s")
        )
        assert response.meta["misses"] == 0

    def test_warmed_pages_serve_correctly(self, stack):
        server, bem, dpc = stack
        CacheWarmer(server, dpc).warm_pages(CATALOG_PAGES)
        request = HttpRequest("/catalog.jsp", {"categoryID": "Science"},
                              session_id="x")
        page = dpc.process_response(server.handle(request).body)
        assert page.html == server.render_reference_page(request)
