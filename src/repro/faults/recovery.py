"""The BEM↔DPC resync protocol the paper implies but never specifies.

§4.3.3 makes the BEM the sole authority over the DPC's slots and relies on
fail-stop for desync: a GET against a wiped slot raises.  That is safe but
operationally blunt — the documented recovery is "clear the DPC *and*
flush the BEM", which throws away nothing less than the whole cache.  This
module specifies the protocol a production deployment would actually run:

* **Epoch detection** — the DPC carries a generation counter (bumped on
  every cold restart) on all returning SET/GET traffic
  (:attr:`repro.core.dpc.AssembledPage.epoch`).  The BEM compares it with
  the epoch its directory is synchronized against.
* **Epoch resync** — on a mismatch, invalidate exactly the directory
  entries whose stamp predates the new epoch (their slots were wiped),
  rebuild the freeList, and let normal miss traffic re-warm the cache.
* **Anti-entropy** — a reconciliation sweep that checks every valid entry
  against actual DPC slot occupancy (dropping entries whose slots are
  empty) and repairs slot-discipline violations in the directory's
  bookkeeping via :meth:`~repro.core.cache_directory.CacheDirectory.audit_and_repair`.

The protocol never touches fragment *content* — safety comes from dropping
bookkeeping that can no longer be trusted, so the worst case is extra
misses, never a wrong page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..core.template import SetInstruction, parse_template
from ..errors import RecoveryError


@dataclass
class RecoveryEvent:
    """One recovery action taken by the protocol, for post-mortems."""

    kind: str                 # "epoch_resync" | "anti_entropy" | "quarantine"
    at: float                 # virtual time the action ran
    entries_dropped: int = 0  # directory entries invalidated
    keys_reclaimed: int = 0   # leaked dpcKeys returned to the freeList
    epoch: int = 0            # DPC epoch after the action


@dataclass
class RecoveryStats:
    """Aggregate counters across a protocol instance's lifetime."""

    epoch_resyncs: int = 0
    anti_entropy_sweeps: int = 0
    entries_dropped: int = 0
    slot_mismatches: int = 0
    discipline_repairs: int = 0
    keys_reclaimed: int = 0
    quarantined_sets: int = 0
    events: List[RecoveryEvent] = field(default_factory=list)


class ResyncProtocol:
    """BEM-side recovery authority for one (BEM, DPC) pair."""

    def __init__(self, bem: BackEndMonitor, dpc: DynamicProxyCache) -> None:
        self.bem = bem
        self.dpc = dpc
        self.stats = RecoveryStats()

    # -- epoch handling -----------------------------------------------------

    def observe_epoch(self, epoch: int, now: float = 0.0) -> Optional[RecoveryEvent]:
        """Detection: compare an epoch seen on traffic with the synced one.

        Returns the :class:`RecoveryEvent` of the resync it triggered, or
        ``None`` when the epochs already agree.  Call it with
        ``assembled.epoch`` after every successful assembly — that is the
        "generation counter carried on SET/GET traffic".
        """
        if epoch == self.bem.epoch:
            return None
        return self.resync(epoch, now)

    def resync(self, new_epoch: int, now: float = 0.0) -> RecoveryEvent:
        """Full resynchronization against a restarted proxy.

        Repairs bookkeeping first (corruption must not trip the
        invalidation path), drops every entry stamped before ``new_epoch``,
        reconciles survivors against actual slot occupancy, rebuilds the
        freeList, and advances the BEM's synced epoch.  Raises
        :class:`~repro.errors.RecoveryError` if the directory still
        violates slot discipline afterwards.
        """
        if new_epoch < self.bem.epoch:
            raise RecoveryError(
                "cannot resync backwards: directory at epoch %d, observed %d"
                % (self.bem.epoch, new_epoch)
            )
        directory = self.bem.directory
        repair = self._repair(directory)
        dropped = directory.invalidate_where(
            lambda e: e.epoch < new_epoch, reason="fault_quarantine"
        )
        mismatches = self._reconcile_slots(directory)
        self.bem.epoch = new_epoch
        self.stats.epoch_resyncs += 1
        self.stats.entries_dropped += dropped + mismatches
        event = RecoveryEvent(
            kind="epoch_resync",
            at=now,
            entries_dropped=dropped + mismatches,
            keys_reclaimed=repair.keys_reclaimed,
            epoch=new_epoch,
        )
        self.stats.events.append(event)
        self._verify(directory)
        return event

    def recover(self, now: float = 0.0) -> RecoveryEvent:
        """The fail-stop entry point: called after an ``AssemblyError``.

        If the proxy's epoch moved, this is a restart — run the epoch
        resync.  Otherwise the desync is bookkeeping-level (corruption,
        a lost SET): run an anti-entropy sweep.
        """
        if self.dpc.epoch != self.bem.epoch:
            return self.resync(self.dpc.epoch, now)
        return self.anti_entropy(now)

    # -- anti-entropy -------------------------------------------------------

    def anti_entropy(self, now: float = 0.0) -> RecoveryEvent:
        """Reconcile the directory against DPC slot occupancy.

        Two phases: repair slot-discipline violations in the directory's
        own bookkeeping, then invalidate every valid entry whose DPC slot
        is actually empty (the entry's SET never landed, or the slot was
        corrupted away).  Idempotent; safe to run on a healthy deployment.
        """
        directory = self.bem.directory
        repair = self._repair(directory)
        mismatches = self._reconcile_slots(directory)
        self.stats.anti_entropy_sweeps += 1
        self.stats.entries_dropped += mismatches
        event = RecoveryEvent(
            kind="anti_entropy",
            at=now,
            entries_dropped=mismatches,
            keys_reclaimed=repair.keys_reclaimed,
            epoch=self.bem.epoch,
        )
        self.stats.events.append(event)
        self._verify(directory)
        return event

    # -- unconfirmed-delivery quarantine -------------------------------------

    def quarantine_undelivered(self, wire: str, now: float = 0.0) -> RecoveryEvent:
        """Invalidate the entries SET by a response that never arrived.

        When the origin→proxy transfer of a template dead-letters, the BEM
        has directory entries for fragments whose bytes never reached the
        slot array — and worse, a recycled dpcKey may still hold a *previous*
        fragment's bytes, which a later GET would happily serve.  Treating
        every SET on the undelivered wire as "never applied" closes that
        hole: parse the template, invalidate the entry behind each SET key.
        """
        directory = self.bem.directory
        keys = [
            instruction.key
            for instruction in parse_template(
                wire, self.bem.template_config
            ).instructions
            if isinstance(instruction, SetInstruction)
        ]
        dropped = 0
        for key in keys:
            entry = directory.entry_for_key(key)
            if entry is not None and directory.invalidate(
                entry.fragment_id, reason="fault_quarantine"
            ):
                dropped += 1
        self.stats.quarantined_sets += dropped
        self.stats.entries_dropped += dropped
        event = RecoveryEvent(
            kind="quarantine", at=now, entries_dropped=dropped, epoch=self.bem.epoch
        )
        self.stats.events.append(event)
        return event

    # -- internals ----------------------------------------------------------

    def _repair(self, directory):
        report = directory.audit_and_repair()
        if report.anomalies:
            self.stats.discipline_repairs += report.anomalies
            self.stats.keys_reclaimed += report.keys_reclaimed
        return report

    def _reconcile_slots(self, directory) -> int:
        mismatches = directory.invalidate_where(
            lambda e: not self.dpc.slot_in_use(e.dpc_key),
            reason="fault_quarantine",
        )
        self.stats.slot_mismatches += mismatches
        return mismatches

    def _verify(self, directory) -> None:
        try:
            directory.check_invariants()
        except AssertionError as exc:
            raise RecoveryError("slot discipline violated after recovery: %s" % exc)

    # -- observability ------------------------------------------------------

    def metric_rows(self) -> Iterable[Tuple[str, object]]:
        """Registry rows: resync bookkeeping under ``recovery.*``."""
        return [
            ("recovery.synced_epoch", self.bem.epoch),
            ("recovery.dpc_epoch", self.dpc.epoch),
            ("recovery.epoch_resyncs", self.stats.epoch_resyncs),
            ("recovery.anti_entropy_sweeps", self.stats.anti_entropy_sweeps),
            ("recovery.entries_dropped", self.stats.entries_dropped),
            ("recovery.slot_mismatches", self.stats.slot_mismatches),
            ("recovery.discipline_repairs", self.stats.discipline_repairs),
            ("recovery.keys_reclaimed", self.stats.keys_reclaimed),
            ("recovery.quarantined_sets", self.stats.quarantined_sets),
        ]

    #: Backwards-compatible alias for pre-registry snapshot callers.
    snapshot_rows = metric_rows
