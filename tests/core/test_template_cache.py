"""Tests for the template fast lanes: memoization, plans, parse cache."""

import pytest

from repro.core import fastpath
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import FragmentID
from repro.core.template import (
    OP_GET,
    OP_SET,
    OP_TEXT,
    Template,
    TemplateCache,
    parse_template,
)
from repro.errors import ConfigurationError


class TestSerializeMemo:
    def test_serialize_cached_until_mutation(self):
        template = Template().literal("a").get(1)
        with fastpath.fast_lanes():
            first = template.serialize()
            assert template.serialize() is first  # memo returns same object
            template.literal("b")
            second = template.serialize()
        assert second != first
        with fastpath.reference_lanes():
            assert template.serialize() == second

    def test_wire_bytes_tracks_mutation(self):
        template = Template().get(1)
        with fastpath.fast_lanes():
            before = template.wire_bytes()
            template.literal("xyz")
            assert template.wire_bytes() == before + 3

    def test_reference_lane_skips_memo(self):
        """On the reference lanes every call renders fresh."""
        template = Template().literal("a").get(1)
        with fastpath.reference_lanes():
            first = template.serialize()
            second = template.serialize()
        assert first == second
        assert first is not second


class TestCompiledPlan:
    def test_plan_mirrors_instructions(self):
        template = Template().literal("a").get(2).set(3, "zz")
        plan = template.compiled()
        assert plan == ((OP_TEXT, "a"), (OP_GET, 2), (OP_SET, 3, "zz"))
        assert template.compiled() is plan  # memoized

    def test_plan_invalidated_by_mutation(self):
        template = Template().get(1)
        before = template.compiled()
        template.get(2)
        after = template.compiled()
        assert after != before
        assert after[-1] == (OP_GET, 2)


class TestTemplateCache:
    def test_lru_eviction_order(self):
        cache = TemplateCache(maxsize=2)
        cache.put("a", Template().literal("a"))
        cache.put("b", Template().literal("b"))
        assert cache.get("a") is not None  # refresh 'a'
        cache.put("c", Template().literal("c"))
        assert cache.get("b") is None      # LRU victim
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_hit_and_miss_counters(self):
        cache = TemplateCache()
        assert cache.get("missing") is None
        cache.put("w", Template())
        assert cache.get("w") is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_oversized_wire_not_cached(self):
        cache = TemplateCache(max_wire_bytes=4)
        cache.put("longwire", Template())
        assert len(cache) == 0
        assert cache.get("longwire") is None

    def test_clear(self):
        cache = TemplateCache()
        cache.put("w", Template())
        cache.clear()
        assert len(cache) == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            TemplateCache(maxsize=0)
        with pytest.raises(ConfigurationError):
            TemplateCache(max_wire_bytes=0)


class TestDpcParseCache:
    def test_warm_wire_served_from_cache(self):
        dpc = DynamicProxyCache(capacity=16)
        with fastpath.fast_lanes():
            dpc.process_response(Template().set(1, "frag").serialize())
            wire = Template().get(1).serialize()
            dpc.process_response(wire)
            misses = dpc.parse_cache.misses
            dpc.process_response(wire)
        assert dpc.parse_cache.hits >= 1
        assert dpc.parse_cache.misses == misses

    def test_cache_hit_still_charges_scan_bytes(self):
        """Result 1: scanned bytes grow by len(wire) even on a cache hit."""
        dpc = DynamicProxyCache(capacity=16)
        with fastpath.fast_lanes():
            dpc.process_response(Template().set(1, "frag").serialize())
            wire = Template().get(1).serialize()
            dpc.process_response(wire)
            before = dpc.bytes_scanned
            dpc.process_response(wire)  # parse-cache hit
        assert dpc.bytes_scanned == before + len(wire)

    def test_clear_drops_parse_cache(self):
        dpc = DynamicProxyCache(capacity=16)
        with fastpath.fast_lanes():
            dpc.process_response(Template().set(1, "frag").serialize())
        assert len(dpc.parse_cache) >= 1
        dpc.clear()
        assert len(dpc.parse_cache) == 0


class TestFragmentIdMemo:
    def test_canonical_memoized_on_instance(self):
        fragment_id = FragmentID.create("page", {"user": "bob"})
        first = fragment_id.canonical()
        assert fragment_id.canonical() is first
        assert first == "page?user=bob"

    def test_equal_ids_share_canonical_value(self):
        a = FragmentID.create("f", {"i": 1})
        b = FragmentID.create("f", {"i": 1})
        assert a == b
        assert a.canonical() == b.canonical()
        assert hash(a) == hash(b)
