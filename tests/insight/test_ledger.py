"""Miss-cause ledger: pending-reason mechanics and the sum invariant."""

import pytest

from repro.errors import ConfigurationError
from repro.insight.ledger import MISS_CAUSES, REMOVAL_REASONS, MissCauseLedger


class FakeStats:
    def __init__(self, misses):
        self.misses = misses


class FakeDirectory:
    def __init__(self, misses):
        self.stats = FakeStats(misses)


class TestAttribution:
    def test_first_miss_is_cold(self):
        ledger = MissCauseLedger()
        ledger.record_access("frag?id=1", hit=False)
        assert ledger.counts["cold"] == 1
        assert ledger.misses == 1

    def test_removal_reason_consumed_by_next_miss(self):
        ledger = MissCauseLedger()
        ledger.record_access("f", hit=False)
        ledger.record_insert("f")
        ledger.record_removal("f", "ttl_expired")
        ledger.record_access("f", hit=False)
        assert ledger.counts["ttl_expired"] == 1
        # The reason is consumed exactly once; the next miss is cold again.
        ledger.record_access("f", hit=False)
        assert ledger.counts["cold"] == 2

    @pytest.mark.parametrize("reason", [
        r for r in REMOVAL_REASONS if r != "refreshed"
    ])
    def test_every_removal_reason_attributes(self, reason):
        ledger = MissCauseLedger()
        ledger.record_removal("f", reason)
        ledger.record_access("f", hit=False)
        assert ledger.counts[reason] == 1

    def test_refreshed_never_becomes_a_cause(self):
        ledger = MissCauseLedger()
        ledger.record_removal("f", "data_invalidated")
        ledger.record_removal("f", "refreshed")
        ledger.record_access("f", hit=False)
        assert ledger.counts["cold"] == 1
        assert ledger.counts["data_invalidated"] == 0

    def test_insert_clears_pending(self):
        ledger = MissCauseLedger()
        ledger.record_removal("f", "evicted_capacity")
        ledger.record_insert("f")
        ledger.record_access("f", hit=False)
        assert ledger.counts["cold"] == 1

    def test_hit_clears_stale_pending(self):
        ledger = MissCauseLedger()
        ledger.note_shed("f")
        ledger.record_access("f", hit=True)
        ledger.record_access("f", hit=False)
        assert ledger.counts["cold"] == 1
        assert ledger.counts["shed_overload"] == 0

    def test_shed_note_attributes_next_miss(self):
        ledger = MissCauseLedger()
        ledger.note_shed("f")
        ledger.record_access("f", hit=False)
        assert ledger.counts["shed_overload"] == 1

    def test_later_precise_removal_overwrites_shed_note(self):
        ledger = MissCauseLedger()
        ledger.note_shed("f")
        ledger.record_removal("f", "ttl_expired")
        ledger.record_access("f", hit=False)
        assert ledger.counts["ttl_expired"] == 1
        assert ledger.counts["shed_overload"] == 0

    def test_unknown_reason_rejected(self):
        ledger = MissCauseLedger()
        with pytest.raises(ConfigurationError, match="unknown removal reason"):
            ledger.record_removal("f", "meteor_strike")


class TestInvariants:
    def test_sum_invariant_holds(self):
        ledger = MissCauseLedger()
        for index in range(10):
            ledger.record_access("f%d" % index, hit=False)
        ledger.record_removal("f0", "ttl_expired")
        ledger.record_access("f0", hit=False)
        ledger.check_invariants()
        assert ledger.cause_total() == ledger.misses == 11

    def test_directory_cross_check(self):
        ledger = MissCauseLedger()
        ledger.record_access("f", hit=False)
        ledger.check_invariants(FakeDirectory(misses=1))
        with pytest.raises(AssertionError, match="directory counted"):
            ledger.check_invariants(FakeDirectory(misses=5))


class TestReading:
    def test_as_rows_covers_every_cause_in_order(self):
        ledger = MissCauseLedger()
        assert [cause for cause, _ in ledger.as_rows()] == list(MISS_CAUSES)

    def test_top_fragments_sorted_with_breakdown(self):
        ledger = MissCauseLedger()
        for _ in range(3):
            ledger.record_access("hot", hit=False)
            ledger.record_removal("hot", "data_invalidated")
        ledger.record_access("cool", hit=False)
        top = ledger.top_fragments(2)
        assert top[0][0] == "hot" and top[0][1] == 3
        assert "data_invalidated" in top[0][2] and "cold" in top[0][2]
        assert top[1][0] == "cool"

    def test_metric_rows_are_canonical(self):
        from repro.telemetry.naming import METRIC_NAMES

        ledger = MissCauseLedger()
        for name, _ in ledger.metric_rows():
            assert name in METRIC_NAMES, name
