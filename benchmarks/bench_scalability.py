"""§7 scalability: do the data structures hold up as the cache grows?

"The data structures and algorithms underlying the system must scale,
both in time and space requirements."  The two structures that grow with
deployment size are the BEM's cache directory and the DPC's slot array;
this bench measures probe/insert/assembly cost at 1k / 10k / 100k
resident fragments and asserts the flat (hash-table) scaling the design
promises.
"""

import random

from repro.core.cache_directory import CacheDirectory
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.template import Template, TemplateConfig

SIZES = (1_000, 10_000, 100_000)


def probe_cost(entries: int, probes: int = 2_000, repeats: int = 5) -> float:
    """Best-of-N mean seconds per warm directory lookup at an occupancy.

    Best-of-N damps scheduler noise: we are measuring algorithmic scaling,
    not machine load.
    """
    import time

    directory = CacheDirectory(entries, policy=None)
    ids = [FragmentID.create("f", {"i": i}) for i in range(entries)]
    meta = FragmentMetadata()
    for fragment_id in ids:
        directory.insert(fragment_id, meta, 100, 0.0)
    rng = random.Random(3)
    targets = [ids[rng.randrange(entries)] for _ in range(probes)]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for fragment_id in targets:
            directory.lookup(fragment_id, 1.0)
        best = min(best, (time.perf_counter() - start) / probes)
    return best


def assembly_cost(slots: int, gets: int = 50, trials: int = 200) -> float:
    """Mean seconds to assemble a 50-GET template at a given slot count."""
    import time

    config = TemplateConfig(key_width=6)
    dpc = DynamicProxyCache(capacity=slots, template_config=config)
    content = "z" * 512
    loader = Template(config=config)
    step = max(1, slots // gets)
    keys = list(range(0, slots, step))[:gets]
    for key in keys:
        loader.set(key, content)
    dpc.process_response(loader.serialize())
    warm = Template(config=config)
    for key in keys:
        warm.get(key)
    wire = warm.serialize()
    start = time.perf_counter()
    for _ in range(trials):
        dpc.process_response(wire)
    return (time.perf_counter() - start) / trials


def test_scalability(benchmark, report):
    def run():
        return {
            "probe": {n: probe_cost(n) for n in SIZES},
            "assembly": {n: assembly_cost(n) for n in SIZES},
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "Scalability: per-operation cost vs resident fragments",
        ["fragments", "directory probe (us)", "50-GET assembly (us)"],
        [
            [n,
             "%.2f" % (results["probe"][n] * 1e6),
             "%.1f" % (results["assembly"][n] * 1e6)]
            for n in SIZES
        ],
    )

    probes = [results["probe"][n] for n in SIZES]
    assemblies = [results["assembly"][n] for n in SIZES]
    # Hash-table probes: 100x more entries must NOT mean 100x slower.  A
    # linear structure would blow far past 30x; cache misses and timer
    # noise stay well under it.
    assert probes[-1] < probes[0] * 30
    # Assembly depends on template size, not slot-array size.
    assert assemblies[-1] < assemblies[0] * 10
