"""Microbenchmarks: the hot paths of the DPC/BEM machinery.

§7's scalability requirement: "the data structures and algorithms
underlying the system must scale, both in time and space requirements."
These measure the per-operation costs that bound a deployment's throughput:
the KMP tag scan, template parse+assembly, directory probes, and the
database's indexed lookups.

Run directly for the telemetry overhead smoke:
python benchmarks/bench_micro.py --smoke
"""

import argparse
import gc
import os
import random
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.bem import BackEndMonitor
from repro.core.cache_directory import CacheDirectory
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.scanner import TagScanner
from repro.core.template import SENTINEL, Template
from repro.database import Database, schema
from repro.network.clock import SimulatedClock


def test_kmp_scan_throughput(benchmark):
    """Scanning a 64 KB tag-free response for the sentinel."""
    scanner = TagScanner(SENTINEL)
    text = ("The quick brown fox jumps over the lazy dog. " * 1456)[:65536]
    result = benchmark(scanner.positions, text)
    assert result == []


def test_template_parse_and_assemble(benchmark):
    """A warm 20-GET template through parse + slot splicing."""
    dpc = DynamicProxyCache(capacity=64)
    content = "y" * 1024
    cold = Template()
    warm = Template()
    for key in range(20):
        cold.set(key, content)
        warm.get(key)
    dpc.process_response(cold.serialize())
    wire = warm.serialize()

    page = benchmark(dpc.process_response, wire)
    assert page.page_bytes == 20 * 1024


def test_directory_probe(benchmark):
    """One warm cache-directory lookup (the per-block hit cost)."""
    directory = CacheDirectory(4096)
    ids = [FragmentID.create("f", {"i": i}) for i in range(1000)]
    for fragment_id in ids:
        directory.insert(fragment_id, FragmentMetadata(), 100, 0.0)
    probe = ids[123]

    entry = benchmark(directory.lookup, probe, 1.0)
    assert entry is not None


def test_bem_block_hit_path(benchmark):
    """The full process_block hit path (probe + GET emission)."""
    bem = BackEndMonitor(capacity=1024)
    fragment_id = FragmentID.create("hot", {"k": 1})
    meta = FragmentMetadata()
    bem.process_block(fragment_id, meta, lambda: "x" * 512)

    instruction = benchmark(bem.process_block, fragment_id, meta,
                            lambda: "never")
    assert instruction.key is not None


def test_indexed_lookup(benchmark):
    """Equality probe on an indexed column, 10k-row table."""
    db = Database()
    table = db.create_table(
        schema("t", [("k", "int"), ("cat", "str"), ("v", "int")])
    )
    table.create_index("cat")
    rng = random.Random(3)
    for i in range(10_000):
        table.insert({"k": i, "cat": "c%02d" % rng.randrange(50), "v": i})

    rows = benchmark(table.lookup, "cat", "c25")
    assert rows


def test_invalidation_fanout(benchmark):
    """One row update fanning out through the trigger bus to a BEM
    watching 200 fragments on other rows (the non-matching fast path)."""
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    db = Database()
    table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
    for i in range(256):
        table.insert({"k": i, "v": 0})
    bem.attach_database(db.bus)
    from repro.core.fragments import Dependency

    for i in range(200):
        fragment_id = FragmentID.create("f", {"i": i})
        meta = FragmentMetadata(dependencies=(Dependency("t", key=i),))
        bem.process_block(fragment_id, meta, lambda: "x")

    counter = iter(range(10**9))

    def update_unwatched():
        table.update({"v": next(counter)}, key=255)

    benchmark(update_unwatched)


# -- telemetry overhead smoke (CLI, not collected by pytest-benchmark) --------

from repro.telemetry import (  # noqa: E402 - after sys.path setup
    MetricsRegistry,
    disable_profiling,
    enable_profiling,
    profiled,
    render_metrics,
)


@profiled(label="bench.testbed_run")
def _timed_run(tracing, requests, seed):
    """One seeded DPC testbed run; returns (virtual elapsed, wall elapsed).

    The workload is Table-2 scale (8 fragments of 4 KB per page, ~32 KB
    pages, the paper's regime) so per-request work is representative when
    the fixed ~2 µs-per-span tracing cost is expressed as a percentage.
    """
    from repro.harness.testbed import Testbed, TestbedConfig
    from repro.sites.synthetic import SyntheticParams

    testbed = Testbed(
        TestbedConfig(
            mode="dpc",
            synthetic=SyntheticParams(num_pages=10, fragments_per_page=8,
                                      fragment_size=4096, cacheability=0.75),
            requests=requests, warmup_requests=20,
            seed=seed, tracing=tracing,
        )
    )
    wall_start = time.perf_counter()
    testbed.run()
    return testbed.clock.now(), time.perf_counter() - wall_start


def tracing_overhead(requests=200, repeats=7, seed=7):
    """Measure virtual and wall overhead of enabled tracing.

    Virtual time is deterministic, so that comparison is exact.  Wall time
    on a shared CI box is not: per-run noise routinely exceeds the ~2%
    tracing signal.  So the workload runs with tracing off and on as
    back-to-back pairs (order alternating between pairs) and the *gated*
    wall number is the lower quartile of the per-pair ratios — a
    systematic regression lifts every pair and still trips the bound,
    while a one-sided scheduler or co-tenant burst inflates only some
    pairs and cannot manufacture a failure.  The median is also returned
    for reporting.
    """
    virtual = {False: 0.0, True: 0.0}
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _timed_run(True, requests, seed)  # warm caches/allocator
        for index in range(repeats):
            order = (False, True) if index % 2 == 0 else (True, False)
            walls = {}
            for tracing in order:
                gc.collect()
                elapsed_virtual, elapsed_wall = _timed_run(
                    tracing, requests, seed
                )
                virtual[tracing] = elapsed_virtual
                walls[tracing] = elapsed_wall
            ratios.append(walls[True] / walls[False])
    finally:
        if gc_was_enabled:
            gc.enable()
    virtual_overhead = virtual[True] / virtual[False] - 1.0
    ratios.sort()
    wall_overhead = ratios[len(ratios) // 4] - 1.0
    wall_median = ratios[len(ratios) // 2] - 1.0
    return virtual_overhead, wall_overhead, wall_median


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the telemetry overhead check on a small workload",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="measured requests per run (default 200)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7,
        help="interleaved off/on run pairs for wall timing (default 7)",
    )
    parser.add_argument(
        "--bound", type=float, default=0.05,
        help="maximum tolerated fractional overhead (default 0.05)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("pass --smoke (the micro numbers come from pytest-benchmark)")

    registry = MetricsRegistry()
    enable_profiling(registry)
    try:
        virtual_overhead, wall_overhead, wall_median = tracing_overhead(
            requests=args.requests, repeats=args.repeats,
        )
    finally:
        disable_profiling()

    print("tracing overhead on %d requests (%d off/on pairs):"
          % (args.requests, args.repeats))
    print("  virtual:              %+.4f%%" % (100.0 * virtual_overhead))
    print("  wall (lower quartile): %+.4f%%" % (100.0 * wall_overhead))
    print("  wall (median):         %+.4f%%" % (100.0 * wall_median))
    print()
    print(render_metrics(registry.collect(), title="Profile metrics"))
    assert abs(virtual_overhead) <= args.bound, (
        "virtual overhead %.4f exceeds bound %.2f"
        % (virtual_overhead, args.bound)
    )
    assert wall_overhead <= args.bound, (
        "wall overhead %.4f exceeds bound %.2f" % (wall_overhead, args.bound)
    )
    print("telemetry smoke OK: overhead within %.0f%%" % (100 * args.bound))
    return 0


if __name__ == "__main__":
    sys.exit(main())
