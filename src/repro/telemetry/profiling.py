"""``@profiled``: opt-in wall-clock timing for hot paths.

The benchmarks want real (wall) timings for a handful of hot functions
without littering the source with stopwatch code.  Decorate the function
with :func:`profiled`; nothing happens until a profiling registry is
installed via :func:`enable_profiling`, at which point every call bumps
``profile.<label>.calls`` and feeds ``profile.<label>.wall_s`` (a
histogram of per-call wall seconds).  With profiling disabled the wrapper
costs one global read and a branch.

Unlike the tracer — which measures *virtual* time on the simulated clock —
this module measures *host* time, because its audience is the benchmark
suite asking "what does this cost on my machine".
"""

from __future__ import annotations

import functools
import re
import time
from typing import Optional

from .metrics import MetricsRegistry

#: Per-call wall-second buckets: micro-benchmark flavoured (1us .. 100ms).
PROFILE_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)

_registry: Optional[MetricsRegistry] = None

_LABEL_SANITIZE_RE = re.compile(r"[^a-z0-9_.]+")


def sanitize_label(label: str) -> str:
    """Fold an arbitrary qualname into a valid dotted-name segment chain."""
    cleaned = _LABEL_SANITIZE_RE.sub("_", label.lower()).strip("._")
    return cleaned or "anonymous"


def enable_profiling(registry: MetricsRegistry) -> None:
    """Route ``@profiled`` measurements into ``registry``."""
    global _registry
    _registry = registry


def disable_profiling() -> None:
    """Stop measuring; decorated functions revert to pass-through."""
    global _registry
    _registry = None


def profiling_enabled() -> bool:
    """Whether a profiling registry is currently installed."""
    return _registry is not None


def profiled(fn=None, *, label: Optional[str] = None):
    """Decorator recording call counts and wall time when profiling is on.

    Usable bare (``@profiled``) or with an explicit label
    (``@profiled(label="dpc.assemble")``).  Metrics appear as
    ``profile.<label>.calls`` and ``profile.<label>.wall_s.*`` in whatever
    registry :func:`enable_profiling` installed.
    """

    def decorate(func):
        metric_label = sanitize_label(label or func.__qualname__)
        calls_name = "profile.%s.calls" % metric_label
        wall_name = "profile.%s.wall_s" % metric_label

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            registry = _registry
            if registry is None:
                return func(*args, **kwargs)
            started = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - started
                registry.counter(calls_name).inc()
                registry.histogram(wall_name, PROFILE_BUCKETS).observe(elapsed)

        wrapper.__profiled_label__ = metric_label
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
