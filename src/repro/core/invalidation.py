"""The BEM's cache invalidation manager (§4.3.3).

"A cache invalidation manager monitors fragments to determine when they
become invalid.  Fragments may become invalid due to, for instance,
expiration of the ttl or updates to the underlying data sources."

TTL expiry is handled lazily inside the cache directory; this module covers
the *data-source* half: it subscribes to a database's trigger bus, keeps a
reverse index from tables to the fragments that depend on them, and
invalidates directory entries when a matching change commits.

The fine granularity here — per-row, per-column dependencies — is what lets
the brokerage example invalidate only the price-quote fragment when a quote
ticks, leaving headlines and historical data cached (the §3.2.1 critique of
page-level invalidation).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..database.triggers import ChangeEvent, TriggerBus
from .cache_directory import CacheDirectory
from .fragments import Dependency, FragmentID


class InvalidationManager:
    """Maps committed database changes to fragment invalidations."""

    def __init__(self, directory: CacheDirectory) -> None:
        self.directory = directory
        #: table -> canonical fragmentID -> (FragmentID, dependencies on that table)
        self._watchers: Dict[str, Dict[str, Tuple[FragmentID, Tuple[Dependency, ...]]]] = {}
        #: table -> row key -> canonicals of watchers keyed to that row.  A
        #: change event can only match a ``key=k`` dependency when the event
        #: key equals ``k``, so row-keyed watchers are indexed and visited
        #: only on their own row's events instead of on every table event.
        self._keyed: Dict[str, Dict[object, Set[str]]] = {}
        #: table -> canonicals of watchers with at least one dependency that
        #: is not row-keyed (table-wide, column- or where-filtered); these
        #: must still be checked against every event on the table.
        self._unkeyed: Dict[str, Set[str]] = {}
        self._buses: List[TriggerBus] = []
        self.events_seen = 0
        self.fragments_invalidated = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, bus: TriggerBus) -> None:
        """Subscribe to every table of a database's trigger bus."""
        bus.subscribe(self.on_change)
        self._buses.append(bus)

    def detach_all(self) -> None:
        """Unsubscribe from every attached trigger bus."""
        for bus in self._buses:
            bus.unsubscribe(self.on_change)
        self._buses.clear()

    # -- registration -----------------------------------------------------------

    def watch(self, fragment_id: FragmentID, dependencies: Tuple[Dependency, ...]) -> None:
        """Start watching a freshly cached fragment's dependencies.

        Called by the BEM whenever it inserts a directory entry.  Fragments
        with no dependencies are never registered (nothing to watch).
        """
        canonical = fragment_id.canonical()
        for dependency in dependencies:
            table_watchers = self._watchers.setdefault(dependency.table, {})
            existing = table_watchers.get(canonical)
            if existing is None:
                table_watchers[canonical] = (fragment_id, (dependency,))
            else:
                table_watchers[canonical] = (fragment_id, existing[1] + (dependency,))
            if dependency.key is None:
                self._unkeyed.setdefault(dependency.table, set()).add(canonical)
            else:
                by_key = self._keyed.setdefault(dependency.table, {})
                by_key.setdefault(dependency.key, set()).add(canonical)

    def unwatch(self, fragment_id: FragmentID) -> None:
        """Stop watching one fragment's dependencies."""
        canonical = fragment_id.canonical()
        for table, table_watchers in self._watchers.items():
            removed = table_watchers.pop(canonical, None)
            if removed is not None:
                self._deindex(table, canonical, removed[1])

    def _deindex(
        self, table: str, canonical: str, dependencies: Tuple[Dependency, ...]
    ) -> None:
        """Drop one watcher's canonical from the per-table event indexes."""
        unkeyed = self._unkeyed.get(table)
        if unkeyed is not None:
            unkeyed.discard(canonical)
        by_key = self._keyed.get(table)
        if by_key is not None:
            for dependency in dependencies:
                if dependency.key is not None:
                    bucket = by_key.get(dependency.key)
                    if bucket is not None:
                        bucket.discard(canonical)
                        if not bucket:
                            del by_key[dependency.key]

    def watched_count(self) -> int:
        """Distinct fragments currently being watched."""
        seen = set()
        for table_watchers in self._watchers.values():
            seen.update(table_watchers)
        return len(seen)

    # -- event handling ------------------------------------------------------------

    def on_change(self, event: ChangeEvent) -> None:
        """Trigger-bus callback: invalidate fragments hit by this change.

        Only *candidate* watchers are examined: those with a dependency
        keyed to the changed row (via the per-key index) plus those with
        any non-row-keyed dependency.  A watcher outside that set cannot
        match the event — ``Dependency.matches`` requires equal keys —
        so skipping it changes nothing observable except scan cost.
        """
        self.events_seen += 1
        table_watchers = self._watchers.get(event.table)
        if not table_watchers:
            return
        candidates = set(self._unkeyed.get(event.table, ()))
        by_key = self._keyed.get(event.table)
        if by_key is not None:
            candidates.update(by_key.get(event.key, ()))
        doomed: List[Tuple[str, FragmentID, Tuple[Dependency, ...]]] = []
        for canonical in candidates:
            watcher = table_watchers.get(canonical)
            if watcher is None:  # pragma: no cover - index/table desync guard
                continue
            fragment_id, dependencies = watcher
            entry = self.directory.peek(fragment_id)
            if entry is None or not entry.is_valid:
                doomed.append((canonical, fragment_id, dependencies))
                continue
            if any(
                dep.matches(
                    event.table,
                    event.key,
                    event.changed_columns,
                    row=event.row,
                    old_row=event.old_row,
                )
                for dep in dependencies
            ):
                if self.directory.invalidate(
                    fragment_id, reason="data_invalidated"
                ):
                    self.fragments_invalidated += 1
                doomed.append((canonical, fragment_id, dependencies))
        for canonical, fragment_id, dependencies in doomed:
            table_watchers.pop(canonical, None)
            self._deindex(event.table, canonical, dependencies)
