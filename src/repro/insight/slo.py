"""Declarative SLOs with multi-window burn-rate alerting on virtual time.

An :class:`SloObjective` states a service-level objective over an existing
sample stream — "95% of virtual response times stay under 2 s", "the
fragment hit ratio stays above 0.6", "fewer than 1 request in 100 is
dropped" — and the :class:`SloEngine` evaluates it the way production SRE
practice does (the Google SRE workbook's multi-window, multi-burn-rate
recipe):

* every sample is classified good/bad against the objective's per-sample
  threshold; the **error budget** is ``1 - compliance_target``;
* the **burn rate** over a window is ``bad_fraction / budget`` — 1.0 means
  the budget is being consumed exactly at the sustainable rate;
* an alert fires only when **both** a long window and a short window burn
  above the threshold: the long window supplies significance (one slow
  request cannot page), the short window supplies recency (the alert
  clears quickly once the system recovers).

Windows are measured on the **virtual clock** — the same simulated seconds
every harness advances — so runs are deterministic and alert timestamps
line up with span trees and bucket series.  Fired alerts are typed
(:class:`SloAlert`) and export through the same JSON-lines conventions as
:mod:`repro.telemetry.export` (:func:`alerts_to_json_lines` /
:func:`alerts_from_json_lines` round-trip byte-identically).

Percentile objectives need no special machinery: "p95 latency ≤ T" is
exactly "at least 95% of per-request samples are ≤ T", i.e. a per-sample
threshold of ``T`` with ``compliance_target=0.95``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..telemetry.naming import validate_metric_name

#: Comparators an objective may use against each sample.
COMPARATORS = ("<=", ">=")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over a named sample stream."""

    #: Objective name (dotted scheme, e.g. ``slo.latency_p95``).
    name: str
    #: Sample stream it watches (an existing metric name, e.g.
    #: ``bem.hit_ratio`` fed per access, or ``request.elapsed_s`` per page).
    metric: str
    #: Per-sample goodness test: ``sample <comparator> threshold``.
    comparator: str
    threshold: float
    #: Required good fraction (0.95 encodes a p95 objective directly).
    compliance_target: float = 0.99
    #: Multi-window evaluation (virtual seconds).
    long_window_s: float = 60.0
    short_window_s: float = 5.0
    #: Burn rate both windows must exceed to fire.
    burn_threshold: float = 2.0
    #: Significance floor: no verdict until the long window holds this many.
    min_samples: int = 20

    def __post_init__(self) -> None:
        validate_metric_name(self.name)
        validate_metric_name(self.metric)
        if self.comparator not in COMPARATORS:
            raise ConfigurationError(
                "comparator must be one of %s" % (COMPARATORS,)
            )
        if not 0.0 < self.compliance_target < 1.0:
            raise ConfigurationError("compliance_target must be in (0, 1)")
        if self.short_window_s <= 0 or self.long_window_s < self.short_window_s:
            raise ConfigurationError(
                "windows must satisfy 0 < short_window_s <= long_window_s"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be positive")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be at least 1")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction."""
        return 1.0 - self.compliance_target

    def good(self, value: float) -> bool:
        """Classify one sample against the per-sample threshold."""
        if self.comparator == "<=":
            return value <= self.threshold
        return value >= self.threshold


def objective_from_spec(spec: Dict[str, object]) -> SloObjective:
    """Build an objective from a plain-dict declaration (config files)."""
    try:
        return SloObjective(**spec)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigurationError("bad SLO spec %r: %s" % (spec, exc)) from None


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert, typed and timestamped on the virtual clock."""

    objective: str
    metric: str
    fired_at: float          # virtual seconds
    burn_long: float
    burn_short: float
    long_window_s: float
    short_window_s: float
    burn_threshold: float
    compliance_target: float


@dataclass
class _ObjectiveState:
    """Windowed samples plus the firing latch for one objective."""

    objective: SloObjective
    samples: Deque[Tuple[float, bool]] = field(default_factory=deque)
    active: bool = False
    observed: int = 0
    bad: int = 0


class SloEngine:
    """Evaluates a set of objectives over observed samples."""

    def __init__(self, objectives: List[SloObjective]) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError("objective names must be unique")
        self._states: List[_ObjectiveState] = [
            _ObjectiveState(objective=objective) for objective in objectives
        ]
        self._by_metric: Dict[str, List[_ObjectiveState]] = {}
        for state in self._states:
            self._by_metric.setdefault(state.objective.metric, []).append(state)
        self.alerts: List[SloAlert] = []

    @classmethod
    def from_specs(cls, specs: List[Dict[str, object]]) -> "SloEngine":
        """Build an engine from plain-dict objective declarations."""
        return cls([objective_from_spec(spec) for spec in specs])

    @property
    def objectives(self) -> List[SloObjective]:
        """The declared objectives, in declaration order."""
        return [state.objective for state in self._states]

    # -- feeding ------------------------------------------------------------

    def observe(self, metric: str, value: float, now: float) -> None:
        """One sample on stream ``metric`` at virtual time ``now``."""
        states = self._by_metric.get(metric)
        if not states:
            return
        for state in states:
            objective = state.objective
            good = objective.good(value)
            state.samples.append((now, good))
            state.observed += 1
            if not good:
                state.bad += 1
            self._prune(state, now)
            self._evaluate(state, now)

    # -- evaluation ---------------------------------------------------------

    def _prune(self, state: _ObjectiveState, now: float) -> None:
        horizon = now - state.objective.long_window_s
        samples = state.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def burn_rates(
        self, name: str, now: float
    ) -> Tuple[Optional[float], Optional[float]]:
        """Current (long, short) burn rates; ``None`` below ``min_samples``."""
        state = self._state(name)
        self._prune(state, now)
        return (
            self._burn(state, now, state.objective.long_window_s),
            self._burn(state, now, state.objective.short_window_s),
        )

    def _burn(
        self, state: _ObjectiveState, now: float, window_s: float
    ) -> Optional[float]:
        horizon = now - window_s
        total = bad = 0
        for at, good in reversed(state.samples):
            if at < horizon:
                break
            total += 1
            if not good:
                bad += 1
        if total < state.objective.min_samples:
            return None
        return (bad / total) / state.objective.budget

    def _evaluate(self, state: _ObjectiveState, now: float) -> None:
        objective = state.objective
        long_burn = self._burn(state, now, objective.long_window_s)
        short_burn = self._burn(state, now, objective.short_window_s)
        if long_burn is None or short_burn is None:
            return
        firing = (
            long_burn >= objective.burn_threshold
            and short_burn >= objective.burn_threshold
        )
        if firing and not state.active:
            state.active = True
            self.alerts.append(
                SloAlert(
                    objective=objective.name,
                    metric=objective.metric,
                    fired_at=now,
                    burn_long=round(long_burn, 4),
                    burn_short=round(short_burn, 4),
                    long_window_s=objective.long_window_s,
                    short_window_s=objective.short_window_s,
                    burn_threshold=objective.burn_threshold,
                    compliance_target=objective.compliance_target,
                )
            )
        elif not firing and state.active and (
            long_burn < objective.burn_threshold
            and short_burn < objective.burn_threshold
        ):
            # Recovery: both windows back under threshold re-arms the latch
            # (one sustained violation == one alert, not one per sample).
            state.active = False

    def _state(self, name: str) -> _ObjectiveState:
        for state in self._states:
            if state.objective.name == name:
                return state
        raise KeyError(name)

    # -- reading ------------------------------------------------------------

    def active_alerts(self) -> List[str]:
        """Names of objectives currently latched firing."""
        return [
            state.objective.name for state in self._states if state.active
        ]

    def compliance(self, name: str) -> float:
        """Lifetime good fraction for one objective (1.0 on no samples)."""
        state = self._state(name)
        if state.observed == 0:
            return 1.0
        return (state.observed - state.bad) / state.observed

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows under ``slo.*``."""
        return [
            ("slo.objectives", len(self._states)),
            ("slo.samples", sum(state.observed for state in self._states)),
            ("slo.alerts_fired", len(self.alerts)),
            ("slo.alerts_active", sum(1 for s in self._states if s.active)),
        ]


# -- alert export (telemetry.export conventions) ----------------------------


def alerts_to_json_lines(alerts: List[SloAlert]) -> str:
    """One JSON object per alert, keys sorted — same shape rules as
    :func:`repro.telemetry.export.to_json_lines`."""
    return "\n".join(
        json.dumps(asdict(alert), sort_keys=True) for alert in alerts
    )


def alerts_from_json_lines(text: str) -> List[SloAlert]:
    """Parse :func:`alerts_to_json_lines` output back into typed alerts."""
    alerts: List[SloAlert] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        alerts.append(SloAlert(**json.loads(line)))
    return alerts
