"""Uniform benchmark runner: ``python -m repro bench``.

The library benchmarks in :mod:`repro.perf` all follow one contract — a
callable that runs a paired fast-vs-reference measurement and returns a
JSON-serializable dict with a ``speedup`` block.  This module is the single
front door to them, so individual bench scripts stop duplicating argparse
and JSON plumbing::

    python -m repro bench --list              # what can I run?
    python -m repro bench hotpath             # run, print the result
    python -m repro bench hotpath --smoke     # small run + regression gate
    python -m repro bench hotpath --json BENCH_HOTPATH.json --record
    python -m repro bench all                 # every registered benchmark

Results files (``BENCH_*.json``) hold a ``full`` and a ``smoke`` entry.
The smoke gate compares a fresh smoke run's lower-quartile speedup against
the committed smoke baseline and fails on a >10% drop — the same paired
lower-quartile scheme the telemetry-smoke job uses, so one noisy CI pair
cannot fake a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from .perf import hotpath as _hotpath
from .perf import insight as _insight
from .perf import scan as _scan


class BenchSpec:
    """One registered benchmark: runner, defaults, and its results file."""

    __slots__ = ("name", "description", "runner", "default_json", "smoke_settings")

    def __init__(
        self,
        name: str,
        description: str,
        runner: Callable[..., Dict[str, object]],
        default_json: str,
        smoke_settings: Dict[str, int],
    ) -> None:
        self.name = name
        self.description = description
        self.runner = runner
        self.default_json = default_json
        self.smoke_settings = smoke_settings


#: Every benchmark reachable from the CLI, in display order.
REGISTRY: Dict[str, BenchSpec] = {
    "hotpath": BenchSpec(
        name="hotpath",
        description="end-to-end Figure 4 testbed, fast vs reference lanes",
        runner=_hotpath.run_hotpath,
        default_json="BENCH_HOTPATH.json",
        smoke_settings=_hotpath.SMOKE_SETTINGS,
    ),
    "scan": BenchSpec(
        name="scan",
        description="sentinel scan microbenchmark, str.find vs KMP",
        runner=_scan.run_scan,
        default_json="BENCH_SCAN.json",
        smoke_settings=_scan.SMOKE_SETTINGS,
    ),
    "insight": BenchSpec(
        name="insight",
        description="insight-layer overhead, attached vs detached (<5% gate)",
        runner=_insight.run_insight,
        default_json="BENCH_INSIGHT.json",
        smoke_settings=_insight.SMOKE_SETTINGS,
    ),
}

#: Maximum tolerated fractional drop of the smoke speedup vs the baseline.
DEFAULT_REGRESSION_BOUND = 0.10


def run_benchmark(name: str, smoke: bool = False) -> Dict[str, object]:
    """Run one registered benchmark and return its result dict."""
    spec = REGISTRY[name]
    settings = dict(spec.smoke_settings) if smoke else {}
    return spec.runner(**settings)


def load_results(path: str) -> Optional[Dict[str, object]]:
    """Read a ``BENCH_*.json`` file; ``None`` when it does not exist."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def record_result(path: str, result: Dict[str, object], smoke: bool) -> None:
    """Merge one run into a results file under its ``full``/``smoke`` key."""
    payload = load_results(path) or {}
    payload[("smoke" if smoke else "full")] = result
    payload["recorded"] = time.strftime("%Y-%m-%d")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_against_baseline(
    result: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    bound: float = DEFAULT_REGRESSION_BOUND,
) -> str:
    """Compare a smoke run against the committed smoke baseline.

    Returns a human-readable verdict; raises :class:`AssertionError` when
    the fresh lower-quartile speedup sits more than ``bound`` below the
    baseline's.  A missing baseline passes (first run records it).
    """
    fresh = float(result["speedup"]["lower_quartile"])  # type: ignore[index]
    if baseline is None or "smoke" not in baseline:
        return "no committed baseline; measured speedup %.2fx" % fresh
    recorded = float(baseline["smoke"]["speedup"]["lower_quartile"])  # type: ignore[index]
    floor = recorded * (1.0 - bound)
    verdict = "speedup %.2fx vs baseline %.2fx (floor %.2fx)" % (
        fresh, recorded, floor,
    )
    if fresh < floor:
        raise AssertionError("perf regression: " + verdict)
    return verdict + " — OK"


def _print_result(result: Dict[str, object]) -> None:
    """Render one benchmark result for the terminal."""
    print(json.dumps(result, indent=2, sort_keys=True))


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro bench`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the registered performance benchmarks.",
    )
    parser.add_argument(
        "names", nargs="*",
        help="benchmarks to run (see --list; 'all' for every one)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_benchmarks",
        help="list registered benchmarks and exit",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small run, gated against the committed smoke baseline",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="results file to read the baseline from / record into "
        "(default: the benchmark's own BENCH_*.json)",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="write this run into the results file as the new baseline",
    )
    parser.add_argument(
        "--bound", type=float, default=DEFAULT_REGRESSION_BOUND,
        help="maximum tolerated fractional speedup regression "
        "(default %.2f)" % DEFAULT_REGRESSION_BOUND,
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro bench``; returns an exit code."""
    args = build_parser().parse_args(argv)
    if args.list_benchmarks:
        for spec in REGISTRY.values():
            print("%-10s %s  [%s]" % (spec.name, spec.description, spec.default_json))
        return 0
    names: List[str] = []
    for name in args.names or ["all"]:
        if name == "all":
            names.extend(REGISTRY)
        elif name in REGISTRY:
            names.append(name)
        else:
            print("unknown benchmark %r (try --list)" % name, file=sys.stderr)
            return 2
    exit_code = 0
    for name in dict.fromkeys(names):
        spec = REGISTRY[name]
        path = args.json if args.json is not None else spec.default_json
        result = run_benchmark(name, smoke=args.smoke)
        print("== %s%s ==" % (name, " (smoke)" if args.smoke else ""))
        _print_result(result)
        if args.smoke:
            try:
                print(gate_against_baseline(
                    result, load_results(path), bound=args.bound,
                ))
            except AssertionError as failure:
                print(str(failure), file=sys.stderr)
                exit_code = 1
        if args.record:
            record_result(path, result, smoke=args.smoke)
            print("recorded into %s" % path)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
