"""Command-line interface: regenerate any paper artifact from a shell.

::

    python -m repro table2
    python -m repro fig2a fig2b fig3a          # analytical, instant
    python -m repro fig3b --requests 800       # testbed-backed
    python -m repro case-study edge
    python -m repro all                        # everything
    python -m repro bench --list               # perf benchmarks (repro.bench)
    python -m repro doctor                     # cache diagnosis (repro.insight)

Each command prints the same rows the corresponding figure/table reports
(and that EXPERIMENTS.md records).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import TABLE2
from .harness.edge import compare_deployments
from .harness.experiments import (
    case_study,
    figure_2a_rows,
    figure_2b_rows,
    figure_3a_rows,
    figure_3b_rows,
    figure_5_rows,
    figure_6_rows,
)
from .harness.reporting import print_table

#: Artifact names accepted on the command line, in run order for 'all'.
ARTIFACTS = (
    "table2", "fig2a", "fig2b", "fig3a", "fig3b", "fig5", "fig6",
    "case-study", "edge", "trace",
)


def _run_table2(args) -> None:
    print_table(
        "Table 2: Baseline Parameter Settings",
        ["parameter", "value"],
        list(TABLE2.as_table().items()),
    )


def _run_fig2a(args) -> None:
    print_table(
        "Figure 2(a): B_C/B_NC vs fragment size (analytical)",
        ["size (B)", "ratio"],
        [[r.fragment_size, "%.4f" % r.analytical_ratio]
         for r in figure_2a_rows()],
    )


def _run_fig2b(args) -> None:
    print_table(
        "Figure 2(b): savings (%) vs hit ratio (analytical)",
        ["h", "savings (%)"],
        [["%.2f" % r.hit_ratio, "%.2f" % r.analytical_savings_pct]
         for r in figure_2b_rows()],
    )


def _run_fig3a(args) -> None:
    print_table(
        "Figure 3(a): cost savings vs cacheability (analytical)",
        ["cacheability", "network (%)", "firewall (%)"],
        [["%.0f%%" % (r.cacheability * 100),
          "%.2f" % r.analytical_network_savings_pct,
          "%.2f" % r.analytical_firewall_savings_pct]
         for r in figure_3a_rows()],
    )


def _run_fig3b(args) -> None:
    rows = figure_3b_rows(requests=args.requests, warmup=args.warmup)
    print_table(
        "Figure 3(b): B_C/B_NC vs fragment size (analytical + experimental)",
        ["size (B)", "analytical", "exp payload", "exp wire", "measured h"],
        [[r.fragment_size, "%.4f" % r.analytical_ratio,
          "%.4f" % r.experimental_payload_ratio,
          "%.4f" % r.experimental_wire_ratio,
          "%.3f" % r.measured_hit_ratio]
         for r in rows],
    )


def _run_fig5(args) -> None:
    rows = figure_5_rows(requests=args.requests, warmup=args.warmup)
    print_table(
        "Figure 5: savings (%) vs hit ratio (analytical + experimental)",
        ["target h", "measured h", "analytical", "exp payload", "exp wire"],
        [["%.1f" % r.hit_ratio, "%.3f" % r.measured_hit_ratio,
          "%.2f" % r.analytical_savings_pct,
          "%.2f" % r.experimental_savings_pct,
          "%.2f" % r.experimental_wire_savings_pct]
         for r in rows],
    )


def _run_fig6(args) -> None:
    rows = figure_6_rows(requests=args.requests, warmup=args.warmup)
    print_table(
        "Figure 6: savings vs cacheability (analytical + experimental)",
        ["cacheability", "analytical net", "exp net", "analytical fw",
         "measured fw"],
        [["%.0f%%" % (r.cacheability * 100),
          "%.2f" % r.analytical_network_savings_pct,
          "%.2f" % r.experimental_network_savings_pct,
          "%.2f" % r.analytical_firewall_savings_pct,
          "%.2f" % r.experimental_firewall_savings_pct]
         for r in rows],
    )


def _run_case_study(args) -> None:
    result = case_study(requests=args.requests, warmup=args.warmup)
    print_table(
        "Case study: order-of-magnitude claims",
        ["metric", "no cache", "DPC", "reduction"],
        [
            ["origin bytes", result.origin_bytes_no_cache,
             result.origin_bytes_dpc,
             "%.1fx" % result.bandwidth_reduction_factor],
            ["mean RT (ms)", "%.2f" % (result.mean_rt_no_cache * 1000),
             "%.2f" % (result.mean_rt_dpc * 1000),
             "%.1fx" % result.response_time_reduction_factor],
        ],
    )


def _run_edge(args) -> None:
    results = compare_deployments(requests=args.requests, warmup=args.warmup)
    base = results["origin_only"]
    print_table(
        "Edge placement (Section 7): deployment comparison",
        ["deployment", "mean RT (ms)", "speedup", "WAN bytes"],
        [[name,
          "%.1f" % (r.mean_response_time * 1000),
          "%.1fx" % (base.mean_response_time / r.mean_response_time),
          r.wan_payload_bytes]
         for name, r in results.items()],
    )


def _run_trace(args) -> None:
    from .harness.monitoring import take_snapshot
    from .harness.testbed import Testbed, TestbedConfig
    from .telemetry import render_metrics, render_span_tree

    requests = min(args.requests, 50)
    testbed = Testbed(
        TestbedConfig(mode="dpc", requests=requests, warmup_requests=0,
                      tracing=True)
    )
    testbed.run()
    print("Span tree of the last traced request (virtual time):")
    print()
    print(render_span_tree(testbed.tracer.last_root))
    print()
    snapshot = take_snapshot(
        bem=testbed.monitor,
        dpc=testbed.dpc,
        firewall=testbed.firewall,
        sniffer=testbed.sniffer,
        tracer=testbed.tracer,
    )
    print(render_metrics(snapshot.rows, title="Deployment metrics"))


_RUNNERS = {
    "table2": _run_table2,
    "fig2a": _run_fig2a,
    "fig2b": _run_fig2b,
    "fig3a": _run_fig3a,
    "fig3b": _run_fig3b,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "case-study": _run_case_study,
    "edge": _run_edge,
    "trace": _run_trace,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the SIGMOD 2002 dynamic-proxy-caching "
        "paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=ARTIFACTS + ("all",),
        help="which artifacts to regenerate ('all' for everything)",
    )
    parser.add_argument(
        "--requests", type=int, default=800,
        help="measured requests per testbed run (default 800)",
    )
    parser.add_argument(
        "--warmup", type=int, default=200,
        help="warm-up requests before measurement (default 200)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``python -m repro bench ...`` is routed to the benchmark runner
    (:mod:`repro.bench`) and ``python -m repro doctor ...`` to the cache
    diagnosis CLI (:mod:`repro.insight.doctor`); each owns its own
    argument parser.  Everything else is an artifact name handled here.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "bench":
        from .bench import main as bench_main

        return bench_main(arguments[1:])
    if arguments and arguments[0] == "doctor":
        from .insight.doctor import main as doctor_main

        return doctor_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    requested: List[str] = []
    for name in args.artifacts:
        if name == "all":
            requested.extend(ARTIFACTS)
        else:
            requested.append(name)
    seen = set()
    for name in requested:
        if name in seen:
            continue
        seen.add(name)
        _RUNNERS[name](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
