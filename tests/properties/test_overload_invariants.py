"""Property: overload protection never loses a request or corrupts the cache.

Three invariant families, all seeded through hypothesis:

* **Queue discipline** — under any admissible offer schedule a bounded
  queue's waiting room never exceeds its capacity (nor a best-effort
  arrival its unreserved share), and every offer is accounted exactly once
  (``admitted + rejected == offered``).
* **Outcome conservation** — any overload run, whatever the arrival rate,
  deadline, policy, or breaker, tiles the offered traffic exactly:
  ``fresh + stale + shed + timed_out == offered``, with a ledger row for
  every request that received nothing.
* **Shedding never corrupts the DPC** — after an overload run the cache
  directory still satisfies the slot-discipline invariant (every dpcKey
  free XOR backing exactly one valid entry); rejections happen *before*
  the origin script runs, so a shed request can never leave a partial SET.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appserver import HttpRequest
from repro.errors import QueueFullError
from repro.harness.testbed import TestbedConfig
from repro.overload import (
    BoundedQueue,
    CircuitBreaker,
    OverloadConfig,
    OverloadHarness,
    StaticThresholdPolicy,
    make_policy,
)
from repro.sites.synthetic import SyntheticParams
from repro.workload import FlashCrowdProcess

# -- queue discipline ---------------------------------------------------------

offers = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),   # inter-arrival gap
        st.floats(min_value=0.001, max_value=3.0),  # service demand
        st.integers(0, 1),                          # priority
    ),
    min_size=1,
    max_size=60,
)


@given(offers, st.integers(1, 12), st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_waiting_room_never_exceeds_capacity(schedule, capacity, servers):
    queue = BoundedQueue("q", capacity=capacity, servers=servers)
    now = 0.0
    for gap, service_s, _ in schedule:
        now += gap
        try:
            placement = queue.offer(now, service_s)
        except QueueFullError:
            assert queue.depth(now) >= capacity
            continue
        assert placement.depth <= capacity
        assert queue.depth(now) <= capacity
        assert placement.start_at >= now
        assert placement.finish_at == placement.start_at + service_s
    stats = queue.stats
    assert stats.admitted + stats.rejected == stats.offered == len(schedule)
    assert stats.max_depth <= capacity


@given(offers, st.integers(2, 12))
@settings(max_examples=80, deadline=None)
def test_priority_reserve_holds_under_any_schedule(schedule, capacity):
    queue = BoundedQueue(
        "q", capacity=capacity, servers=1, discipline="priority",
        reserve_fraction=0.5,
    )
    limit = capacity - int(capacity * 0.5)
    now = 0.0
    for gap, service_s, priority in schedule:
        now += gap
        depth_before = queue.depth(now)
        try:
            queue.offer(now, service_s, priority=priority)
        except QueueFullError:
            # A best-effort arrival is refused exactly when the unreserved
            # share is gone; a priority arrival only when the room is full.
            if priority > 0:
                assert depth_before >= capacity
            else:
                assert depth_before >= limit
            continue
        assert queue.depth(now) <= capacity
    stats = queue.stats
    assert stats.admitted + stats.rejected == stats.offered == len(schedule)


# -- conservation and slot discipline across whole runs -----------------------

def overload_harness(mode, base_rate, multiplier, deadline_s, policy_name,
                     with_breaker, capacity):
    params = SyntheticParams(
        num_pages=6, fragments_per_page=3, fragment_size=512,
        cacheability=0.67,
    )
    testbed = TestbedConfig(
        mode=mode, synthetic=params, target_hit_ratio=0.7,
        requests=80, warmup_requests=20,
        arrivals=FlashCrowdProcess(
            base_rate=base_rate, multiplier=multiplier, burst_at=2.0,
            hold_s=3.0, decay_s=1.0, deterministic=True,
        ),
    )
    policy = make_policy(policy_name) if policy_name else None
    if isinstance(policy, StaticThresholdPolicy):
        policy = StaticThresholdPolicy(threshold=max(1, capacity // 2))
    return OverloadHarness(OverloadConfig(
        testbed=testbed,
        deadline_s=deadline_s,
        app_servers=1,
        app_queue_capacity=capacity,
        db_servers=1,
        db_queue_capacity=capacity,
        policy=policy,
        breaker=CircuitBreaker(failure_threshold=3, open_s=1.0)
        if with_breaker else None,
        bucket_requests=25,
        correctness_every=4,
    ))


run_space = st.tuples(
    st.sampled_from(["dpc", "no_cache"]),
    st.sampled_from([4.0, 20.0, 60.0]),            # base arrival rate
    st.sampled_from([1.0, 10.0]),                  # flash multiplier
    st.sampled_from([0.2, 1.0, None]),             # deadline
    st.sampled_from([None, "static-threshold", "codel", "token-bucket"]),
    st.booleans(),                                 # breaker armed
    st.integers(2, 16),                            # queue capacity
)


@given(run_space)
@settings(max_examples=25, deadline=None)
def test_outcomes_conserve_and_drops_are_ledgered(case):
    harness = overload_harness(*case)
    result = harness.run()
    result.check_conservation()
    assert result.offered == 100
    assert result.completed + result.shed + result.timed_out == result.offered
    # Every request that got nothing has a named ledger row.
    named = result.ledger.total - result.ledger.count("messages_dropped")
    assert named == result.shed + result.timed_out
    assert result.incorrect_pages == 0
    # Bucket series re-tiles the totals.
    assert sum(b.requests for b in result.buckets) == result.offered
    assert sum(b.fresh for b in result.buckets) == result.completed_fresh
    assert sum(b.shed for b in result.buckets) == result.shed


@given(run_space.filter(lambda case: case[0] == "dpc"))
@settings(max_examples=15, deadline=None)
def test_shedding_never_corrupts_dpc_slots(case):
    harness = overload_harness(*case)
    result = harness.run()
    result.check_conservation()
    monitor = harness.testbed.monitor
    capacity = monitor.directory.capacity
    monitor.directory.check_invariants()
    assert monitor.directory.valid_count() + len(monitor.directory.free_list) == (
        capacity
    )
    # And the testbed still serves byte-correct fresh pages afterwards.
    harness.testbed.clock.advance(60.0)  # drain the queues
    request = HttpRequest("/page.jsp", {"pageID": "0"})
    html = harness.testbed.serve_once(request)
    assert html == harness.testbed.render_oracle(request)
