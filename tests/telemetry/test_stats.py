"""The unified percentile/mean/summarize helpers."""

import pytest

from repro.telemetry.stats import mean, percentile, summarize


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_nearest_rank_convention(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0   # ceil(0.5*4)=2nd rank
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 1.00) == 4.0
        assert percentile(values, 0.0) == 1.0    # clamped to the first rank

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_p99_of_small_samples_is_the_max(self):
        values = list(range(50))
        assert percentile(values, 0.99) == 49

    def test_harness_reexport_is_the_same_function(self):
        from repro.overload.harness import percentile as harness_percentile

        assert harness_percentile is percentile


class TestMeanAndSummarize:
    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_summarize_empty_is_all_zeros(self):
        summary = summarize([])
        assert summary == {"count": 0, "mean": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_summarize_values(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0
        assert summary["max"] == 4.0
