"""The omitted Section 5 analysis, reconstructed: server-side performance.

"Due to space limitations, we only present the results of our bandwidth
savings analysis" — this bench presents the other half: expected origin
time per request, single-server capacity, and the speedup/capacity
multiplier vs hit ratio, from the closed form and validated against the
simulated testbed's measured response times.
"""

from repro.analysis.params import TABLE2
from repro.analysis.serverside import ServerSideModel
from repro.harness.testbed import TestbedConfig, run_testbed
from repro.sites.synthetic import SyntheticParams

HIT_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0)


def test_serverside_analysis(benchmark, report):
    model = ServerSideModel(params=TABLE2)

    def compute():
        return model.speedup_series(HIT_RATIOS)

    series = benchmark(compute)

    report(
        "Server-side analysis (reconstructed): origin time & capacity vs h",
        ["hit ratio", "T_C (ms)", "speedup", "capacity (req/s)"],
        [
            ["%.2f" % h, "%.2f" % (t * 1000), "%.2fx" % s,
             "%.0f" % (1.0 / t)]
            for h, t, s in series
        ],
    )
    report(
        "Amdahl saturation (cacheability is the serial fraction)",
        ["cacheability", "asymptotic speedup (h -> 1)"],
        [
            ["%.0f%%" % (x * 100),
             "%.2fx" % ServerSideModel(
                 params=TABLE2.with_(cacheability=x)
             ).asymptotic_speedup()]
            for x in (0.25, 0.5, 0.6, 0.75, 1.0)
        ],
    )

    speedups = [s for _, _, s in series]
    assert all(a <= b for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] == 1.0 or abs(speedups[0] - 1.0) < 1e-9


def test_serverside_validated_against_testbed(benchmark, report):
    """Measured mean response times vs the closed form at three hit ratios."""

    def run():
        rows = []
        model = ServerSideModel(
            params=TABLE2.with_(cacheability=1.0),
            db_rows_per_fragment=1,
            cross_tier_hops=1,
        )
        for h in (0.5, 0.8, 1.0):
            result = run_testbed(
                TestbedConfig(
                    mode="dpc",
                    synthetic=SyntheticParams(cacheability=1.0),
                    target_hit_ratio=h,
                    requests=250,
                    warmup_requests=60,
                )
            )
            rows.append(
                (h, result.measured_hit_ratio,
                 model.request_time_cached(result.measured_hit_ratio),
                 result.mean_response_time)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "Closed form vs measured origin-side time (cacheability = 1)",
        ["target h", "measured h", "model T_C (ms)", "measured RT (ms)"],
        [
            ["%.1f" % h, "%.3f" % mh, "%.2f" % (t * 1000),
             "%.2f" % (rt * 1000)]
            for h, mh, t, rt in rows
        ],
    )

    for _, _, predicted, measured in rows:
        # The model covers origin time only; measurement adds transfer and
        # scan time, so model < measured, same order of magnitude.
        assert predicted < measured
    # Both fall as h rises.
    model_times = [t for _, _, t, _ in rows]
    measured_times = [rt for _, _, _, rt in rows]
    assert model_times[0] > model_times[-1]
    assert measured_times[0] > measured_times[-1]
