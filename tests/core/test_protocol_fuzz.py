"""Fuzz the wire protocol: malformed input must fail *typed*, never crash.

The template grammar is the trust boundary between the origin and the
proxy: a hostile or corrupted response stream reaches ``parse_template``
and the DPC assembly loop byte-for-byte.  These tests throw random and
adversarially mutated wire text at both layers and assert the only
observable failure mode is a :class:`~repro.errors.ProtocolError`
subclass — no ``KeyError``/``IndexError``/``ValueError`` leaking from the
internals, no partially-applied state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpc import DynamicProxyCache
from repro.core.template import (
    SENTINEL,
    Template,
    TemplateConfig,
    parse_template,
)
from repro.errors import (
    AssemblyError,
    OversizedFragmentError,
    ProtocolError,
    ReproError,
    SlotError,
    TemplateError,
)

#: Alphabet biased toward protocol framing so mutations hit tag machinery.
WIRE_ALPHABET = st.sampled_from(
    list("<~>GSEQ:0123456789") + ["<~", "~>", "<~G:", "<~S:", "<~E:", "<~Q~>"]
)
WIRE_TEXT = st.lists(WIRE_ALPHABET, max_size=60).map("".join)


def valid_wire() -> str:
    template = Template()
    template.literal("<html>")
    template.set(3, "fragment three")
    template.literal(" middle ")
    template.get(3)
    template.literal("</html>")
    return template.serialize()


class TestParserFuzz:
    @given(WIRE_TEXT)
    @settings(max_examples=300, deadline=None)
    def test_random_wire_parses_or_raises_protocol_error(self, wire):
        try:
            parse_template(wire)
        except ProtocolError:
            pass

    @given(WIRE_TEXT)
    @settings(max_examples=200, deadline=None)
    def test_random_wire_through_the_full_dpc(self, wire):
        dpc = DynamicProxyCache(capacity=16)
        try:
            dpc.process_response(wire)
        except ProtocolError:
            pass

    @given(st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=150, deadline=None)
    def test_spliced_valid_wire_never_crashes(self, cut_a, cut_b):
        wire = valid_wire()
        lo, hi = sorted((cut_a % (len(wire) + 1), cut_b % (len(wire) + 1)))
        mutated = wire[:lo] + wire[hi:]
        try:
            parse_template(mutated)
        except ProtocolError:
            pass

    @given(st.integers(0, 200), WIRE_ALPHABET)
    @settings(max_examples=150, deadline=None)
    def test_single_point_mutation_never_crashes(self, where, junk):
        wire = valid_wire()
        where %= len(wire)
        mutated = wire[:where] + junk + wire[where + 1:]
        try:
            parse_template(mutated)
        except ProtocolError:
            pass


class TestKnownMalformations:
    def test_truncated_set_body_is_unterminated(self):
        wire = valid_wire()
        truncated = wire[: wire.index("fragment") + 4]
        with pytest.raises(TemplateError):
            parse_template(truncated)

    def test_end_without_set(self):
        with pytest.raises(TemplateError):
            parse_template("before<~E:0007~>after")

    def test_tag_inside_set_body(self):
        with pytest.raises(TemplateError):
            parse_template("<~S:0001~>body<~G:0002~><~E:0001~>")

    def test_garbled_tag_kind_and_key(self):
        for wire in ("<~X:0001~>", "<~G?0001~>", "<~G:12ab~>", "<~G:01~>"):
            with pytest.raises(TemplateError):
                parse_template(wire)

    def test_get_out_of_range_key_is_a_slot_error(self):
        dpc = DynamicProxyCache(capacity=8)
        with pytest.raises(SlotError):
            dpc.process_response("<~G:0100~>")

    def test_get_for_never_set_key_is_an_assembly_error(self):
        dpc = DynamicProxyCache(capacity=8)
        with pytest.raises(AssemblyError):
            dpc.process_response("<~G:0003~>")

    def test_oversized_set_body_rejected_before_storing(self):
        config = TemplateConfig(max_fragment_bytes=16)
        dpc = DynamicProxyCache(capacity=8, template_config=config)
        wire = "<~S:0002~>" + "x" * 64 + "<~E:0002~>"
        with pytest.raises(OversizedFragmentError):
            dpc.process_response(wire)
        assert not dpc.slot_in_use(2)

    def test_failed_parse_applies_no_sets(self):
        # The parse is all-or-nothing: a template that fails validation
        # must not leave earlier SET payloads behind in the slot array.
        dpc = DynamicProxyCache(capacity=8)
        wire = "<~S:0001~>early<~E:0001~><~E:0005~>"
        with pytest.raises(TemplateError):
            dpc.process_response(wire)
        assert dpc.occupied_slots() == 0


class TestHierarchy:
    def test_protocol_error_is_the_common_umbrella(self):
        for exc in (TemplateError, SlotError, AssemblyError, OversizedFragmentError):
            assert issubclass(exc, ProtocolError)
        assert issubclass(ProtocolError, ReproError)

    def test_escape_tag_unescapes_to_the_sentinel(self):
        template = parse_template("literal <~Q~> stays")
        assert template.instructions[0].text == "literal %s stays" % SENTINEL
