"""Simulated network substrate: clock, messages, links, firewall, sniffer.

This package replaces the paper's physical testbed plumbing (LAN, ISA Server
firewall, Sniffer monitor) with deterministic, byte-exact models.  See
DESIGN.md §2 for the substitution rationale.
"""

from .channel import Channel, LinkParameters
from .clock import EventQueue, SimulatedClock
from .firewall import (
    DEFAULT_SCAN_COST_PER_BYTE,
    Firewall,
    ScanCostMeter,
    dpc_is_preferable,
    scan_cost_no_cache,
    scan_cost_with_cache,
)
from .latency import FREE, GenerationCostModel
from .message import (
    DEFAULT_HEADER_BYTES,
    DEFAULT_MSS,
    ProtocolOverheadModel,
    WireMessage,
    request_message,
    response_message,
)
from .sniffer import Sniffer, TrafficCounters

__all__ = [
    "Channel",
    "LinkParameters",
    "SimulatedClock",
    "EventQueue",
    "Firewall",
    "ScanCostMeter",
    "DEFAULT_SCAN_COST_PER_BYTE",
    "dpc_is_preferable",
    "scan_cost_no_cache",
    "scan_cost_with_cache",
    "GenerationCostModel",
    "FREE",
    "ProtocolOverheadModel",
    "WireMessage",
    "request_message",
    "response_message",
    "DEFAULT_MSS",
    "DEFAULT_HEADER_BYTES",
    "Sniffer",
    "TrafficCounters",
]
