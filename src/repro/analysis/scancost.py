"""The Section 5 scan-cost comparison and Result 1.

Every byte the site serves is scanned by the firewall at cost ``y``/byte:
``scanCost_NC = B_NC * y`` (equation 1).  With the DPC deployed, responses
are additionally scanned for tags at ``z``/byte; with KMP both scans are
linear, so the paper assumes ``z ~= y`` and gets
``scanCost_C = B_C * 2y`` (equation 2).

**Result 1**: the DPC is preferable on scan cost iff ``B_NC > 2 B_C``.

The firewall-savings curve of Figure 3(a) is ``(1 - 2 B_C/B_NC) * 100`` —
negative at low cacheability (the extra scan outweighs the byte savings)
and crossing zero where the byte ratio reaches one half.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .model import bytes_ratio, expected_bytes_cached, expected_bytes_no_cache
from .params import AnalysisParams


def firewall_savings_percent(params: AnalysisParams, z_over_y: float = 1.0) -> float:
    """Scan-cost savings %% of deploying the DPC.

    ``z_over_y`` generalizes the paper's z == y assumption: the DPC pays
    ``(1 + z/y)`` scan passes per byte relative to the firewall-only path.
    """
    ratio = bytes_ratio(params)
    return (1.0 - (1.0 + z_over_y) * ratio) * 100.0


def network_savings_percent(params: AnalysisParams) -> float:
    """Byte savings %% (Figure 3(a)'s upper curve; same as model.savings)."""
    return (1.0 - bytes_ratio(params)) * 100.0


def result1_holds(params: AnalysisParams) -> bool:
    """Result 1: use the DPC iff B_NC > 2 * B_C."""
    return expected_bytes_no_cache(params) > 2.0 * expected_bytes_cached(params)


def figure_3a_series(
    params: AnalysisParams, cacheabilities: Sequence[float], z_over_y: float = 1.0
) -> List[Tuple[float, float, float]]:
    """(cacheability, network savings %, firewall savings %) triples."""
    series = []
    for cacheability in cacheabilities:
        point = params.with_(cacheability=cacheability)
        series.append(
            (
                cacheability,
                network_savings_percent(point),
                firewall_savings_percent(point, z_over_y=z_over_y),
            )
        )
    return series


def scan_breakeven_cacheability(
    params: AnalysisParams,
    lo: float = 0.0,
    hi: float = 1.0,
    tolerance: float = 1e-6,
) -> float:
    """Cacheability at which firewall savings cross zero (bisection).

    Returns ``hi`` if savings never reach zero in [lo, hi] (always losing)
    and ``lo`` if they are already positive at ``lo``.
    """

    def savings_at(cacheability: float) -> float:
        return firewall_savings_percent(params.with_(cacheability=cacheability))

    if savings_at(lo) >= 0:
        return lo
    if savings_at(hi) < 0:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if savings_at(mid) < 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
