"""The Figure 4 test configuration, end to end.

Two machines joined by a measured link::

    Clients  -->  [ External: firewall + proxy cache + DPC ]
                        |            ^
                        v  (origin link, Sniffer attached)
                  [ Origin Site: web server + BEM + DBMS ]

The Sniffer counts every byte crossing the origin link, requests and
responses, payload and TCP/IP headers — exactly the measurement the paper
reports.  The testbed replays one seeded workload against a chosen origin
configuration (``no_cache``, ``dpc``, or ``backend``) and returns byte
counts, measured hit ratio, and response-time statistics.

Hit-ratio control: the experiments of Figures 5/3(b)/6 are parameterized by
a *target* hit ratio ``h``.  The testbed reaches it through the honest
path — before each request, each cacheable fragment on the requested page
is touched in the database with probability ``1 - h`` (update -> trigger ->
BEM invalidation), so a cacheable block access is a hit with probability
``h`` once the cache is warm.  The measured ratio is reported alongside.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..appserver.http import HttpRequest
from ..appserver.server import ApplicationServer
from ..baselines.backend_cache import BackendFragmentCache
from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..core.template import TemplateConfig
from ..errors import ConfigurationError
from ..network import (
    Channel,
    Firewall,
    LinkParameters,
    ProtocolOverheadModel,
    SimulatedClock,
    request_message,
    response_message,
)
from ..network.latency import GenerationCostModel
from ..sites import synthetic
from ..telemetry.stats import percentile
from ..telemetry.tracing import Tracer
from ..sites.synthetic import SyntheticParams, touch_fragment
from ..workload import (
    ArrivalProcess,
    DeterministicProcess,
    WorkloadGenerator,
    synthetic_pages,
)

MODES = ("no_cache", "dpc", "backend")


@dataclass
class TestbedConfig:
    """One testbed run's knobs."""

    __test__ = False  # not a pytest class, despite the name

    mode: str = "dpc"
    synthetic: SyntheticParams = field(default_factory=SyntheticParams)
    target_hit_ratio: Optional[float] = 0.8
    requests: int = 2000
    warmup_requests: int = 200
    seed: int = 42
    arrival_rate: float = 100.0
    #: Custom arrival process (e.g. a flash crowd); overrides
    #: ``arrival_rate`` when set.
    arrivals: Optional[ArrivalProcess] = None
    #: Relative per-request deadline stamped onto every generated request
    #: (``None`` keeps the deadline-free pre-overload behavior).
    deadline_s: Optional[float] = None
    overhead: ProtocolOverheadModel = field(default_factory=ProtocolOverheadModel)
    cost_model: GenerationCostModel = field(default_factory=GenerationCostModel)
    origin_link: LinkParameters = field(default_factory=LinkParameters)
    dpc_capacity: int = 4096
    template_key_width: int = 4
    #: Check assembled pages against the no-cache oracle every N requests
    #: (0 disables the check).
    correctness_every: int = 0
    #: Record a virtual-time span tree for every request
    #: (:mod:`repro.telemetry`).  Off by default: untraced runs keep the
    #: exact single-advance float arithmetic they always had.
    tracing: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError("mode must be one of %s" % (MODES,))
        if self.target_hit_ratio is not None and not 0.0 <= self.target_hit_ratio <= 1.0:
            raise ConfigurationError("target_hit_ratio must be in [0, 1]")
        if self.requests <= 0 or self.warmup_requests < 0:
            raise ConfigurationError("request counts must be sensible")


@dataclass
class TestbedResult:
    """Measurements over the post-warmup window."""

    __test__ = False  # not a pytest class, despite the name

    mode: str
    requests: int
    # Origin-link traffic (the Sniffer's view)
    response_payload_bytes: int = 0
    response_wire_bytes: int = 0
    request_payload_bytes: int = 0
    request_wire_bytes: int = 0
    # Cache behaviour
    measured_hit_ratio: float = 0.0
    fragments_invalidated: int = 0
    # Latency
    response_times: List[float] = field(default_factory=list)
    # Correctness
    pages_checked: int = 0
    pages_incorrect: int = 0
    # Scanning work (for Result 1)
    firewall_bytes: int = 0
    dpc_scanned_bytes: int = 0

    @property
    def total_wire_bytes(self) -> int:
        """Request plus response wire bytes on the origin link."""
        return self.response_wire_bytes + self.request_wire_bytes

    @property
    def mean_response_time(self) -> float:
        """Mean end-to-end response time over the measured window."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def percentile_response_time(self, q: float) -> float:
        """Response-time quantile ``q`` in [0, 1] (nearest-rank).

        Delegates to :func:`repro.telemetry.stats.percentile` so every
        harness reports quantiles under the same rank convention.
        """
        return percentile(self.response_times, q)


class Testbed:
    """Builds the topology and replays a workload through it."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.clock = SimulatedClock()
        template_config = TemplateConfig(key_width=config.template_key_width)

        # Origin side.
        self.services = synthetic.build_services(config.synthetic)
        self.monitor = self._build_monitor(template_config)
        self.server = synthetic.build_server(
            params=config.synthetic,
            services=self.services,
            clock=self.clock,
            bem=self.monitor,
            cost_model=config.cost_model,
            template_config=template_config,
        )
        if self.monitor is not None:
            self.monitor.attach_database(self.services.db.bus)

        # External side.
        self.firewall = Firewall()
        self.dpc = (
            DynamicProxyCache(
                capacity=config.dpc_capacity,
                template_config=template_config,
                name="dpc-external",
            )
            if config.mode == "dpc"
            else None
        )

        # The measured link.
        self.origin_link = Channel(
            "origin-link",
            endpoint_a="external",
            endpoint_b="origin",
            link=config.origin_link,
            overhead=config.overhead,
            clock=self.clock,
        )
        self.sniffer = self.origin_link.attach_sniffer()

        # Observability: one tracer shared by every clock-advancing
        # component, so a request's span tree tiles its virtual latency.
        self.tracer = Tracer(self.clock, enabled=config.tracing)
        self.server.tracer = self.tracer
        self.origin_link.tracer = self.tracer
        self.services.db.tracer = self.tracer

        self._hit_rng = random.Random(config.seed + 1)
        self._oracle = self._build_oracle_server()

        #: Injector hook points: callables invoked as ``hook(testbed, index,
        #: timed)`` before each request is served.  The chaos harness
        #: (:mod:`repro.faults.chaos`) uses these to fire scheduled faults;
        #: the testbed itself stays fault-unaware.
        self.pre_request_hooks: List = []

    def _build_monitor(self, template_config: TemplateConfig):
        config = self.config
        if config.mode == "no_cache":
            return None
        if config.mode == "dpc":
            return BackEndMonitor(
                capacity=config.dpc_capacity,
                clock=self.clock,
                template_config=template_config,
            )
        return BackendFragmentCache(
            capacity=config.dpc_capacity, clock=self.clock
        )

    def _build_oracle_server(self) -> ApplicationServer:
        """A plain server over the SAME services, for page oracles."""
        return synthetic.build_server(
            params=self.config.synthetic,
            services=self.services,
            clock=self.clock,
            bem=None,
            cost_model=GenerationCostModel(
                request_dispatch_s=0.0,
                compute_per_byte_s=0.0,
                block_overhead_s=0.0,
                cross_tier_hop_s=0.0,
                db_connection_wait_s=0.0,
                db_row_cost_s=0.0,
                conversion_per_byte_s=0.0,
                directory_lookup_s=0.0,
                dpc_slot_op_s=0.0,
            ),
        )

    # -- workload -----------------------------------------------------------------

    def build_workload(self) -> WorkloadGenerator:
        """The seeded workload generator for this configuration."""
        arrivals = (
            self.config.arrivals
            if self.config.arrivals is not None
            else DeterministicProcess(rate=self.config.arrival_rate)
        )
        return WorkloadGenerator(
            pages=synthetic_pages(self.config.synthetic.num_pages),
            arrivals=arrivals,
            seed=self.config.seed,
            deadline_s=self.config.deadline_s,
        )

    # -- driving ---------------------------------------------------------------------

    def run(self) -> TestbedResult:
        """Replay the workload; returns post-warmup measurements."""
        config = self.config
        total = config.warmup_requests + config.requests
        workload = self.build_workload().materialize(total)

        result = TestbedResult(mode=config.mode, requests=config.requests)
        hits_at_cut = misses_at_cut = 0
        invalidated_at_cut = 0

        for index, timed in enumerate(workload):
            measuring = index >= config.warmup_requests
            if index == config.warmup_requests:
                self.sniffer.reset()
                self.firewall.reset()
                if self.dpc is not None:
                    self.dpc.scanner.reset_counters()
                hits_at_cut, misses_at_cut = self._monitor_hit_counts()
                invalidated_at_cut = self._monitor_invalidations()

            self.clock.advance_to(timed.at)
            for hook in self.pre_request_hooks:
                hook(self, index, timed)
            self._churn_fragments(timed.request)
            start = self.clock.now()
            html = self.serve_once(timed.request)
            elapsed = self.clock.now() - start
            self.tracer.annotate_last(elapsed_s=elapsed)

            if measuring:
                result.response_times.append(elapsed)
                if (
                    config.correctness_every
                    and (index - config.warmup_requests) % config.correctness_every == 0
                ):
                    result.pages_checked += 1
                    oracle = self.render_oracle(timed.request)
                    if html != oracle:
                        result.pages_incorrect += 1

        hits, misses = self._monitor_hit_counts()
        window_hits = hits - hits_at_cut
        window_misses = misses - misses_at_cut
        if window_hits + window_misses:
            result.measured_hit_ratio = window_hits / (window_hits + window_misses)
        result.fragments_invalidated = (
            self._monitor_invalidations() - invalidated_at_cut
        )

        responses = self.sniffer.counters("response")
        requests_ = self.sniffer.counters("request")
        result.response_payload_bytes = responses.payload_bytes
        result.response_wire_bytes = responses.wire_bytes
        result.request_payload_bytes = requests_.payload_bytes
        result.request_wire_bytes = requests_.wire_bytes
        result.firewall_bytes = self.firewall.bytes_scanned
        if self.dpc is not None:
            result.dpc_scanned_bytes = self.dpc.bytes_scanned
        return result

    # -- per-request pipeline -----------------------------------------------------

    def render_oracle(self, request: HttpRequest) -> str:
        """The reference (caching-disabled) page for a request.

        Rendered by a zero-cost server over the *same* services, so it is
        byte-comparable with whatever the cached pipeline delivered — the
        assembly-correctness oracle used by chaos and correctness checks.
        """
        return self._oracle.render_reference_page(request)

    def serve_once(self, request: HttpRequest) -> str:
        """One request through the Figure 4 pipeline; returns final HTML.

        With tracing enabled this opens the request's root span (unless an
        outer harness already did) and wraps every clock advance in a leaf
        span — firewall scans, link transfers (the channel's own spans),
        origin generation, and proxy-side assembly — so the finished tree
        tiles the measured virtual response time exactly.
        """
        config = self.config
        with self.tracer.request_span(request, mode=config.mode) as root:
            request = self.tracer.propagate(request)

            # Request: client -> external -> origin (scanned, measured).
            with self.tracer.span("firewall.scan", direction="request"):
                self.clock.advance(self.firewall.scan_bytes(request.payload_bytes))
            self.origin_link.send(
                request_message(
                    request.payload_bytes, source="external", destination="origin"
                )
            )

            # Origin generates (advances the clock internally).
            response = self.server.handle(request)

            # Response: origin -> external (measured), firewall scan.
            self.origin_link.send(
                response_message(
                    response.payload_bytes,
                    source="origin",
                    destination="external",
                    page=request.url,
                )
            )
            with self.tracer.span("firewall.scan", direction="response"):
                self.clock.advance(
                    self.firewall.scan_bytes(response.payload_bytes)
                )

            # Proxy-side processing.
            if self.dpc is None:
                return response.body
            with self.tracer.span("dpc.assemble") as assemble_span:
                scanned_before = self.dpc.bytes_scanned
                assembled = self.dpc.process_response(response.body)
                scan_bytes = self.dpc.bytes_scanned - scanned_before
                self.clock.advance(
                    scan_bytes * self.firewall.scan_cost_per_byte  # z ~= y (§5)
                    + config.cost_model.assembly_cost(
                        assembled.fragments_set + assembled.fragments_get
                    )
                )
                assemble_span.annotate(
                    fragments_set=assembled.fragments_set,
                    fragments_get=assembled.fragments_get,
                )
            root.annotate(
                hit=assembled.fragments_get > 0 and assembled.fragments_set == 0
            )
            return assembled.html

    def _churn_fragments(self, request: HttpRequest) -> None:
        """Drive the target hit ratio via real data updates."""
        h = self.config.target_hit_ratio
        if h is None or h >= 1.0:
            return
        page_id = int(request.param("pageID", "0"))
        for pool_index in self.config.synthetic.pool_indexes_for_page(page_id):
            if not self.config.synthetic.is_cacheable(pool_index):
                continue
            if self._hit_rng.random() < 1.0 - h:
                touch_fragment(self.services, pool_index)

    # -- monitor introspection ----------------------------------------------------

    def _monitor_hit_counts(self):
        if self.monitor is None:
            return 0, 0
        if isinstance(self.monitor, BackEndMonitor):
            return (
                self.monitor.stats.fragment_hits,
                self.monitor.stats.fragment_misses,
            )
        return self.monitor.stats.hits, self.monitor.stats.misses

    def _monitor_invalidations(self) -> int:
        if self.monitor is None:
            return 0
        return self.monitor.invalidation.fragments_invalidated


def run_testbed(config: TestbedConfig) -> TestbedResult:
    """Convenience one-shot: build, run, return."""
    return Testbed(config).run()
