"""Content management substrate (stands in for Vignette).

Content items and user profiles live in the relational engine so that
updates to either flow through database triggers and can invalidate cached
fragments.  The personalization engine turns a profile into slot content —
including the shared-profile-object fragment pair that defeats ESI-style
page factoring (§3.2.2).
"""

from .personalization import AnyProfile, PersonalizationEngine
from .profiles import (
    ANONYMOUS,
    DEFAULT_LAYOUT,
    PROFILE_TABLE,
    AnonymousProfile,
    Profile,
    ProfileStore,
)
from .repository import CONTENT_TABLE, ContentRepository

__all__ = [
    "PersonalizationEngine",
    "AnyProfile",
    "ProfileStore",
    "Profile",
    "AnonymousProfile",
    "ANONYMOUS",
    "DEFAULT_LAYOUT",
    "PROFILE_TABLE",
    "ContentRepository",
    "CONTENT_TABLE",
]
