"""Fuzz property: the SQL layer fails *predictably* on arbitrary input.

Any string fed to ``parse`` either yields a statement or raises
``SqlSyntaxError`` — never an uncaught exception — and any parsed SELECT
executes against a live table without internal errors (schema violations
raise the schema/query error types).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database, schema
from repro.database.sql import parse
from repro.errors import ReproError, SqlSyntaxError

arbitrary_text = st.text(
    alphabet=string.ascii_letters + string.digits + " '\"(),*?<>=!%_.;-",
    max_size=80,
)

# Structured garbage: shuffled fragments of real SQL.
sql_shards = st.lists(
    st.sampled_from([
        "SELECT", "*", "FROM", "items", "WHERE", "k", "=", "'x'", "AND",
        "price", ">", "5", "ORDER", "BY", "LIMIT", "3", "GROUP",
        "COUNT", "(", ")", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
        "DELETE", "?", ",", "NULL", "LIKE", "'a%'",
    ]),
    max_size=14,
).map(" ".join)


def make_db():
    db = Database()
    table = db.create_table(
        schema("items", [("k", "str"), ("price", "float")])
    )
    table.insert({"k": "x", "price": 5.0})
    table.insert({"k": "y", "price": 7.5})
    return db


@given(arbitrary_text)
@settings(max_examples=400)
def test_parse_never_raises_unexpected(text):
    try:
        parse(text)
    except SqlSyntaxError:
        pass  # the contract for bad input


@given(sql_shards)
@settings(max_examples=400)
def test_shuffled_sql_parses_or_rejects_cleanly(text):
    try:
        parse(text)
    except SqlSyntaxError:
        pass


@given(sql_shards)
@settings(max_examples=200)
def test_execution_raises_only_library_errors(text):
    db = make_db()
    try:
        db.execute(text)
    except ReproError:
        pass  # syntax, schema, or query errors are all acceptable


@given(st.floats(allow_nan=False, allow_infinity=False, width=32),
       st.text(alphabet=string.printable, max_size=30))
def test_parameter_values_round_trip(price, key):
    """Arbitrary parameter values bind without mangling."""
    db = make_db()
    db.execute("INSERT INTO items (k, price) VALUES (?, ?)",
               ("probe-" + key, float(price)))
    rows = db.execute("SELECT price FROM items WHERE k = ?",
                      ("probe-" + key,)).rows
    assert rows[0]["price"] == float(price)
