"""Ablation: replacement policies under a Zipf-skewed fragment stream.

The paper specifies a replacement manager but no policy.  Under Zipf
popularity with a capacity-constrained directory, recency/frequency-aware
policies (LRU/LFU) should beat FIFO — this bench measures achieved hit
ratios for each.
"""

import random

from repro.core.bem import BackEndMonitor
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.replacement import make_policy
from repro.network.clock import SimulatedClock
from repro.workload.zipf import ZipfDistribution

POLICIES = ("lru", "lfu", "fifo", "ttl", "gds")
FRAGMENT_UNIVERSE = 400
CAPACITY = 80            # only 20% of the universe fits
ACCESSES = 6000


def drive_policy(policy_name: str, seed: int = 17) -> float:
    clock = SimulatedClock()
    bem = BackEndMonitor(
        capacity=CAPACITY, clock=clock, policy=make_policy(policy_name)
    )
    zipf = ZipfDistribution(FRAGMENT_UNIVERSE, alpha=1.0)
    rng = random.Random(seed)
    meta = FragmentMetadata()
    for _ in range(ACCESSES):
        rank = zipf.sample(rng)
        fragment_id = FragmentID.create("frag", {"rank": rank})
        bem.process_block(fragment_id, meta, lambda rank=rank: "x" * 64)
        clock.advance(0.01)
    return bem.hit_ratio


def test_replacement_policies_under_zipf(benchmark, report):
    def run_all():
        return {name: drive_policy(name) for name in POLICIES}

    ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        "Ablation: hit ratio by replacement policy "
        "(Zipf alpha=1, capacity=20% of universe)",
        ["policy", "hit ratio"],
        [[name, "%.4f" % ratios[name]] for name in POLICIES],
    )

    # Recency/frequency awareness must beat FIFO under skew.
    assert ratios["lru"] > ratios["fifo"]
    assert ratios["lfu"] > ratios["fifo"]
    # And everything achieves some reuse.
    assert all(ratio > 0.2 for ratio in ratios.values())
