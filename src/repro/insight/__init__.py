"""Cache insight: miss-cause attribution, counterfactual curves, SLOs.

The diagnosis layer the paper's operators would have needed.  Four pieces,
each usable alone, bundled by :class:`InsightLayer` for attachment to a
live deployment:

* :mod:`~repro.insight.ledger` — a miss-cause **lifecycle ledger**: every
  directory miss is attributed to exactly one cause (``cold``,
  ``ttl_expired``, ``data_invalidated``, ``evicted_capacity``,
  ``shed_overload``, ``fault_quarantine``) with the invariant that the
  cause counts sum to the observed misses — no "other" bucket.
* :mod:`~repro.insight.mattson` — a single-pass **reuse-distance
  profiler** producing the exact counterfactual hit-ratio-vs-``num_slots``
  curve for the LRU directory without re-running the workload, answering
  "would more DPC slots have helped?".
* :mod:`~repro.insight.slo` — declarative **SLOs with multi-window
  burn-rate alerting** on the virtual clock, fed from existing metric
  streams, exporting typed alerts through the telemetry JSON conventions.
* :mod:`~repro.insight.doctor` — ``python -m repro doctor``, which runs a
  deliberately pathological deployment and renders a diagnosis report
  (top miss causes, slot-count recommendation, firing SLOs, per-span-kind
  latency attribution).

Attachment is duck-typed (``bem.attach_insight(layer)``), mirroring the
degrader hook, so ``repro.core`` never imports this package and unattached
deployments pay one ``is None`` check per lookup.  The measured overhead
of a full attachment is gated under 5% (``BENCH_INSIGHT.json``).
"""

from .layer import CONTENT_INVALIDATION_REASONS, InsightLayer
from .ledger import MISS_CAUSES, MissCauseLedger
from .mattson import ReuseDistanceProfiler, simulate_lru
from .slo import (
    SloAlert,
    SloEngine,
    SloObjective,
    alerts_from_json_lines,
    alerts_to_json_lines,
    objective_from_spec,
)

__all__ = [
    # layer
    "CONTENT_INVALIDATION_REASONS",
    "InsightLayer",
    # ledger
    "MISS_CAUSES",
    "MissCauseLedger",
    # mattson
    "ReuseDistanceProfiler",
    "simulate_lru",
    # slo
    "SloAlert",
    "SloEngine",
    "SloObjective",
    "alerts_from_json_lines",
    "alerts_to_json_lines",
    "objective_from_spec",
]
