"""Insight-layer overhead on the Figure 4 testbed: attached vs detached.

This is the benchmark behind ``BENCH_INSIGHT.json``: the full serve path
run twice over the identical seeded workload — once with an
:class:`~repro.insight.layer.InsightLayer` (ledger + Mattson profiler)
attached to the BEM directory and DPC, once detached — to measure what the
observability layer costs.  Since insight is pure observation, the two
runs must also produce byte-identical measured results; the benchmark
refuses to report otherwise.

Measurement method (same scheme as :mod:`repro.perf.hotpath`): wall time
on a shared box is noisy, so the two configurations run as back-to-back
*pairs* with the order alternating between pairs, GC disabled, and the
gated numbers are quartiles of the per-pair ratios.  The hard gate is
``overhead.lower_quartile < bound`` (default 5%): a real overhead
regression slows every pair and still trips it, while a co-tenant burst
inflates only some pairs and cannot manufacture a failure.

What is gated is the *serve-path* observation cost — the per-lookup hooks.
The profiler's Fenwick folding is deferred to diagnosis time by design
(see :mod:`repro.insight.mattson`), so it never appears inside the request
loop this benchmark times.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Tuple

from ..harness.testbed import Testbed, TestbedConfig, TestbedResult
from ..insight.layer import InsightLayer
from ..sites.synthetic import SyntheticParams
from .hotpath import ACCOUNTING_FIELDS, DEFAULT_WORKLOAD

#: Maximum tolerated lower-quartile fractional overhead of an attached
#: insight layer (the acceptance bar: "<5% on the Figure 4 testbed").
OVERHEAD_BOUND = 0.05

#: Reduced settings for the CI smoke gate (``repro bench insight --smoke``
#: and the doctor's ``--smoke`` self-check).  The true per-lookup cost is
#: ~1%, far under the 5% gate, but each timed run is only ~100 ms, so the
#: smoke sizing keeps enough pairs for the lower quartile to sit below the
#: several-percent co-tenant noise floor.
SMOKE_SETTINGS: Dict[str, int] = {"requests": 200, "pairs": 7, "warmup": 40}


def _timed_run(
    attached: bool, requests: int, warmup: int, seed: int
) -> Tuple[float, TestbedResult]:
    """One seeded testbed run, with or without insight; (wall s, result)."""
    config = TestbedConfig(
        mode="dpc",
        synthetic=SyntheticParams(**DEFAULT_WORKLOAD),
        target_hit_ratio=0.9,
        requests=requests,
        warmup_requests=warmup,
        seed=seed,
    )
    testbed = Testbed(config)
    if attached:
        InsightLayer().attach(bem=testbed.monitor, dpc=testbed.dpc)
    start = time.perf_counter()
    result = testbed.run()
    wall = time.perf_counter() - start
    return wall, result


def _check_identical(
    attached: TestbedResult, detached: TestbedResult
) -> Dict[str, object]:
    """Cross-check that observation changed nothing; raises on any drift."""
    accounting: Dict[str, object] = {}
    for field in ACCOUNTING_FIELDS:
        attached_value = getattr(attached, field)
        detached_value = getattr(detached, field)
        if attached_value != detached_value:
            raise AssertionError(
                "insight attachment changed %s: %r != %r"
                % (field, attached_value, detached_value)
            )
        accounting[field] = attached_value
    return accounting


def run_insight(
    requests: int = 300,
    pairs: int = 7,
    warmup: int = 50,
    seed: int = 7,
    bound: float = OVERHEAD_BOUND,
    repeats: int = 2,
) -> Dict[str, object]:
    """Measure insight-layer overhead; returns a JSON-serializable dict.

    ``pairs`` back-to-back (detached, attached) runs are timed with the
    order alternating.  Within a pair each configuration is timed
    ``repeats`` times and the minimum wall is kept — timing noise on a
    shared box is one-sided (preemption only ever adds time), so the
    minimum is the standard low-variance estimator.
    ``overhead.lower_quartile`` is the lower quartile of per-pair
    ``attached/detached - 1`` ratios and must stay below ``bound``
    (raises :class:`AssertionError` otherwise); ``speedup`` mirrors the
    other benchmarks' shape (``detached/attached``) so the shared
    baseline gate applies unchanged.
    """
    overheads: List[float] = []
    ratios: List[float] = []
    attached_walls: List[float] = []
    detached_walls: List[float] = []
    accounting: Dict[str, object] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _timed_run(True, requests, warmup, seed)  # warm allocator/caches
        for index in range(pairs):
            order = (False, True) if index % 2 == 0 else (True, False)
            walls: Dict[bool, float] = {}
            results: Dict[bool, TestbedResult] = {}
            for attached in order:
                gc.collect()
                best = None
                for _ in range(max(1, repeats)):
                    wall, results[attached] = _timed_run(
                        attached, requests, warmup, seed
                    )
                    best = wall if best is None else min(best, wall)
                walls[attached] = best
            accounting = _check_identical(results[True], results[False])
            overheads.append(walls[True] / walls[False] - 1.0)
            ratios.append(walls[False] / walls[True])
            attached_walls.append(walls[True])
            detached_walls.append(walls[False])
    finally:
        if gc_was_enabled:
            gc.enable()

    overheads.sort()
    ratios.sort()
    attached_walls.sort()
    detached_walls.sort()
    overhead_lq = overheads[len(overheads) // 4]
    result: Dict[str, object] = {
        "benchmark": "insight",
        "workload": dict(DEFAULT_WORKLOAD),
        "requests": requests,
        "warmup": warmup,
        "pairs": pairs,
        "repeats": repeats,
        "seed": seed,
        "overhead": {
            "lower_quartile": round(overhead_lq, 4),
            "median": round(overheads[len(overheads) // 2], 4),
            "bound": bound,
        },
        "speedup": {
            "lower_quartile": round(ratios[len(ratios) // 4], 4),
            "median": round(ratios[len(ratios) // 2], 4),
        },
        "wall_s": {
            "attached_median": round(attached_walls[len(attached_walls) // 2], 6),
            "detached_median": round(detached_walls[len(detached_walls) // 2], 6),
        },
        "identical_accounting": True,
        "accounting": accounting,
    }
    if overhead_lq >= bound:
        raise AssertionError(
            "insight overhead gate: lower-quartile overhead %.2f%% "
            "exceeds the %.0f%% bound" % (overhead_lq * 100, bound * 100)
        )
    return result
