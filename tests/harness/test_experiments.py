"""Tests for the per-figure experiment functions (small request counts)."""

import pytest

from repro.harness.experiments import (
    case_study,
    figure_2a_rows,
    figure_2b_rows,
    figure_3a_rows,
    figure_3b_rows,
    figure_5_rows,
    figure_6_rows,
    run_pair,
)
from repro.sites.synthetic import SyntheticParams

FAST = dict(requests=250, warmup=60)


class TestAnalyticalRows:
    def test_figure_2a_monotone_decreasing(self):
        rows = figure_2a_rows(sizes=(100, 500, 1024, 4096))
        ratios = [row.analytical_ratio for row in rows]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_figure_2b_monotone_increasing(self):
        rows = figure_2b_rows(hit_ratios=(0.0, 0.5, 1.0))
        savings = [row.analytical_savings_pct for row in rows]
        assert savings[0] < 0 < savings[-1]

    def test_figure_3a_two_curves(self):
        rows = figure_3a_rows(cacheabilities=(0.2, 0.6, 1.0))
        assert rows[0].analytical_firewall_savings_pct < 0
        assert rows[-1].analytical_firewall_savings_pct > 0
        assert all(row.analytical_network_savings_pct > 0 for row in rows)


class TestExperimentalRows:
    def test_run_pair_shares_workload_and_differs_in_bytes(self):
        no_cache, dpc = run_pair(SyntheticParams(), 0.8, **FAST)
        assert no_cache.requests == dpc.requests
        assert dpc.response_payload_bytes < no_cache.response_payload_bytes

    def test_figure_3b_experimental_tracks_analytical(self):
        rows = figure_3b_rows(sizes=(512, 2048), **FAST)
        for row in rows:
            assert row.experimental_payload_ratio == pytest.approx(
                row.analytical_ratio, abs=0.15
            )

    def test_figure_3b_wire_ratio_above_payload_ratio(self):
        """The paper's Figure 3(b) gap: protocol headers push the
        experimental (wire) curve above the analytical one."""
        rows = figure_3b_rows(sizes=(512,), **FAST)
        assert rows[0].experimental_wire_ratio > rows[0].experimental_payload_ratio

    def test_figure_5_wire_savings_below_analytical(self):
        """Figure 5's gap, with the same sign as the paper: message
        overhead makes measured savings smaller at high hit ratios."""
        rows = figure_5_rows(hit_ratios=(0.8,), **FAST)
        row = rows[0]
        assert row.experimental_wire_savings_pct < row.analytical_savings_pct

    def test_figure_5_savings_increase_with_h(self):
        rows = figure_5_rows(hit_ratios=(0.2, 0.8), **FAST)
        assert (
            rows[0].experimental_savings_pct < rows[1].experimental_savings_pct
        )

    def test_figure_6_network_savings_grow_with_cacheability(self):
        rows = figure_6_rows(cacheabilities=(0.25, 1.0), **FAST)
        assert (
            rows[0].experimental_network_savings_pct
            < rows[1].experimental_network_savings_pct
        )

    def test_figure_6_firewall_crossover_measured(self):
        rows = figure_6_rows(cacheabilities=(0.25, 1.0), **FAST)
        assert rows[0].experimental_firewall_savings_pct < 0
        assert rows[-1].experimental_firewall_savings_pct > 0


class TestCaseStudy:
    def test_order_of_magnitude_claims(self):
        result = case_study(requests=400, warmup=100)
        assert result.bandwidth_reduction_factor >= 10.0
        assert result.response_time_reduction_factor >= 10.0
        assert result.measured_hit_ratio > 0.9
