"""Cache coherency across distributed forward-proxy DPCs (§7 extension).

With multiple DPCs "multiple copies of a particular fragment may reside on
different dynamic proxy caches...  Some mechanism must be in place to ensure
that correct responses are served to end users from the caching system."

The reproduction keeps the paper's single-BEM architecture: the origin's
BEM remains the sole authority over validity, holding one cache directory
*per proxy* (fragment copies on different proxies are independent entries
with independent dpcKeys).  Coherency then reduces to fanning every
invalidation out to all per-proxy directories, and the dpcKey trick still
eliminates explicit BEM->DPC messages — an invalidated copy is simply
overwritten by the next SET routed to that proxy.

:class:`ProxyGroup` owns the per-proxy (BEM, DPC) pairs and the fan-out.
``coherency_messages`` counts the logical invalidation fan-out so the
scalability bench can chart coherency traffic against the proxy count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..database.triggers import TriggerBus
from ..errors import ConfigurationError
from ..network.clock import SimulatedClock
from .bem import BackEndMonitor
from .dpc import DynamicProxyCache
from .replacement import make_policy
from .template import DEFAULT_CONFIG, TemplateConfig


class ProxyGroup:
    """A set of named forward proxies sharing one origin BEM authority."""

    def __init__(
        self,
        capacity_per_proxy: int = 1024,
        clock: Optional[SimulatedClock] = None,
        template_config: TemplateConfig = DEFAULT_CONFIG,
        policy_name: str = "lru",
    ) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.capacity = capacity_per_proxy
        self.template_config = template_config
        self.policy_name = policy_name
        self._members: Dict[str, Tuple[BackEndMonitor, DynamicProxyCache]] = {}
        self._buses: List[TriggerBus] = []
        self.coherency_messages = 0

    # -- membership ----------------------------------------------------------------

    def add_proxy(self, name: str) -> Tuple[BackEndMonitor, DynamicProxyCache]:
        """Add an edge proxy: a fresh (BEM, DPC) pair."""
        if name in self._members:
            raise ConfigurationError("proxy %r already in group" % name)
        bem = BackEndMonitor(
            capacity=self.capacity,
            clock=self.clock,
            policy=make_policy(self.policy_name),
            template_config=self.template_config,
        )
        for bus in self._buses:
            bem.attach_database(bus)
        dpc = DynamicProxyCache(
            capacity=self.capacity, template_config=self.template_config, name=name
        )
        self._members[name] = (bem, dpc)
        return bem, dpc

    def remove_proxy(self, name: str) -> None:
        """Remove a proxy and detach its invalidation wiring."""
        if name not in self._members:
            raise ConfigurationError("proxy %r not in group" % name)
        bem, _ = self._members.pop(name)
        bem.invalidation.detach_all()

    def member(self, name: str) -> Tuple[BackEndMonitor, DynamicProxyCache]:
        """The (BEM, DPC) pair for a proxy name."""
        try:
            return self._members[name]
        except KeyError:
            raise ConfigurationError("proxy %r not in group" % name) from None

    def names(self) -> List[str]:
        """All member proxy names, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # -- coherency ----------------------------------------------------------------

    def attach_database(self, bus: TriggerBus) -> None:
        """Every member BEM directory observes the data source directly.

        Each database change reaches every per-proxy directory; the
        message count models the invalidation fan-out a distributed
        deployment would pay on its control plane.
        """
        self._buses.append(bus)
        for bem, _ in self._members.values():
            bem.attach_database(bus)
        bus.subscribe(self._count_fanout)

    def _count_fanout(self, event) -> None:
        self.coherency_messages += len(self._members)

    def invalidate_fragment(self, name: str, params=None) -> int:
        """Explicit invalidation broadcast to every proxy's directory."""
        invalidated = 0
        for bem, _ in self._members.values():
            self.coherency_messages += 1
            if bem.invalidate_fragment(name, params):
                invalidated += 1
        return invalidated

    def invalidate_block(self, name: str) -> int:
        """Broadcast block-wide invalidation to every proxy."""
        invalidated = 0
        for bem, _ in self._members.values():
            self.coherency_messages += 1
            invalidated += bem.invalidate_block(name)
        return invalidated

    def flush_all(self) -> int:
        """Flush every proxy's directory, objects, and slots."""
        flushed = 0
        for name, (bem, dpc) in self._members.items():
            flushed += bem.flush()
            dpc.clear()
            self.coherency_messages += 1
        return flushed

    # -- reporting ------------------------------------------------------------------

    def group_hit_ratio(self) -> float:
        """Hit ratio aggregated over all member BEMs."""
        hits = sum(bem.stats.fragment_hits for bem, _ in self._members.values())
        misses = sum(bem.stats.fragment_misses for bem, _ in self._members.values())
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total
