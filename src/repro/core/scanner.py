"""Knuth-Morris-Pratt string matching for the DPC's template scanner.

The paper justifies its scan-cost assumption by noting that "string matching
algorithms (e.g., KMP [18]) are linear-time algorithms" (§5).  The DPC must
scan every response byte exactly once looking for instruction tags; this
module provides that linear-time scan.

:func:`kmp_find_all` is the general algorithm; :class:`TagScanner` applies
it to the template tag sentinel and reports scanned-byte counts so that the
scan-cost analysis (Result 1) can be measured rather than assumed.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigurationError


def failure_function(pattern: str) -> List[int]:
    """KMP failure (longest-proper-prefix-suffix) table for ``pattern``.

    ``table[i]`` is the length of the longest proper prefix of
    ``pattern[:i+1]`` that is also a suffix of it.
    """
    if not pattern:
        raise ConfigurationError("pattern cannot be empty")
    table = [0] * len(pattern)
    length = 0
    for i in range(1, len(pattern)):
        while length > 0 and pattern[i] != pattern[length]:
            length = table[length - 1]
        if pattern[i] == pattern[length]:
            length += 1
        table[i] = length
    return table


def kmp_iter(text: str, pattern: str) -> Iterator[int]:
    """Yield the start index of every (possibly overlapping) match."""
    table = failure_function(pattern)
    matched = 0
    for i, char in enumerate(text):
        while matched > 0 and char != pattern[matched]:
            matched = table[matched - 1]
        if char == pattern[matched]:
            matched += 1
        if matched == len(pattern):
            yield i - len(pattern) + 1
            matched = table[matched - 1]


def kmp_find_all(text: str, pattern: str) -> List[int]:
    """All match positions of ``pattern`` in ``text`` (overlaps included)."""
    return list(kmp_iter(text, pattern))


def kmp_find(text: str, pattern: str, start: int = 0) -> int:
    """First match position at or after ``start``, or -1.

    Equivalent to ``text.find(pattern, start)`` but via KMP; used where the
    single-pass guarantee matters for the scan-cost accounting.
    """
    for position in kmp_iter(text[start:], pattern):
        return start + position
    return -1


class TagScanner:
    """Finds instruction-tag sentinels in serialized templates.

    One scanner instance accumulates ``bytes_scanned`` across calls so a
    DPC can report total scanning work (the ``z`` per-byte cost in the
    Section 5 comparison).
    """

    def __init__(self, sentinel: str) -> None:
        if not sentinel:
            raise ConfigurationError("sentinel cannot be empty")
        self.sentinel = sentinel
        self._failure = failure_function(sentinel)
        self.bytes_scanned = 0

    def positions(self, text: str) -> List[int]:
        """Scan ``text`` once, returning all sentinel start positions."""
        self.bytes_scanned += len(text)
        matches: List[int] = []
        matched = 0
        pattern = self.sentinel
        table = self._failure
        for i, char in enumerate(text):
            while matched > 0 and char != pattern[matched]:
                matched = table[matched - 1]
            if char == pattern[matched]:
                matched += 1
            if matched == len(pattern):
                matches.append(i - len(pattern) + 1)
                matched = table[matched - 1]
        return matches

    def reset_counters(self) -> None:
        """Zero the scanned-byte counter."""
        self.bytes_scanned = 0
