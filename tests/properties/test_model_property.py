"""Properties of the Section 5 closed-form model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.model import (
    bytes_ratio,
    expected_bytes_cached,
    expected_bytes_no_cache,
    response_size_cached,
    response_size_no_cache,
)
from repro.analysis.params import AnalysisParams
from repro.analysis.scancost import firewall_savings_percent, result1_holds

params_strategy = st.builds(
    AnalysisParams,
    hit_ratio=st.floats(0.0, 1.0),
    # A real page carries at least one content byte; the all-zero-size
    # configuration makes B_NC = 0 and every ratio undefined.
    fragment_size=st.floats(1.0, 100_000.0),
    fragments_per_page=st.integers(1, 20),
    num_pages=st.integers(1, 50),
    header_bytes=st.floats(0.0, 5_000.0),
    tag_size=st.floats(0.0, 100.0),
    cacheability=st.floats(0.0, 1.0),
    requests=st.integers(1, 10_000_000),
    zipf_alpha=st.floats(0.0, 3.0),
)


@given(params_strategy)
@settings(max_examples=300)
def test_sizes_are_non_negative(params):
    assert response_size_no_cache(params) >= 0
    assert response_size_cached(params) >= 0
    assert expected_bytes_no_cache(params) >= 0
    assert expected_bytes_cached(params) >= 0


@given(params_strategy)
def test_expected_bytes_scale_with_requests(params):
    doubled = params.with_(requests=params.requests * 2)
    assert expected_bytes_no_cache(doubled) == (
        2 * expected_bytes_no_cache(params)
    ) or abs(
        expected_bytes_no_cache(doubled) - 2 * expected_bytes_no_cache(params)
    ) < 1e-6 * expected_bytes_no_cache(doubled)


@given(params_strategy)
def test_savings_monotone_in_hit_ratio(params):
    """More hits can never mean more bytes."""
    low = params.with_(hit_ratio=max(0.0, params.hit_ratio - 0.1))
    high = params.with_(hit_ratio=min(1.0, params.hit_ratio + 0.1))
    assert response_size_cached(high) <= response_size_cached(low) + 1e-9


@given(params_strategy)
def test_zero_cacheability_means_identical_sizes(params):
    frozen = params.with_(cacheability=0.0)
    assert response_size_cached(frozen) == response_size_no_cache(frozen)


@given(params_strategy)
def test_result1_iff_positive_firewall_savings(params):
    assert result1_holds(params) == (firewall_savings_percent(params) > 0)


@given(params_strategy)
def test_ratio_definition(params):
    ratio = bytes_ratio(params)
    reconstructed = expected_bytes_cached(params) / expected_bytes_no_cache(params)
    assert abs(ratio - reconstructed) < 1e-12
