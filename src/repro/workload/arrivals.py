"""Request arrival processes: the f(t) of the Section 5 traffic model.

The analysis integrates an arrival-rate pdf f(t) over the observation
window; the experiments just need concrete arrival instants.  The classic
choice for open web traffic is Poisson (exponential interarrivals); a
deterministic process is provided for byte-accounting tests where timing
noise is unwanted, and an on/off bursty process for stress runs.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..errors import ConfigurationError


class ArrivalProcess:
    """Interface: an infinite stream of interarrival gaps (seconds)."""

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Infinite stream of interarrival gaps in seconds (override)."""
        raise NotImplementedError

    def arrival_times(
        self, rng: random.Random, count: int, start: float = 0.0
    ) -> Iterator[float]:
        """The first ``count`` absolute arrival instants."""
        now = start
        produced = 0
        for gap in self.gaps(rng):
            now += gap
            yield now
            produced += 1
            if produced >= count:
                return


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate = rate

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Exponential interarrival gaps at the configured rate."""
        while True:
            yield -math.log(1.0 - rng.random()) / self.rate


class DeterministicProcess(ArrivalProcess):
    """Evenly spaced arrivals — exact, noise-free experiment timing."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.gap = 1.0 / rate

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Constant interarrival gaps of 1/rate seconds."""
        while True:
            yield self.gap


class BurstyProcess(ArrivalProcess):
    """On/off bursts: Poisson at ``burst_rate`` inside bursts, idle between.

    Models flash-crowd arrival patterns; bursts contain a geometric number
    of requests with mean ``burst_length``.
    """

    def __init__(
        self, burst_rate: float, idle_gap: float, burst_length: float = 10.0
    ) -> None:
        if burst_rate <= 0 or idle_gap < 0 or burst_length < 1:
            raise ConfigurationError("invalid bursty-process parameters")
        self.burst_rate = burst_rate
        self.idle_gap = idle_gap
        self.burst_length = burst_length

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Idle gaps separating geometric-length Poisson bursts."""
        continue_p = 1.0 - 1.0 / self.burst_length
        while True:
            yield self.idle_gap  # gap that opens a new burst
            while rng.random() < continue_p:
                yield -math.log(1.0 - rng.random()) / self.burst_rate


class FlashCrowdProcess(ArrivalProcess):
    """A flash crowd: baseline rate, a sudden burst, exponential decay.

    The instantaneous rate is piecewise::

        rate(t) = base_rate                          t <  burst_at
                = base_rate * multiplier             burst_at <= t < burst_at + hold_s
                = base_rate * (1 + (multiplier - 1)
                      * exp(-(t - hold_end) / decay_s))   afterwards

    i.e. a quiet site is hit by ``multiplier``× its normal traffic, the
    surge holds for ``hold_s`` seconds, then decays back toward baseline
    with time constant ``decay_s``.  Gaps are exponential at the rate in
    effect when each gap opens (a non-homogeneous Poisson sketch);
    ``deterministic=True`` replaces them with exact ``1/rate(t)`` spacing
    for noise-free acceptance tests.
    """

    def __init__(
        self,
        base_rate: float,
        multiplier: float = 10.0,
        burst_at: float = 10.0,
        hold_s: float = 10.0,
        decay_s: float = 5.0,
        deterministic: bool = False,
    ) -> None:
        if base_rate <= 0:
            raise ConfigurationError("base_rate must be positive")
        if multiplier < 1:
            raise ConfigurationError("multiplier must be at least 1")
        if burst_at < 0 or hold_s < 0 or decay_s <= 0:
            raise ConfigurationError("invalid flash-crowd timing parameters")
        self.base_rate = base_rate
        self.multiplier = multiplier
        self.burst_at = burst_at
        self.hold_s = hold_s
        self.decay_s = decay_s
        self.deterministic = deterministic

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        if t < self.burst_at:
            return self.base_rate
        hold_end = self.burst_at + self.hold_s
        if t < hold_end:
            return self.base_rate * self.multiplier
        surge = (self.multiplier - 1.0) * math.exp(-(t - hold_end) / self.decay_s)
        return self.base_rate * (1.0 + surge)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Gaps drawn at the rate in effect when each gap opens."""
        now = 0.0
        while True:
            rate = self.rate(now)
            if self.deterministic:
                gap = 1.0 / rate
            else:
                gap = -math.log(1.0 - rng.random()) / rate
            now += gap
            yield gap
