"""Performance measurement harnesses for the wire-path fast lanes.

The modules here are *library* benchmarks: importable functions that run a
workload under both the fast lanes and the reference lanes
(:mod:`repro.core.fastpath`), verify the two are byte-identical, and return
JSON-serializable result dicts.  The scripts in ``benchmarks/`` and the
``python -m repro bench`` CLI are thin wrappers around them.
"""

from .hotpath import SMOKE_SETTINGS, run_hotpath
from .insight import run_insight
from .scan import run_scan

__all__ = ["run_hotpath", "run_insight", "run_scan", "SMOKE_SETTINGS"]
