"""Operational monitoring: one snapshot across a whole deployment.

Production caches live or die by their observability.  Historically this
module hand-copied every counter a component kept into an ad-hoc row list;
it is now a thin view over :class:`repro.telemetry.MetricsRegistry`.  Each
component publishes its own ``metric_rows()`` provider and
:func:`take_snapshot` simply registers whichever components are given and
collects — same rows, same order, same rendering, but one naming scheme
(:data:`repro.telemetry.METRIC_NAMES`) and no duplicated bookkeeping.

:class:`DeploymentSnapshot` survives as a read-only facade over the
registry (``get``/``names``/``render``/``rows``).  The deprecated ``add``
method and the ``objects.memoized`` → ``bem.objects.memoized`` resolution
alias completed their deprecation cycle and were removed; use
:meth:`~repro.telemetry.MetricsRegistry.record` and the canonical name.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..network.firewall import Firewall
from ..network.sniffer import Sniffer
from ..telemetry.metrics import MetricsRegistry
from .reporting import format_table


class DeploymentSnapshot:
    """Point-in-time health view of one BEM/DPC deployment.

    A read-only facade over :class:`repro.telemetry.MetricsRegistry`.  New
    code should use the registry directly (``registry.collect()`` /
    :func:`repro.telemetry.render_metrics`); the facade remains because
    ``snapshot.get(name)`` / ``snapshot.render()`` is the idiom every
    harness script and doc example uses.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def rows(self) -> List[Tuple[str, object]]:
        """Every metric row, in provider registration order."""
        return self.registry.collect()

    def get(self, name: str) -> object:
        """Look up a metric by canonical name; raises KeyError if absent."""
        for row_name, value in self.registry.collect():
            if row_name == name:
                return value
        raise KeyError(name)

    def names(self) -> List[str]:
        """All metric names, in collection order."""
        return [name for name, _ in self.registry.collect()]

    def render(self) -> str:
        """ASCII table of every collected metric."""
        return format_table(["metric", "value"], self.rows)


def take_snapshot(
    bem: Optional[BackEndMonitor] = None,
    dpc: Optional[DynamicProxyCache] = None,
    firewall: Optional[Firewall] = None,
    sniffer: Optional[Sniffer] = None,
    recovery=None,
    overload=None,
    channel=None,
    db=None,
    breaker=None,
    tracer=None,
    insight=None,
    slo=None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentSnapshot:
    """Collect the current counters of whichever components are given.

    A thin view over :class:`repro.telemetry.MetricsRegistry`: each non-None
    component is registered as a row provider (they all expose
    ``metric_rows()``) and the returned :class:`DeploymentSnapshot` reads
    straight from ``registry.collect()``.  ``recovery``, ``overload``,
    ``db``, ``breaker``, ``tracer``, ``insight`` and ``slo`` are duck-typed
    so this module stays import-independent of those subsystems; ``breaker``
    may be a :class:`repro.overload.breaker.CircuitBreaker` (its ``stats``
    carries the rows) or the stats object itself; ``insight`` is a
    :class:`repro.insight.InsightLayer` and ``slo`` a
    :class:`repro.insight.SloEngine`.  Pass ``registry`` to accumulate into
    an existing registry instead of a fresh one.
    """
    reg = registry if registry is not None else MetricsRegistry()
    if breaker is not None:
        breaker = getattr(breaker, "stats", breaker)
    for component in (
        bem, dpc, firewall, sniffer, recovery, overload, channel,
        db, breaker, tracer, insight, slo,
    ):
        if component is not None:
            reg.register_provider(component)
    return DeploymentSnapshot(registry=reg)
