"""Tests for the BooksOnline reference site."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


@pytest.fixture(scope="module")
def plain_server():
    return books.build_server(cost_model=FREE)


def dpc_stack():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=512, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=512)
    return server, bem, dpc


class TestPlainServing:
    def test_catalog_page_renders(self, plain_server):
        response = plain_server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"})
        )
        assert "Fiction | BooksOnline" in response.body
        assert 'data-category="Fiction"' in response.body

    def test_registered_user_gets_greeting(self, plain_server):
        response = plain_server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user000", session_id="s-bob")
        )
        assert "Hello, User 000" in response.body

    def test_anonymous_user_gets_no_greeting(self, plain_server):
        response = plain_server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="s-anon")
        )
        assert "Hello," not in response.body

    def test_same_url_different_pages(self, plain_server):
        """§2.1: identical URL, different users, different pages."""
        bob = plain_server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user001", session_id="s1")
        )
        alice = plain_server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="s2")
        )
        assert bob.meta["url"] == alice.meta["url"]
        assert bob.body != alice.body

    def test_product_page(self, plain_server):
        response = plain_server.handle(
            HttpRequest("/product.jsp", {"productID": "FIC-000"})
        )
        assert '<article class="product">' in response.body
        assert "blockquote" in response.body

    def test_home_page(self, plain_server):
        response = plain_server.handle(HttpRequest("/home.jsp"))
        assert "<nav>" in response.body


class TestLayoutDynamism:
    def test_profile_layout_changes_page_structure(self):
        server = books.build_server(cost_model=FREE)
        services = server.services
        services.profiles.set_layout(
            "user002",
            ["main", "navigation", "greeting", "recommendations", "promos"],
        )
        page = server.handle(
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user002", session_id="s")
        ).body
        # main listing appears before the navbar for this user.
        assert page.index('class="listing"') < page.index("<nav>")


class TestDpcServing:
    def test_assembled_equals_oracle_for_many_users(self):
        server, bem, dpc = dpc_stack()
        requests = [
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user000", session_id="s0"),
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="anon1"),
            HttpRequest("/catalog.jsp", {"categoryID": "Science"},
                        user_id="user003", session_id="s3"),
            HttpRequest("/product.jsp", {"productID": "FIC-001"},
                        user_id="user000", session_id="s0"),
            HttpRequest("/home.jsp", user_id="user005", session_id="s5"),
        ]
        for _ in range(2):  # cold then warm
            for request in requests:
                oracle = server.render_reference_page(request)
                page = dpc.process_response(server.handle(request).body)
                assert page.html == oracle

    def test_warm_responses_shrink(self):
        server, bem, dpc = dpc_stack()
        request = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                              session_id="anon")
        cold = server.handle(request)
        dpc.process_response(cold.body)
        warm = server.handle(request)
        assert warm.body_bytes < cold.body_bytes / 2

    def test_shared_fragments_across_users(self):
        """The navbar is one fragment shared by everyone."""
        server, bem, dpc = dpc_stack()
        dpc.process_response(
            server.handle(HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                                      session_id="a")).body
        )
        misses_before = bem.stats.fragment_misses
        dpc.process_response(
            server.handle(HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                                      user_id="user000", session_id="b")).body
        )
        # Second user misses only their personal fragments, not navbar/listing.
        personal_misses = bem.stats.fragment_misses - misses_before
        assert personal_misses <= 3

    def test_price_update_invalidates_listing_only(self):
        server, bem, dpc = dpc_stack()
        fiction = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                              session_id="a")
        science = HttpRequest("/catalog.jsp", {"categoryID": "Science"},
                              session_id="a")
        dpc.process_response(server.handle(fiction).body)
        dpc.process_response(server.handle(science).body)

        server.services.db.table("products").update(
            {"price": 1.99}, key="FIC-000"
        )
        warm_science = server.handle(science)
        assert warm_science.meta["misses"] == 0  # untouched category
        warm_fiction = server.handle(fiction)
        assert warm_fiction.meta["misses"] >= 1  # listing regenerated
        page = dpc.process_response(warm_fiction.body)
        assert "$1.99" in page.html

    def test_profile_edit_invalidates_user_fragments(self):
        server, bem, dpc = dpc_stack()
        request = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                              user_id="user000", session_id="s")
        dpc.process_response(server.handle(request).body)
        bem.objects.clear()  # drop the memoized profile object too
        server.services.profiles.set_preferences("user000", ["History"])
        response = server.handle(request)
        assert response.meta["misses"] >= 1
        page = dpc.process_response(response.body)
        assert page.html == server.render_reference_page(request)


class TestSeeding:
    def test_deterministic_with_seed(self):
        a = books.build_services(seed=3)
        b = books.build_services(seed=3)
        assert (
            a.db.table("products").get("FIC-000")["title"]
            == b.db.table("products").get("FIC-000")["title"]
        )

    def test_catalog_sizes(self):
        services = books.build_services(products_per_category=5,
                                        reviews_per_product=3)
        assert len(services.db.table("products")) == 5 * len(books.DEFAULT_CATEGORIES)
        assert len(services.db.table("reviews")) == 15 * len(books.DEFAULT_CATEGORIES)

    def test_tagging_pass_registered_blocks(self):
        services = books.build_services()
        for name in ("navbar", "greeting", "category_listing",
                     "recommendations", "promos", "product_detail"):
            assert name in services.tags
        assert "cart_status" not in services.tags
