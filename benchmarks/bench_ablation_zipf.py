"""Ablation: popularity skew vs achieved hit ratio under capacity pressure.

The paper justifies its 0.8 baseline hit ratio by the locality of web
request streams [2, 12].  This bench makes that argument executable: with
a capacity-limited directory, the achieved hit ratio rises with Zipf skew.
(Without capacity pressure and without invalidation, h approaches 1
regardless — locality is what makes *small* caches effective.)
"""

import random

from repro.core.bem import BackEndMonitor
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.network.clock import SimulatedClock
from repro.workload.zipf import ZipfDistribution

ALPHAS = (0.0, 0.5, 0.8, 1.0, 1.5)
UNIVERSE = 500
CAPACITY = 50            # 10% of the universe
ACCESSES = 8000


def achieved_hit_ratio(alpha: float, seed: int = 5) -> float:
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=CAPACITY, clock=clock)
    zipf = ZipfDistribution(UNIVERSE, alpha=alpha)
    rng = random.Random(seed)
    meta = FragmentMetadata()
    for _ in range(ACCESSES):
        rank = zipf.sample(rng)
        bem.process_block(
            FragmentID.create("frag", {"rank": rank}),
            meta,
            lambda: "x" * 64,
        )
        clock.advance(0.001)
    return bem.hit_ratio


def test_hit_ratio_vs_zipf_skew(benchmark, report):
    def run_all():
        return [(alpha, achieved_hit_ratio(alpha)) for alpha in ALPHAS]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        "Ablation: achieved hit ratio vs Zipf skew "
        "(capacity = 10% of fragment universe, LRU)",
        ["alpha", "hit ratio"],
        [["%.1f" % alpha, "%.4f" % ratio] for alpha, ratio in rows],
    )

    ratios = [ratio for _, ratio in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))  # skew helps
    # Uniform traffic against a 10% cache: hit ratio near 10%.
    assert ratios[0] < 0.2
    # Strong skew achieves the paper's 0.8 neighbourhood.
    assert ratios[-1] > 0.6
