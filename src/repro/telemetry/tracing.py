"""Virtual-time request tracing: explain any served page span by span.

A :class:`Tracer` opens a per-request tree of :class:`Span` objects on the
*simulated* clock — the same clock every component advances — so a span's
duration is exactly the virtual time its stage consumed::

    request (url=/page.jsp mode=dpc outcome=fresh)
      firewall.scan
      channel.transfer
      bem.process
        script.exec
          script.compute
          db.query
        queue.wait (app-server)
        queue.wait (db-pool)
      channel.transfer
      firewall.scan
      dpc.assemble

The request path arranges every clock advance to happen inside a leaf
span, which gives the tree its load-bearing invariant (checked by
:func:`assert_gap_free`): **each span's children tile it exactly**, so the
root's duration equals the measured virtual response time and no byte of
latency is unattributed.  Shed, stale, and timed-out outcomes from
:mod:`repro.overload` and recovery epochs from :mod:`repro.faults` are
annotated onto the same trees.

Tracing is **zero-cost when disabled**: ``Tracer.span()`` on a disabled
tracer returns one shared no-op context manager and allocates nothing.
Trace context propagates across component boundaries on
``HttpRequest.trace`` / ``WireMessage.trace`` as a :class:`TraceContext`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

#: Duration comparisons tolerate this much floating-point slack (seconds).
EPSILON = 1e-9


class Span:
    """One stage of one request, measured on the virtual clock.

    A span is its own context manager (``with tracer.span(...) as span:``);
    exiting closes it against the tracer's clock.  The class is built for
    the hot path — one allocation per stage, no wrapper scope object — so
    enabled tracing stays within the documented overhead bound.
    """

    __slots__ = ("name", "trace_id", "start", "end", "status", "meta",
                 "children", "_tracer")

    def __init__(self, name: str, trace_id: str, start: float,
                 meta: Optional[dict] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.meta: dict = {} if meta is None else meta
        self.children: List["Span"] = []
        self._tracer = tracer

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.status == "ok":
            self.status = exc_type.__name__
        tracer = self._tracer
        if tracer is None or not tracer._enabled:
            return False
        self.end = tracer._now()
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - defensive
            while stack and stack[-1] is not self:
                stack.pop()
            stack.pop()
        if not stack:
            # Root closed: the trace is complete.
            tracer.traces.append(self)
            tracer.last_root = self
            tracer.traces_completed += 1
        return False

    @property
    def closed(self) -> bool:
        """Whether the span has finished."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Virtual seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **meta: object) -> "Span":
        """Attach free-form key/value metadata; returns self for chaining."""
        self.meta.update(meta)
        return self

    def set_status(self, status: str) -> "Span":
        """Override the span's outcome status (``ok`` by default)."""
        self.status = status
        return self

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first), if any."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def count(self, name: Optional[str] = None) -> int:
        """Number of spans in this subtree (optionally only those named)."""
        return sum(
            1 for span in self.walk() if name is None or span.name == name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, %.6f..%s, %d children)" % (
            self.name, self.start,
            "open" if self.end is None else "%.6f" % self.end,
            len(self.children),
        )


class NullSpan:
    """The span handed out by a disabled tracer: every method is a no-op."""

    __slots__ = ()

    name = ""
    trace_id = ""
    start = 0.0
    end = 0.0
    status = "ok"
    meta: dict = {}
    children: List[Span] = []
    closed = True
    duration = 0.0

    def annotate(self, **meta: object) -> "NullSpan":
        """Discard the annotations; stay chainable like :meth:`Span.annotate`."""
        return self

    def set_status(self, status: str) -> "NullSpan":
        """Discard the status; stay chainable like :meth:`Span.set_status`."""
        return self


NULL_SPAN = NullSpan()


class _NullScope:
    """Shared reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SCOPE = _NullScope()


class TraceContext:
    """The propagatable identity of an in-flight trace.

    Carried on ``HttpRequest.trace`` and ``WireMessage.trace`` so any
    component holding only the message can still annotate the right tree.
    """

    __slots__ = ("trace_id", "span")

    def __init__(self, trace_id: str, span: Span) -> None:
        self.trace_id = trace_id
        self.span = span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceContext(%r)" % self.trace_id


class Tracer:
    """Opens and closes spans against a shared simulated clock.

    ``enabled=False`` (the default) makes every tracing call a shared
    no-op; flipping it on costs one :class:`Span` allocation per stage.
    Completed root spans are retained in ``traces`` (a bounded deque) and
    the most recent one is always reachable as ``last_root`` so harnesses
    can annotate outcomes after the fact.
    """

    def __init__(self, clock=None, enabled: bool = False,
                 max_traces: int = 256) -> None:
        if enabled and clock is None:
            raise ConfigurationError("an enabled tracer needs a clock")
        self.clock = clock
        #: Bound ``clock.now`` for the hot path (one lookup per call).
        self._now = clock.now if clock is not None else None
        self._enabled = bool(enabled)
        self._stack: List[Span] = []
        self.traces: Deque[Span] = deque(maxlen=max_traces)
        self.last_root: Optional[Span] = None
        self.spans_opened = 0
        self.traces_completed = 0
        self._next_trace_id = 0

    # -- switching ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans (requires a clock)."""
        if self.clock is None:
            raise ConfigurationError("an enabled tracer needs a clock")
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; any open spans are abandoned."""
        self._enabled = False
        self._stack = []

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **meta: object):
        """Open a child span of the current one (or a new root).

        Returns a context manager yielding the :class:`Span`; on a
        disabled tracer this is a shared no-op and nothing is recorded.
        """
        if not self._enabled:
            return NULL_SCOPE
        stack = self._stack
        if stack:
            parent = stack[-1]
            span = Span(name, parent.trace_id, self._now(), meta, self)
            parent.children.append(span)
        else:
            trace_id = "t%06d" % self._next_trace_id
            self._next_trace_id += 1
            span = Span(name, trace_id, self._now(), meta, self)
        stack.append(span)
        self.spans_opened += 1
        return span

    def request_span(self, request, **meta: object):
        """A root ``request`` span — or a no-op if a trace is already open.

        The per-request pipelines (testbed, overload, chaos) all call this
        at their entry point; whichever layer gets there first owns the
        root, and inner layers transparently contribute children instead of
        opening nested ``request`` roots.
        """
        if not self._enabled or self._stack:
            return NULL_SCOPE
        meta["url"] = request.url
        return self.span("request", **meta)

    # -- context ------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if tracing is on and a trace is open."""
        if not self._enabled or not self._stack:
            return None
        return self._stack[-1]

    def current_context(self) -> Optional[TraceContext]:
        """A propagatable :class:`TraceContext` for the current span."""
        span = self.current
        if span is None:
            return None
        return TraceContext(trace_id=span.trace_id, span=span)

    def propagate(self, request):
        """Stamp the active trace context onto an ``HttpRequest``.

        Returns the request unchanged when tracing is off (the zero-cost
        path); otherwise sets the request's ``trace`` side-channel field in
        place — it is excluded from comparison/repr exactly so tracing
        never changes request identity — and returns the same object.
        """
        context = self.current_context()
        if context is None or getattr(request, "trace", None) is not None:
            return request
        object.__setattr__(request, "trace", context)
        return request

    def annotate_last(self, **meta: object) -> None:
        """Attach metadata to the most recently completed trace root."""
        if self._enabled and self.last_root is not None:
            self.last_root.annotate(**meta)

    # -- observability of the observer --------------------------------------

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows describing the tracer's own work."""
        return [
            ("trace.spans_opened", self.spans_opened),
            ("trace.traces_completed", self.traces_completed),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Tracer(enabled=%s, open=%d, completed=%d)" % (
            self._enabled, len(self._stack), self.traces_completed
        )


#: A permanently disabled tracer components can default to, so call sites
#: read ``with self.tracer.span(...)`` without None checks.  Never enable
#: it — it is shared process-wide.
NULL_TRACER = Tracer(clock=None, enabled=False, max_traces=1)


# -- tree invariants ---------------------------------------------------------


def assert_well_formed(root: Span) -> None:
    """Raise AssertionError unless the tree is rooted, closed, and nested.

    Checks: every span is closed with ``end >= start``; every child starts
    no earlier than its parent and ends no later; siblings are ordered and
    non-overlapping.
    """
    for span in root.walk():
        assert span.closed, "span %r never closed" % span.name
        assert span.end >= span.start - EPSILON, (
            "span %r ends before it starts" % span.name
        )
        previous_end = span.start
        for child in span.children:
            assert child.start >= span.start - EPSILON, (
                "child %r starts before parent %r" % (child.name, span.name)
            )
            assert child.closed and child.end <= span.end + EPSILON, (
                "child %r outlives parent %r" % (child.name, span.name)
            )
            assert child.start >= previous_end - EPSILON, (
                "siblings overlap at %r under %r" % (child.name, span.name)
            )
            previous_end = child.end


def assert_gap_free(root: Span) -> None:
    """Raise AssertionError unless every span's children tile it exactly.

    "Gap-free" is the accounting guarantee: for any span with children,
    the children's durations sum to the span's own duration (no virtual
    time vanishes between or around them), recursively.  Leaves are where
    the clock actually advances.
    """
    assert_well_formed(root)
    for span in root.walk():
        if not span.children:
            continue
        tiled = sum(child.duration for child in span.children)
        assert abs(tiled - span.duration) <= EPSILON * (len(span.children) + 1), (
            "gap in span %r: children cover %.9f of %.9f virtual seconds"
            % (span.name, tiled, span.duration)
        )
