"""The page-template instruction language exchanged between BEM and DPC.

At run time the BEM writes a *page template* instead of a full page: literal
layout HTML interleaved with instructions (§4.3.2):

* ``SET`` — "insert the fragment into the DPC": carries the dpcKey and the
  freshly generated fragment content (a directory miss).
* ``GET`` — "retrieve the fragment from the DPC": carries only the dpcKey
  (a directory hit).  This is the tiny tag whose size is the ``g`` of the
  Section 5 analysis.

Wire format
-----------

Tags are framed by the sentinel ``<~``::

    GET       <~G:0042~>
    SET open  <~S:0042~>...fragment content...<~E:0042~>
    escape    <~Q~>          (a literal occurrence of "<~" in content)

With the default ``key_width=4`` a GET tag is exactly **10 bytes** — the
paper's baseline tag size ``g`` (Table 2) — and a SET costs two tags, giving
the analysis' miss cost of ``s + 2g``.  dpcKeys are zero-padded integers,
which is precisely why the paper introduces the integer key: "it reduces the
tag size" versus embedding the long fragmentID (§4.3.3).

Fast lanes (see :mod:`repro.core.fastpath`)
-------------------------------------------

The instruction classes carry ``__slots__`` (they are allocated per block
per request), :meth:`Template.serialize`/:meth:`Template.wire_bytes` are
memoized until the template is mutated, :meth:`Template.compiled` bakes the
instruction stream into a flat assembly plan the DPC executes with one
``str.join``, and :class:`TemplateCache` is the LRU parse cache — keyed on
the wire string — that lets a warm proxy skip re-parsing a template it has
already seen.  None of these change any observable byte: the differential
property tests pin fast-lane output to the reference lane's.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError, OversizedFragmentError, TemplateError
from . import fastpath
from .scanner import TagScanner

SENTINEL = "<~"
TAG_CLOSE = "~>"
ESCAPE_TAG = "<~Q~>"


class TemplateConfig:
    """Framing parameters shared by a BEM/DPC pair.

    ``key_width`` fixes the zero-padded dpcKey width, hence the exact tag
    size ``g = key_width + 6`` bytes and the maximum representable key.
    Both sides of a deployment must agree on it, like any wire protocol.

    ``max_fragment_bytes`` bounds one SET payload.  A proxy that accepts
    arbitrarily large fragments can be wedged by a single malformed (or
    hostile) response; anything over the limit is rejected with a typed
    :class:`~repro.errors.OversizedFragmentError` before it touches a slot.
    """

    __slots__ = ("key_width", "max_fragment_bytes")

    def __init__(
        self, key_width: int = 4, max_fragment_bytes: int = 1 << 20
    ) -> None:
        if key_width < 1:
            raise ConfigurationError("key_width must be at least 1")
        if max_fragment_bytes < 1:
            raise ConfigurationError("max_fragment_bytes must be positive")
        object.__setattr__(self, "key_width", key_width)
        object.__setattr__(self, "max_fragment_bytes", max_fragment_bytes)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TemplateConfig is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemplateConfig):
            return NotImplemented
        return (
            self.key_width == other.key_width
            and self.max_fragment_bytes == other.max_fragment_bytes
        )

    def __hash__(self) -> int:
        return hash((self.key_width, self.max_fragment_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TemplateConfig(key_width=%d, max_fragment_bytes=%d)" % (
            self.key_width, self.max_fragment_bytes,
        )

    @property
    def tag_size(self) -> int:
        """Bytes per tag: ``<~`` + kind + ``:`` + key + ``~>``."""
        return self.key_width + 6

    @property
    def max_key(self) -> int:
        """Largest dpcKey representable at this key width."""
        return 10 ** self.key_width - 1

    def format_key(self, key: int) -> str:
        """Zero-padded decimal rendering of a dpcKey."""
        if not 0 <= key <= self.max_key:
            raise ConfigurationError(
                "dpcKey %d out of range for key_width=%d" % (key, self.key_width)
            )
        return "%0*d" % (self.key_width, key)


DEFAULT_CONFIG = TemplateConfig()


class Literal:
    """Non-cacheable bytes shipped verbatim (layout markup, X_j=0 content)."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        object.__setattr__(self, "text", text)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.text == other.text

    def __hash__(self) -> int:
        return hash((Literal, self.text))

    def __repr__(self) -> str:
        return "Literal(text=%r)" % (self.text,)


class GetInstruction:
    """Splice the DPC slot ``key``'s content here (directory hit)."""

    __slots__ = ("key",)

    def __init__(self, key: int) -> None:
        object.__setattr__(self, "key", key)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GetInstruction is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GetInstruction):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash((GetInstruction, self.key))

    def __repr__(self) -> str:
        return "GetInstruction(key=%r)" % (self.key,)


class SetInstruction:
    """Store ``content`` in slot ``key``, and splice it here (miss)."""

    __slots__ = ("key", "content")

    def __init__(self, key: int, content: str) -> None:
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "content", content)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SetInstruction is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetInstruction):
            return NotImplemented
        return self.key == other.key and self.content == other.content

    def __hash__(self) -> int:
        return hash((SetInstruction, self.key, self.content))

    def __repr__(self) -> str:
        return "SetInstruction(key=%r, content=%r)" % (self.key, self.content)


Instruction = Union[Literal, GetInstruction, SetInstruction]

#: Assembly-plan opcodes (see :meth:`Template.compiled`).
OP_TEXT = 0   # (OP_TEXT, text)              — splice literal text
OP_GET = 1    # (OP_GET, key)                — splice slot ``key``
OP_SET = 2    # (OP_SET, key, content)       — store then splice ``content``

PlanOp = Tuple


class Template:
    """An ordered instruction stream plus its serialization/parsing.

    Serialization, wire size, literal-byte totals, and the compiled
    assembly plan are memoized on the instance and invalidated whenever an
    instruction is appended, so read-heavy callers (the serve path, the
    benches) never pay for the same traversal twice.
    """

    def __init__(
        self,
        instructions: Iterable[Instruction] = (),
        config: TemplateConfig = DEFAULT_CONFIG,
    ) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self.config = config
        self._serialized: Optional[str] = None
        self._wire_bytes: Optional[int] = None
        self._literal_bytes: Optional[int] = None
        self._plan: Optional[Tuple[PlanOp, ...]] = None

    # -- construction -----------------------------------------------------------

    def add(self, instruction: Instruction) -> "Template":
        """Append one instruction (chainable); invalidates memoized views."""
        self.instructions.append(instruction)
        self._invalidate()
        return self

    def literal(self, text: str) -> "Template":
        """Append literal page text (chainable)."""
        return self.add(Literal(text))

    def get(self, key: int) -> "Template":
        """Append a GET instruction (chainable)."""
        return self.add(GetInstruction(key))

    def set(self, key: int, content: str) -> "Template":
        """Append a SET instruction with content (chainable)."""
        return self.add(SetInstruction(key, content))

    def _invalidate(self) -> None:
        """Drop every memoized view after a mutation."""
        self._serialized = None
        self._wire_bytes = None
        self._literal_bytes = None
        self._plan = None

    # -- inspection --------------------------------------------------------------

    @property
    def get_count(self) -> int:
        """Number of GET instructions."""
        return sum(1 for i in self.instructions if type(i) is GetInstruction)

    @property
    def set_count(self) -> int:
        """Number of SET instructions."""
        return sum(1 for i in self.instructions if type(i) is SetInstruction)

    @property
    def literal_bytes(self) -> int:
        """Total UTF-8 bytes of literal text (memoized until mutation)."""
        if self._literal_bytes is None:
            self._literal_bytes = sum(
                len(i.text.encode("utf-8"))
                for i in self.instructions
                if type(i) is Literal
            )
        return self._literal_bytes

    def normalized(self) -> "Template":
        """Merge adjacent literals and drop empty ones.

        Serialization implicitly concatenates adjacent literal text, so the
        normalized form is the canonical one: ``parse(serialize(t))`` equals
        ``t.normalized()``.
        """
        merged: List[Instruction] = []
        for instruction in self.instructions:
            if type(instruction) is Literal:
                if not instruction.text:
                    continue
                if merged and type(merged[-1]) is Literal:
                    merged[-1] = Literal(merged[-1].text + instruction.text)
                    continue
            merged.append(instruction)
        return Template(merged, self.config)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Template):
            return NotImplemented
        return (
            self.instructions == other.instructions and self.config == other.config
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Template(%d instructions, %d GET, %d SET)" % (
            len(self.instructions),
            self.get_count,
            self.set_count,
        )

    # -- serialization --------------------------------------------------------------

    def serialize(self) -> str:
        """Render the wire form sent from the BEM to the DPC.

        Memoized: repeated calls return the cached string until the
        template is mutated.  On the reference lanes the render runs fresh
        every call, mirroring the pre-optimization behavior.
        """
        if fastpath.enabled() and self._serialized is not None:
            return self._serialized
        parts: List[str] = []
        for instruction in self.normalized().instructions:
            if type(instruction) is Literal:
                parts.append(_escape(instruction.text))
            elif type(instruction) is GetInstruction:
                parts.append(_tag(self.config, "G", instruction.key))
            elif type(instruction) is SetInstruction:
                parts.append(_tag(self.config, "S", instruction.key))
                parts.append(_escape(instruction.content))
                parts.append(_tag(self.config, "E", instruction.key))
            else:  # pragma: no cover - exhaustive over Instruction
                raise TemplateError("unknown instruction %r" % (instruction,))
        wire = "".join(parts)
        self._serialized = wire
        return wire

    def wire_bytes(self) -> int:
        """Size of the serialized template in bytes (memoized)."""
        if fastpath.enabled() and self._wire_bytes is not None:
            return self._wire_bytes
        size = len(self.serialize().encode("utf-8"))
        self._wire_bytes = size
        return size

    # -- assembly plan ---------------------------------------------------------------

    def compiled(self) -> Tuple[PlanOp, ...]:
        """The flat assembly plan for this instruction stream (memoized).

        Each op is a tuple starting with one of :data:`OP_TEXT`,
        :data:`OP_GET`, :data:`OP_SET`.  Executing the ops in order against
        a slot array and joining the spliced parts reproduces, byte for
        byte, what the per-instruction ``isinstance`` walk produced — the
        DPC's fast-lane :meth:`~repro.core.dpc.DynamicProxyCache.assemble`
        runs this plan with one ``''.join`` over the collected parts.
        """
        if self._plan is not None:
            return self._plan
        ops: List[PlanOp] = []
        for instruction in self.instructions:
            kind = type(instruction)
            if kind is Literal:
                ops.append((OP_TEXT, instruction.text))
            elif kind is GetInstruction:
                ops.append((OP_GET, instruction.key))
            elif kind is SetInstruction:
                ops.append((OP_SET, instruction.key, instruction.content))
            else:  # pragma: no cover - exhaustive over Instruction
                raise TemplateError("unknown instruction %r" % (instruction,))
        self._plan = tuple(ops)
        return self._plan


def _tag(config: TemplateConfig, kind: str, key: int) -> str:
    return "%s%s:%s%s" % (SENTINEL, kind, config.format_key(key), TAG_CLOSE)


def _escape(text: str) -> str:
    return text.replace(SENTINEL, ESCAPE_TAG)


class TemplateCache:
    """LRU parse cache: wire string -> parsed (normalized) template.

    A warm proxy sees the same serialized template again and again — every
    full-hit exchange for a page ships an identical GET-only wire form.
    Re-parsing it is pure interpreter overhead the paper's design never
    asks for, so the DPC keeps this cache in front of
    :func:`parse_template`.  Cached templates are treated as immutable by
    their owner (the DPC never mutates a parsed template); anything that
    needs a private copy should parse fresh.

    Capacity is bounded (LRU eviction) and single wire strings larger than
    ``max_wire_bytes`` are never cached — cold-miss templates carrying full
    fragment payloads are usually unique, so caching them would only churn
    memory.
    """

    def __init__(self, maxsize: int = 256, max_wire_bytes: int = 1 << 20) -> None:
        if maxsize < 1:
            raise ConfigurationError("cache maxsize must be positive")
        if max_wire_bytes < 1:
            raise ConfigurationError("max_wire_bytes must be positive")
        self.maxsize = maxsize
        self.max_wire_bytes = max_wire_bytes
        self._entries: "OrderedDict[str, Template]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, wire: str) -> Optional[Template]:
        """The cached parse of ``wire``, refreshed to most-recently-used."""
        template = self._entries.get(wire)
        if template is None:
            self.misses += 1
            return None
        self._entries.move_to_end(wire)
        self.hits += 1
        return template

    def put(self, wire: str, template: Template) -> None:
        """Remember the parse of ``wire``, evicting the LRU entry if full."""
        if len(wire) > self.max_wire_bytes:
            return
        self._entries[wire] = template
        self._entries.move_to_end(wire)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached parse (e.g. on a proxy restart)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def parse_template(
    wire: str,
    config: TemplateConfig = DEFAULT_CONFIG,
    scanner: TagScanner = None,
) -> Template:
    """Parse a serialized template back into an instruction stream.

    The scan for tags is a single linear pass (the cost the Section 5
    analysis charges at ``z`` per byte) — ``str.find``-based on the fast
    lanes, the KMP reference loop otherwise.  Passing a shared
    :class:`TagScanner` lets a DPC accumulate scanned-byte counts across
    responses.
    """
    if scanner is None:
        scanner = TagScanner(SENTINEL)
    elif scanner.sentinel != SENTINEL:
        raise ConfigurationError("scanner sentinel must be %r" % SENTINEL)

    positions = scanner.positions(wire)
    template = Template(config=config)
    buffer: List[str] = []          # accumulates literal or SET content text
    open_set: Tuple[int, ...] = ()  # (key,) while inside a SET body
    cursor = 0

    def flush_literal() -> None:
        if buffer:
            template.literal("".join(buffer))
            buffer.clear()

    for position in positions:
        if position < cursor:
            # Sentinel inside a tag we already consumed (cannot happen with
            # the current grammar, but guards against malformed overlap).
            continue
        buffer.append(wire[cursor:position])
        kind, key, end = _read_tag(wire, position, config)
        cursor = end
        if kind == "Q":
            buffer.append(SENTINEL)
            continue
        if open_set:
            if kind == "E" and key == open_set[0]:
                content = "".join(buffer)
                if len(content.encode("utf-8")) > config.max_fragment_bytes:
                    raise OversizedFragmentError(
                        "SET body for key %d is %d bytes (max %d)"
                        % (
                            open_set[0],
                            len(content.encode("utf-8")),
                            config.max_fragment_bytes,
                        )
                    )
                template.set(open_set[0], content)
                buffer.clear()
                open_set = ()
                continue
            raise TemplateError(
                "unexpected %s tag inside SET body for key %d at offset %d"
                % (kind, open_set[0], position)
            )
        if kind == "G":
            flush_literal()
            template.get(key)
        elif kind == "S":
            flush_literal()
            open_set = (key,)
        elif kind == "E":
            raise TemplateError(
                "END tag for key %d without a matching SET at offset %d"
                % (key, position)
            )
    if open_set:
        raise TemplateError("unterminated SET body for key %d" % open_set[0])
    buffer.append(wire[cursor:])
    if "".join(buffer):
        template.literal("".join(buffer))
    return template.normalized()


def _read_tag(wire: str, position: int, config: TemplateConfig) -> Tuple[str, int, int]:
    """Decode one tag at ``position``; returns (kind, key, end_offset)."""
    after = position + len(SENTINEL)
    if wire.startswith("Q" + TAG_CLOSE, after):
        return "Q", -1, after + 1 + len(TAG_CLOSE)
    kind = wire[after : after + 1]
    if kind not in ("G", "S", "E"):
        raise TemplateError(
            "unknown tag kind %r at offset %d" % (wire[after : after + 1], position)
        )
    if wire[after + 1 : after + 2] != ":":
        raise TemplateError("malformed tag at offset %d (missing ':')" % position)
    key_start = after + 2
    key_end = key_start + config.key_width
    key_text = wire[key_start:key_end]
    if len(key_text) != config.key_width or not key_text.isdigit():
        raise TemplateError(
            "malformed dpcKey %r at offset %d" % (key_text, position)
        )
    if wire[key_end : key_end + len(TAG_CLOSE)] != TAG_CLOSE:
        raise TemplateError("unterminated tag at offset %d" % position)
    return kind, int(key_text), key_end + len(TAG_CLOSE)
