"""The dotted metric-name scheme and the canonical name list.

Every metric the reproduction publishes lives in one flat, dotted
namespace: ``<subsystem>.<counter>`` (``bem.fragment_hits``,
``overload.drops.queue_full``).  The scheme is enforced at registration
time by :func:`validate_metric_name`, and the canonical set of names a
deployment snapshot can emit is published as :data:`METRIC_NAMES` so tools
(and the lint test under ``tests/telemetry``) can reject ad-hoc strings
before they ossify into accidental API.

Name normalization (PR 3) renamed one legacy row, ``objects.memoized`` →
``bem.objects.memoized``; the deprecation alias that let the old spelling
resolve was removed after one deprecation cycle, so only the canonical
name exists now.
"""

from __future__ import annotations

import re

from ..errors import ConfigurationError

#: Lowercase dotted names: at least two segments, each ``[a-z0-9_]+``,
#: first segment starting with a letter.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Miss causes mirrored from :data:`repro.insight.ledger.MISS_CAUSES`.
#: Kept literal here (rather than imported) so the telemetry package stays
#: import-independent of the insight subsystem; a test asserts the two
#: stay in sync.
_MISS_CAUSES = (
    "cold",
    "ttl_expired",
    "data_invalidated",
    "evicted_capacity",
    "shed_overload",
    "fault_quarantine",
)

#: Rejection reasons mirrored from :data:`repro.overload.accounting.DROP_REASONS`.
#: Kept literal here (rather than imported) so the telemetry package stays
#: import-independent of the overload subsystem; a test asserts the two
#: stay in sync.
_DROP_REASONS = (
    "queue_full",
    "deadline_exceeded",
    "breaker_open",
    "policy_shed",
    "messages_dropped",
)

#: Every metric name a :func:`repro.harness.monitoring.take_snapshot` can
#: emit, in canonical (collection) order.
METRIC_NAMES = (
    # -- BEM (back end monitor) ------------------------------------------
    "bem.epoch",
    "bem.blocks_processed",
    "bem.fragment_hits",
    "bem.fragment_misses",
    "bem.hit_ratio",
    "bem.bytes_generated",
    "bem.bytes_served_from_dpc",
    "directory.valid_entries",
    "directory.capacity",
    "directory.utilization",
    "directory.evictions",
    "directory.invalidations",
    "directory.ttl_expirations",
    "invalidation.fragments_invalidated",
    "bem.objects.memoized",
    # -- DPC (dynamic proxy cache) ---------------------------------------
    "dpc.epoch",
    "dpc.responses_processed",
    "dpc.template_bytes_in",
    "dpc.page_bytes_out",
    "dpc.bytes_saved",
    "dpc.byte_savings_ratio",
    "dpc.fragments_set",
    "dpc.fragments_get",
    "dpc.slots_occupied",
    "dpc.capacity",
    "dpc.bytes_scanned",
    # -- perimeter and links ---------------------------------------------
    "firewall.bytes_scanned",
    "firewall.messages_scanned",
    "link.request_payload_bytes",
    "link.response_payload_bytes",
    "link.total_wire_bytes",
    "channel.messages_sent",
    "channel.messages_dropped",
    # -- database ---------------------------------------------------------
    "db.statements_executed",
    "db.rows_read",
    "db.queue_wait_s",
    "db.tables",
    # -- fault recovery (repro.faults) ------------------------------------
    "recovery.synced_epoch",
    "recovery.dpc_epoch",
    "recovery.epoch_resyncs",
    "recovery.anti_entropy_sweeps",
    "recovery.entries_dropped",
    "recovery.slot_mismatches",
    "recovery.discipline_repairs",
    "recovery.keys_reclaimed",
    "recovery.quarantined_sets",
    # -- overload protection (repro.overload) ------------------------------
    tuple("overload.drops.%s" % reason for reason in _DROP_REASONS),
    "overload.drops.total",
    "overload.breaker.opens",
    "overload.breaker.closes",
    "overload.breaker.probes",
    "overload.breaker.refused",
    # -- the telemetry layer itself ----------------------------------------
    "trace.spans_opened",
    "trace.traces_completed",
    # -- cache insight (repro.insight) --------------------------------------
    tuple("insight.miss.%s" % cause for cause in _MISS_CAUSES),
    "insight.miss.total",
    "insight.hits",
    "insight.accesses",
    "insight.mattson.accesses",
    "insight.mattson.distinct_fragments",
    "insight.mattson.cold_misses",
    "insight.mattson.stale_misses",
    "insight.eviction.victims",
    "insight.eviction.mean_idle_s",
    "insight.dpc.wipes",
    # -- SLO engine (repro.insight.slo) -------------------------------------
    "slo.objectives",
    "slo.samples",
    "slo.alerts_fired",
    "slo.alerts_active",
)
# Flatten the nested drop-reason tuple while preserving order.
METRIC_NAMES = tuple(
    name
    for entry in METRIC_NAMES
    for name in (entry if isinstance(entry, tuple) else (entry,))
)


def valid_metric_name(name: str) -> bool:
    """Whether ``name`` follows the dotted lowercase scheme."""
    return bool(METRIC_NAME_RE.match(name))


def validate_metric_name(name: str) -> str:
    """Return ``name`` if well-formed, else raise ConfigurationError."""
    if not valid_metric_name(name):
        raise ConfigurationError(
            "metric name %r does not follow the dotted scheme "
            "(lowercase segments joined by '.', at least two)" % (name,)
        )
    return name
