"""Tests for the circuit breaker state machine."""

import pytest

from repro.errors import ConfigurationError
from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestTripping:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, open_s=1.0)
        for t in range(2):
            breaker.record_failure(float(t))
        assert breaker.state == CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == OPEN
        assert breaker.stats.opens == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == CLOSED

    def test_open_refuses_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, open_s=2.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert not breaker.allow(1.9)
        assert breaker.stats.refused == 2


class TestHalfOpen:
    def make_open(self):
        breaker = CircuitBreaker(failure_threshold=1, open_s=1.0)
        breaker.record_failure(0.0)
        return breaker

    def test_one_probe_at_a_time(self):
        breaker = self.make_open()
        assert breaker.allow(1.5)           # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1.6)       # second concurrent probe refused
        assert breaker.stats.probes == 1

    def test_probe_success_closes(self):
        breaker = self.make_open()
        assert breaker.allow(1.5)
        breaker.record_success(1.6)
        assert breaker.state == CLOSED
        assert breaker.stats.closes == 1
        assert breaker.allow(1.7)

    def test_probe_failure_reopens(self):
        breaker = self.make_open()
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)
        assert breaker.state == OPEN
        assert not breaker.allow(1.7)
        # and the cool-down restarts from the re-open instant
        assert breaker.allow(2.7)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(open_s=0)


class TestRelease:
    """A granted probe shed before the origin trip must be handed back."""

    def make_open(self):
        breaker = CircuitBreaker(failure_threshold=1, open_s=1.0)
        breaker.record_failure(0.0)
        return breaker

    def test_release_returns_half_open_probe_slot(self):
        breaker = self.make_open()
        assert breaker.allow(1.5)           # probe slot granted
        breaker.release(1.5)                # ...but shed by a later gate
        assert breaker.state == HALF_OPEN
        assert breaker.stats.probes == 0    # the probe never went out
        assert breaker.allow(1.6)           # the slot is claimable again

    def test_release_is_no_verdict(self):
        breaker = self.make_open()
        assert breaker.allow(1.5)
        breaker.release(1.5)
        # Releasing neither heals (no close) nor trips (no re-open).
        assert breaker.stats.closes == 0
        assert breaker.stats.opens == 1

    def test_release_while_closed_is_noop(self):
        breaker = CircuitBreaker()
        assert breaker.allow(0.0)
        breaker.release(0.0)
        assert breaker.state == CLOSED
        assert breaker.stats.probes == 0
        assert breaker.allow(0.1)
