"""Tests for the pluggable admission-control policies."""

import pytest

from repro.errors import ConfigurationError
from repro.overload.admission import (
    AdmissionPolicy,
    CoDelPolicy,
    StaticThresholdPolicy,
    TokenBucketPolicy,
    make_policy,
)


class TestBasePolicy:
    def test_admit_all_and_accounting(self):
        policy = AdmissionPolicy()
        assert all(policy.admit(t, depth=99, wait_s=9.9) for t in range(5))
        assert policy.consulted == 5
        assert policy.shed == 0


class TestStaticThreshold:
    def test_sheds_at_threshold(self):
        policy = StaticThresholdPolicy(threshold=3)
        assert policy.admit(0.0, depth=2, wait_s=0.0)
        assert not policy.admit(0.0, depth=3, wait_s=0.0)
        assert not policy.admit(0.0, depth=10, wait_s=0.0)
        assert policy.shed == 2

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            StaticThresholdPolicy(threshold=0)


class TestCoDel:
    def test_transient_spike_is_admitted(self):
        policy = CoDelPolicy(target_s=0.05, interval_s=0.5)
        assert policy.admit(0.0, depth=5, wait_s=0.2)   # first above-target
        assert policy.admit(0.1, depth=5, wait_s=0.2)   # within interval
        assert policy.admit(0.3, depth=0, wait_s=0.01)  # delay recovered
        assert policy.shed == 0

    def test_standing_delay_sheds(self):
        policy = CoDelPolicy(target_s=0.05, interval_s=0.5)
        assert policy.admit(0.0, depth=5, wait_s=0.2)
        assert not policy.admit(0.6, depth=5, wait_s=0.2)   # standing queue
        assert not policy.admit(0.7, depth=5, wait_s=0.2)
        assert policy.admit(0.8, depth=0, wait_s=0.01)      # recovered
        assert policy.admit(1.5, depth=5, wait_s=0.2)       # interval restarts
        assert policy.shed == 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CoDelPolicy(target_s=0)
        with pytest.raises(ConfigurationError):
            CoDelPolicy(interval_s=-1)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        policy = TokenBucketPolicy(rate=10.0, burst=2.0)
        assert policy.admit(0.0, 0, 0.0)
        assert policy.admit(0.0, 0, 0.0)
        assert not policy.admit(0.0, 0, 0.0)    # bucket drained
        assert policy.admit(0.1, 0, 0.0)        # one token refilled
        assert not policy.admit(0.1, 0, 0.0)

    def test_refill_caps_at_burst(self):
        policy = TokenBucketPolicy(rate=100.0, burst=2.0)
        policy.admit(0.0, 0, 0.0)
        admitted = sum(1 for _ in range(10) if policy.admit(100.0, 0, 0.0))
        assert admitted == 2                     # long idle refills to burst only

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucketPolicy(rate=0)
        with pytest.raises(ConfigurationError):
            TokenBucketPolicy(rate=1.0, burst=0.5)


class TestRegistry:
    def test_make_policy_by_name(self):
        assert isinstance(make_policy("codel"), CoDelPolicy)
        assert isinstance(
            make_policy("static-threshold", threshold=2), StaticThresholdPolicy
        )
        assert isinstance(make_policy("token-bucket"), TokenBucketPolicy)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("drop-everything")
