"""The analysis the paper omitted: server-side performance and capacity.

Section 5 opens: "There are two types of benefits that accrue in our
model: (a) performance and scalability of the server side, and (b)
bandwidth savings ...  Due to space limitations, we only present the
results of our bandwidth savings analysis."

This module reconstructs the omitted half, using the same §2.2.2 delay
taxonomy the testbed's :class:`GenerationCostModel` implements.  Expected
origin time per request:

* no cache:  ``T_NC = d + k · t_gen``
* with DPC:  ``T_C  = d + k · [ X (h · t_probe + (1-h) · t_gen)
  + (1-X) · t_gen ]``

where ``d`` is request dispatch, ``k`` fragments/page, ``t_gen`` the full
block-generation cost (cross-tier hops, DB connection wait, per-row and
per-byte work, conversion) and ``t_probe`` the directory lookup.  From T
follows single-server capacity ``1/T`` requests/second, and the speedup
and capacity-multiplier curves vs hit ratio — the server-side mirror of
Figure 2(b).  The testbed's measured generation times validate the
expressions (see ``benchmarks/bench_serverside.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..network.latency import GenerationCostModel
from .params import AnalysisParams


@dataclass(frozen=True)
class ServerSideModel:
    """Closed-form origin-time model for one (params, cost-model) pair."""

    params: AnalysisParams
    costs: GenerationCostModel = GenerationCostModel()
    #: DB rows a typical fragment's query touches (drives per-row cost).
    db_rows_per_fragment: int = 8
    #: Cross-tier hops per fragment generation (Figure 1's workflow).
    cross_tier_hops: int = 3

    # -- primitive times ---------------------------------------------------------

    def generation_time(self) -> float:
        """t_gen: cost of running one tagged block's body."""
        return self.costs.block_generation_cost(
            output_bytes=int(self.params.fragment_size),
            db_rows=self.db_rows_per_fragment,
            cross_tier_hops=self.cross_tier_hops,
        )

    def probe_time(self) -> float:
        """t_probe: cost of a directory hit (the block body is skipped)."""
        return self.costs.block_hit_cost()

    # -- per-request times ------------------------------------------------------------

    def request_time_no_cache(self) -> float:
        """T_NC: dispatch plus full generation of every fragment."""
        return (
            self.costs.request_dispatch_s
            + self.params.fragments_per_page * self.generation_time()
        )

    def request_time_cached(self, hit_ratio: float = None) -> float:
        """T_C at a hit ratio (defaults to the configured one)."""
        h = self.params.hit_ratio if hit_ratio is None else hit_ratio
        x = self.params.cacheability
        t_gen = self.generation_time()
        per_fragment = x * (
            h * self.probe_time() + (1.0 - h) * t_gen
        ) + (1.0 - x) * t_gen
        return (
            self.costs.request_dispatch_s
            + self.params.fragments_per_page * per_fragment
        )

    # -- derived metrics ---------------------------------------------------------------

    def speedup(self, hit_ratio: float = None) -> float:
        """T_NC / T_C: per-request origin-time improvement."""
        return self.request_time_no_cache() / self.request_time_cached(hit_ratio)

    def capacity_no_cache(self) -> float:
        """Single-server throughput ceiling without caching (req/s)."""
        return 1.0 / self.request_time_no_cache()

    def capacity_cached(self, hit_ratio: float = None) -> float:
        """Single-server throughput ceiling with the DPC (req/s)."""
        return 1.0 / self.request_time_cached(hit_ratio)

    def capacity_multiplier(self, hit_ratio: float = None) -> float:
        """How many no-cache servers one cached server replaces."""
        return self.capacity_cached(hit_ratio) / self.capacity_no_cache()

    # -- sweeps ------------------------------------------------------------------------

    def speedup_series(
        self, hit_ratios: Sequence[float]
    ) -> List[Tuple[float, float, float]]:
        """(h, T_C seconds, speedup) rows over a hit-ratio sweep."""
        return [
            (h, self.request_time_cached(h), self.speedup(h))
            for h in hit_ratios
        ]

    def asymptotic_speedup(self) -> float:
        """The h -> 1 limit: bounded by the non-cacheable work.

        With X < 1 the speedup saturates at
        ``(d + k·t_gen) / (d + k·(X·t_probe + (1-X)·t_gen))`` — Amdahl's
        law with the non-cacheable fragments as the serial fraction.
        """
        return self.speedup(1.0)
