"""Tests for KMP matching and the tag scanner."""

import pytest

from repro.core.scanner import (
    TagScanner,
    failure_function,
    kmp_find,
    kmp_find_all,
)
from repro.errors import ConfigurationError


class TestFailureFunction:
    def test_no_repetition(self):
        assert failure_function("abcd") == [0, 0, 0, 0]

    def test_classic_example(self):
        assert failure_function("abab") == [0, 0, 1, 2]

    def test_aaaa(self):
        assert failure_function("aaaa") == [0, 1, 2, 3]

    def test_mixed(self):
        assert failure_function("abacabab") == [0, 0, 1, 0, 1, 2, 3, 2]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            failure_function("")


class TestKmpFindAll:
    def test_basic(self):
        assert kmp_find_all("abcabcabc", "abc") == [0, 3, 6]

    def test_overlapping_matches(self):
        assert kmp_find_all("aaaa", "aa") == [0, 1, 2]

    def test_no_match(self):
        assert kmp_find_all("abcdef", "xyz") == []

    def test_pattern_longer_than_text(self):
        assert kmp_find_all("ab", "abc") == []

    def test_match_at_end(self):
        assert kmp_find_all("xxab", "ab") == [2]

    def test_agrees_with_str_find(self):
        text = "the template sentinel <~ appears <~ twice and a half <"
        assert kmp_find_all(text, "<~") == [22, 33]

    def test_empty_text(self):
        assert kmp_find_all("", "ab") == []


class TestKmpFind:
    def test_first_match(self):
        assert kmp_find("abcabc", "abc") == 0

    def test_with_start(self):
        assert kmp_find("abcabc", "abc", start=1) == 3

    def test_not_found(self):
        assert kmp_find("abc", "zz") == -1

    def test_matches_str_find_semantics(self):
        text = "xyxyxyzxy"
        for pattern in ("xy", "xyz", "zz"):
            for start in range(len(text)):
                assert kmp_find(text, pattern, start) == text.find(pattern, start)


class TestTagScanner:
    def test_positions(self):
        scanner = TagScanner("<~")
        assert scanner.positions("a<~b<~c") == [1, 4]

    def test_bytes_scanned_accumulates(self):
        scanner = TagScanner("<~")
        scanner.positions("x" * 100)
        scanner.positions("y" * 50)
        assert scanner.bytes_scanned == 150

    def test_reset_counters(self):
        scanner = TagScanner("<~")
        scanner.positions("abc")
        scanner.reset_counters()
        assert scanner.bytes_scanned == 0

    def test_empty_sentinel_rejected(self):
        with pytest.raises(ConfigurationError):
            TagScanner("")

    def test_single_pass_guarantee(self):
        """Scanned bytes equal text length exactly — linear, one pass."""
        scanner = TagScanner("<~")
        text = "<~" * 500
        scanner.positions(text)
        assert scanner.bytes_scanned == len(text)
