"""Fault injection and resilience for the BEM/DPC deployment.

The paper's §4.3.3 protocol is safe under failure only in the fail-stop
sense: a desynchronized GET raises instead of serving a wrong page, and
the documented remedy is to throw the whole cache away.  This subpackage
supplies what a production deployment needs around that core:

* :mod:`~repro.faults.injectors` — clock-scheduled faults (DPC crash,
  link partition/degradation, seeded message loss, directory corruption);
* :mod:`~repro.faults.recovery` — the BEM↔DPC resync protocol (epoch
  detection, targeted invalidation, anti-entropy sweep, quarantine of
  undelivered SETs);
* :mod:`~repro.faults.retry` — seeded exponential-backoff retry on the
  virtual clock, with dead-letter accounting;
* :mod:`~repro.faults.degradation` — BEM bypass and stale-while-revalidate
  fallbacks with per-request cost accounting;
* :mod:`~repro.faults.chaos` — a chaos harness that runs the Figure 4
  testbed under a fault schedule and checks every page against the
  no-cache oracle.

The core modules stay fault-unaware: injectors reach in from the outside,
and recovery acts through the directory's public audit/rebuild API.
"""

from __future__ import annotations

from .chaos import (
    ChaosBucket,
    ChaosConfig,
    ChaosHarness,
    ChaosResult,
    RecoverySummary,
    run_chaos,
    summarize_recovery,
)
from .degradation import DegradationStats, GracefulDegrader
from .injectors import (
    CORRUPTION_MODES,
    ChannelDegradation,
    ChannelPartition,
    DirectoryCorruption,
    DpcCrash,
    FaultContext,
    FaultInjector,
    FaultSchedule,
    MessageLoss,
)
from .recovery import RecoveryEvent, RecoveryStats, ResyncProtocol
from .retry import DeliveryStats, ReliableDelivery, RetryPolicy

__all__ = [
    "CORRUPTION_MODES",
    "ChannelDegradation",
    "ChannelPartition",
    "ChaosBucket",
    "ChaosConfig",
    "ChaosHarness",
    "ChaosResult",
    "DegradationStats",
    "DeliveryStats",
    "DirectoryCorruption",
    "DpcCrash",
    "FaultContext",
    "FaultInjector",
    "FaultSchedule",
    "GracefulDegrader",
    "MessageLoss",
    "RecoveryEvent",
    "RecoveryStats",
    "RecoverySummary",
    "ReliableDelivery",
    "ResyncProtocol",
    "RetryPolicy",
    "run_chaos",
    "summarize_recovery",
]
