"""Tests for the CMS content repository."""

import pytest

from repro.cms.repository import CONTENT_TABLE, ContentRepository
from repro.database import Database
from repro.errors import ContentNotFound


@pytest.fixture
def repo():
    repository = ContentRepository(Database())
    repository.put("a1", "article", "Fiction", "Title A", "Body A", rank=1)
    repository.put("a2", "article", "Fiction", "Title B", "Body B", rank=0)
    repository.put("p1", "promo", "Fiction", "Sale", "Half off", rank=0)
    repository.put("s1", "article", "Science", "Quarks", "Body", rank=0)
    return repository


class TestCrud:
    def test_get(self, repo):
        assert repo.get("a1")["title"] == "Title A"

    def test_get_missing(self, repo):
        with pytest.raises(ContentNotFound):
            repo.get("zzz")

    def test_put_replaces(self, repo):
        repo.put("a1", "article", "Fiction", "New Title", "New Body", rank=9)
        item = repo.get("a1")
        assert item["title"] == "New Title"
        assert item["rank"] == 9

    def test_touch_updates_body(self, repo):
        repo.touch("a1", "fresh body", updated_at=12.5)
        item = repo.get("a1")
        assert item["body"] == "fresh body"
        assert item["updated_at"] == 12.5

    def test_touch_missing(self, repo):
        with pytest.raises(ContentNotFound):
            repo.touch("zzz", "x", 0.0)

    def test_remove(self, repo):
        repo.remove("a1")
        with pytest.raises(ContentNotFound):
            repo.get("a1")
        with pytest.raises(ContentNotFound):
            repo.remove("a1")

    def test_len(self, repo):
        assert len(repo) == 4


class TestQueries:
    def test_by_category_ordered_by_rank(self, repo):
        items = repo.by_category("Fiction", kind="article")
        assert [item["content_id"] for item in items] == ["a2", "a1"]

    def test_by_category_kind_filter(self, repo):
        promos = repo.by_category("Fiction", kind="promo")
        assert [item["content_id"] for item in promos] == ["p1"]

    def test_by_category_limit(self, repo):
        assert len(repo.by_category("Fiction", limit=2)) == 2

    def test_by_category_empty(self, repo):
        assert repo.by_category("Nothing") == []

    def test_categories(self, repo):
        assert repo.categories() == ["Fiction", "Science"]


class TestSharedDatabase:
    def test_two_repositories_share_one_table(self):
        db = Database()
        first = ContentRepository(db)
        second = ContentRepository(db)
        first.put("x", "article", "C", "T", "B")
        assert second.get("x")["title"] == "T"
        assert db.has_table(CONTENT_TABLE)

    def test_updates_flow_through_triggers(self):
        db = Database()
        repo = ContentRepository(db)
        events = []
        db.bus.subscribe(events.append, table=CONTENT_TABLE)
        repo.put("x", "article", "C", "T", "B")
        repo.touch("x", "new", 1.0)
        assert [event.operation for event in events] == ["insert", "update"]
