"""The BEM's cache directory and freeList (§4.3.3).

The cache directory "keeps track of the fragments in the DPC and their
respective metadata" with the structure::

    fragmentID   unique fragment identifier (name+parameterList)
    dpcKey       unique fragment identifier within the DPC
    isValid      flag to indicate validity of fragment
    ttl          time-to-live value for fragment

Slot lifecycle, exactly as the paper describes it:

* A new fragment takes a dpcKey from the **freeList** when its entry is
  inserted.
* Invalidation (TTL expiry, data-source update, or replacement) only sets
  ``isValid = FALSE`` and pushes the dpcKey back onto the freeList — "no
  action is taken by the DPC"; the slot's stale bytes simply remain until
  the key is reassigned and a SET overwrites them.
* Because the freeList holds every key not backing a valid entry, its
  capacity need only equal the maximum cache size.

The invariant that a dpcKey is *either* on the freeList *or* backing
exactly one valid entry (never both, never neither) is enforced here and
property-tested.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..errors import ConfigurationError, DirectoryFullError
from .fragments import FragmentID, FragmentMetadata
from .replacement import LruPolicy, ReplacementPolicy


class DirectoryEntry:
    """One cache-directory row.

    ``__slots__``-based: a warm directory holds thousands of rows that are
    probed on every request, and slot storage keeps each row's memory and
    attribute reads dict-free.  Rows stay mutable — lookup updates
    ``last_access``/``hits``, invalidation flips ``is_valid`` — exactly as
    before.
    """

    __slots__ = (
        "fragment_id",
        "dpc_key",
        "is_valid",
        "ttl",
        "created_at",
        "last_access",
        "hits",
        "size_bytes",
        "dependencies",
        "epoch",
    )

    def __init__(
        self,
        fragment_id: FragmentID,
        dpc_key: int,
        is_valid: bool = True,
        ttl: Optional[float] = None,
        created_at: float = 0.0,
        last_access: float = 0.0,
        hits: int = 0,
        size_bytes: int = 0,
        dependencies: tuple = (),
        epoch: int = 0,
    ) -> None:
        self.fragment_id = fragment_id
        self.dpc_key = dpc_key
        self.is_valid = is_valid
        self.ttl = ttl
        self.created_at = created_at
        self.last_access = last_access
        self.hits = hits
        self.size_bytes = size_bytes
        self.dependencies = dependencies
        #: DPC generation this entry's SET was issued against.  Entries whose
        #: epoch predates the proxy's current epoch reference slots that were
        #: wiped by a restart; the resync protocol invalidates them wholesale.
        self.epoch = epoch

    def fresh(self, now: float) -> bool:
        """Valid and within TTL."""
        if not self.is_valid:
            return False
        if self.ttl is None:
            return True
        return now < self.created_at + self.ttl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DirectoryEntry(%r, dpc_key=%d, is_valid=%r)" % (
            self.fragment_id,
            self.dpc_key,
            self.is_valid,
        )


class FreeList:
    """FIFO queue of reusable dpcKeys.

    FIFO order maximizes the time before a recycled key's stale DPC slot is
    overwritten, which is the most adversarial schedule for the safety
    property that stale slots are never *served* — good for testing, and
    faithful to the paper's "inserted at the end of the freeList".
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("freeList capacity must be positive")
        self.capacity = capacity
        self._keys: Deque[int] = deque(range(capacity))
        self._members = set(range(capacity))

    def pop(self) -> int:
        """Take the next reusable dpcKey (FIFO)."""
        if not self._keys:
            raise DirectoryFullError("freeList is empty")
        key = self._keys.popleft()
        self._members.discard(key)
        return key

    def push(self, key: int) -> None:
        """Return a dpcKey for reuse (appended at the end, §4.3.3)."""
        if not 0 <= key < self.capacity:
            raise ConfigurationError(
                "dpcKey %d out of range for capacity %d" % (key, self.capacity)
            )
        if key in self._members:
            raise ConfigurationError("dpcKey %d is already on the freeList" % key)
        self._keys.append(key)
        self._members.add(key)

    def __contains__(self, key: int) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class DirectoryStats:
    """Counters exposed for experiments."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: int = 0
    ttl_expirations: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over all lookups."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class RepairReport:
    """What one :meth:`CacheDirectory.audit_and_repair` pass fixed."""

    stale_mappings: int = 0     # valid-by-key rows pointing at invalid entries
    orphaned_records: int = 0   # directory rows with no valid slot claim
    keys_reclaimed: int = 0     # dpcKeys that were neither free nor valid

    @property
    def anomalies(self) -> int:
        """Total violations repaired; 0 means the directory was healthy."""
        return self.stale_mappings + self.orphaned_records + self.keys_reclaimed


class CacheDirectory:
    """fragmentID -> :class:`DirectoryEntry`, plus the freeList.

    ``capacity`` is both the number of DPC slots and the directory-size
    threshold at which the replacement manager starts evicting.
    """

    def __init__(
        self,
        capacity: int,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("directory capacity must be positive")
        self.capacity = capacity
        self.policy = policy if policy is not None else LruPolicy()
        self.free_list = FreeList(capacity)
        self._entries: Dict[str, DirectoryEntry] = {}
        self._valid_by_key: Dict[int, DirectoryEntry] = {}
        self.stats = DirectoryStats()
        #: Duck-typed :class:`repro.insight.InsightLayer` (anything exposing
        #: ``record_access``/``record_removal``/``record_insert``); ``None``
        #: keeps the pre-insight behavior at one attribute check per lookup.
        self.insight = None

    def attach_insight(self, insight) -> None:
        """Attach a lifecycle observer (miss-cause ledger + profiler).

        ``insight`` is duck-typed so the core stays import-independent of
        :mod:`repro.insight`.  The replacement policy is wired too, so
        eviction victims report their diagnostics through the same layer.
        """
        self.insight = insight
        self.policy.insight = insight

    # -- lookup -------------------------------------------------------------------

    def lookup(self, fragment_id: FragmentID, now: float) -> Optional[DirectoryEntry]:
        """Run-time directory probe.

        Returns the entry on a *fresh* hit (recording the access), ``None``
        on a miss.  A TTL-expired entry is invalidated on the spot — lazy
        expiry, so no background sweeper is required for correctness (one
        exists anyway for memory hygiene; see :meth:`expire_stale`).
        """
        self.stats.lookups += 1
        canonical = fragment_id.canonical()
        entry = self._entries.get(canonical)
        if entry is None:
            self.stats.misses += 1
            if self.insight is not None:
                self.insight.record_access(canonical, hit=False)
            return None
        if entry.is_valid and not entry.fresh(now):
            self.stats.ttl_expirations += 1
            self._invalidate_entry(entry, reason="ttl_expired")
        if not entry.is_valid:
            self.stats.misses += 1
            if self.insight is not None:
                self.insight.record_access(canonical, hit=False)
            return None
        entry.last_access = now
        entry.hits += 1
        self.stats.hits += 1
        if self.insight is not None:
            self.insight.record_access(canonical, hit=True)
        return entry

    def peek(self, fragment_id: FragmentID) -> Optional[DirectoryEntry]:
        """Read an entry without touching access stats or TTL state."""
        return self._entries.get(fragment_id.canonical())

    # -- insertion -----------------------------------------------------------------

    def insert(
        self,
        fragment_id: FragmentID,
        metadata: FragmentMetadata,
        size_bytes: int,
        now: float,
        epoch: int = 0,
    ) -> DirectoryEntry:
        """Create the entry for a just-generated fragment (miss case 1).

        Allocates a dpcKey from the freeList, evicting a victim first when
        the cache is full.  Any stale (invalid) entry for the same
        fragmentID is replaced.
        """
        canonical = fragment_id.canonical()
        old = self._entries.get(canonical)
        if old is not None and old.is_valid:
            # Re-inserting over a valid entry means the caller decided to
            # regenerate (e.g. forced refresh): recycle the old key first.
            self._invalidate_entry(old, reason="refreshed")
        if len(self.free_list) == 0:
            self._evict_one(now)
        key = self.free_list.pop()
        entry = DirectoryEntry(
            fragment_id=fragment_id,
            dpc_key=key,
            is_valid=True,
            ttl=metadata.ttl,
            created_at=now,
            last_access=now,
            size_bytes=size_bytes,
            dependencies=tuple(metadata.dependencies),
            epoch=epoch,
        )
        self._entries[canonical] = entry
        self._valid_by_key[key] = entry
        self.stats.insertions += 1
        if self.insight is not None:
            self.insight.record_insert(canonical)
        return entry

    def _evict_one(self, now: float) -> None:
        victim = self.policy.select_victim(self._valid_by_key.values(), now)
        if victim is None:
            raise DirectoryFullError(
                "directory is full and no entry is eligible for eviction"
            )
        self.stats.evictions += 1
        self.policy.record_victim(victim, now)
        self._invalidate_entry(victim, reason="evicted_capacity")

    # -- invalidation ----------------------------------------------------------------

    def invalidate(
        self, fragment_id: FragmentID, reason: str = "data_invalidated"
    ) -> bool:
        """Invalidate one fragment by identity; True if it was valid.

        ``reason`` feeds miss-cause attribution when an insight layer is
        attached (data-source invalidation by default; recovery passes
        ``fault_quarantine``).
        """
        entry = self._entries.get(fragment_id.canonical())
        if entry is None or not entry.is_valid:
            return False
        self.stats.invalidations += 1
        self._invalidate_entry(entry, reason=reason)
        return True

    def invalidate_where(self, predicate, reason: str = "data_invalidated") -> int:
        """Invalidate every valid entry matching ``predicate(entry)``."""
        victims = [
            entry for entry in self._valid_by_key.values() if predicate(entry)
        ]
        for entry in victims:
            self.stats.invalidations += 1
            self._invalidate_entry(entry, reason=reason)
        return len(victims)

    def invalidate_all(self, reason: str = "data_invalidated") -> int:
        """Invalidate every valid entry; returns the count."""
        return self.invalidate_where(lambda entry: True, reason=reason)

    def expire_stale(self, now: float) -> int:
        """Background sweep: invalidate every TTL-expired entry."""
        expired = [
            entry
            for entry in self._valid_by_key.values()
            if not entry.fresh(now)
        ]
        for entry in expired:
            self.stats.ttl_expirations += 1
            self._invalidate_entry(entry, reason="ttl_expired")
        return len(expired)

    def _invalidate_entry(
        self, entry: DirectoryEntry, reason: str = "data_invalidated"
    ) -> None:
        """§4.3.3: flip isValid and push the dpcKey onto the freeList."""
        if not entry.is_valid:
            return
        entry.is_valid = False
        del self._valid_by_key[entry.dpc_key]
        self.free_list.push(entry.dpc_key)
        # Drop the stale record entirely: the paper keeps it only until the
        # fragment is re-requested, and removing it bounds directory memory.
        canonical = entry.fragment_id.canonical()
        if self._entries.get(canonical) is entry:
            del self._entries[canonical]
        if self.insight is not None:
            self.insight.record_removal(canonical, reason)

    # -- repair (recovery API; see repro.faults.recovery) --------------------------

    def rebuild_free_list(self) -> int:
        """Reconstruct the freeList from first principles.

        The freeList must hold exactly the dpcKeys not backing a valid
        entry.  A desynchronized deployment (crashed DPC, corrupted
        bookkeeping) can leak keys — neither free nor valid — which silently
        shrinks the cache until :class:`~repro.errors.DirectoryFullError`.
        This rebuilds the list in ascending key order and returns the number
        of keys reclaimed (keys that were leaked before the rebuild).
        """
        fresh = FreeList(self.capacity)
        fresh._keys = deque(
            key for key in range(self.capacity) if key not in self._valid_by_key
        )
        fresh._members = set(fresh._keys)
        reclaimed = sum(
            1 for key in fresh._members if key not in self.free_list._members
        )
        self.free_list = fresh
        return reclaimed

    def audit_and_repair(self) -> "RepairReport":
        """Detect and repair slot-discipline violations (invariant #2).

        Handles the desync modes the chaos harness can inject: entries whose
        ``isValid`` flag was flipped without the freeList bookkeeping,
        records whose valid-by-key mapping no longer points back at them,
        and dpcKeys leaked off the freeList.  After the repair the
        slot-discipline invariant is re-checked; a surviving violation is a
        bug, not a fault, and raises :class:`AssertionError`.
        """
        stale_mappings = 0
        for key, entry in list(self._valid_by_key.items()):
            if not entry.is_valid or entry.dpc_key != key:
                del self._valid_by_key[key]
                stale_mappings += 1
        orphaned_records = 0
        for canonical, entry in list(self._entries.items()):
            if entry.is_valid and self._valid_by_key.get(entry.dpc_key) is entry:
                continue  # healthy row
            entry.is_valid = False
            del self._entries[canonical]
            orphaned_records += 1
            if self.insight is not None:
                # Repair dropped bookkeeping that could not be trusted; the
                # next miss on the fragment is recovery's doing.
                self.insight.record_removal(canonical, "fault_quarantine")
        keys_reclaimed = self.rebuild_free_list()
        self.check_invariants()
        return RepairReport(
            stale_mappings=stale_mappings,
            orphaned_records=orphaned_records,
            keys_reclaimed=keys_reclaimed,
        )

    # -- introspection -------------------------------------------------------------

    def valid_entries(self) -> List[DirectoryEntry]:
        """All currently valid directory entries."""
        return list(self._valid_by_key.values())

    def valid_count(self) -> int:
        """Number of valid entries (resident fragments)."""
        return len(self._valid_by_key)

    def entry_for_key(self, dpc_key: int) -> Optional[DirectoryEntry]:
        """The valid entry backing a dpcKey, or None."""
        return self._valid_by_key.get(dpc_key)

    def check_invariants(self) -> None:
        """Assert the slot-discipline invariant (used by property tests)."""
        free = {key for key in range(self.capacity) if key in self.free_list}
        valid = set(self._valid_by_key)
        overlap = free & valid
        if overlap:
            raise AssertionError("keys both free and valid: %s" % sorted(overlap))
        missing = set(range(self.capacity)) - free - valid
        if missing:
            raise AssertionError("keys neither free nor valid: %s" % sorted(missing))
        for key, entry in self._valid_by_key.items():
            if entry.dpc_key != key or not entry.is_valid:
                raise AssertionError("corrupt valid-by-key mapping at %d" % key)

    def __len__(self) -> int:
        return len(self._entries)
