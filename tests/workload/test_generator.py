"""Tests for the workload generator."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.generator import (
    PageSpec,
    WorkloadGenerator,
    synthetic_pages,
)
from repro.workload.users import UserPopulation


class TestPageSpec:
    def test_create_sorts_params(self):
        spec = PageSpec.create("/x", {"b": "2", "a": "1"})
        assert spec.params == (("a", "1"), ("b", "2"))

    def test_to_request(self):
        from repro.workload.users import Visitor

        spec = PageSpec.create("/catalog.jsp", {"categoryID": "Fiction"})
        request = spec.to_request(Visitor(user_id="bob", session_id="s1"))
        assert request.url == "/catalog.jsp?categoryID=Fiction"
        assert request.user_id == "bob"

    def test_synthetic_pages(self):
        pages = synthetic_pages(3)
        assert [p.params[0][1] for p in pages] == ["0", "1", "2"]


class TestWorkloadGenerator:
    def test_reproducible_streams(self):
        generator = WorkloadGenerator(pages=synthetic_pages(5), seed=9)
        first = [(t.at, t.request.url) for t in generator.stream(50)]
        second = [(t.at, t.request.url) for t in generator.stream(50)]
        assert first == second

    def test_count_respected(self):
        generator = WorkloadGenerator(pages=synthetic_pages(5))
        assert len(generator.materialize(123)) == 123

    def test_arrival_times_monotone(self):
        generator = WorkloadGenerator(pages=synthetic_pages(5))
        times = [t.at for t in generator.stream(100)]
        assert times == sorted(times)
        assert times[0] > 0

    def test_zipf_page_skew(self):
        generator = WorkloadGenerator(pages=synthetic_pages(10), page_alpha=1.0,
                                      seed=3)
        counts = generator.empirical_page_counts(5000)
        hottest = counts["/page.jsp?pageID=0"]
        coldest = counts.get("/page.jsp?pageID=9", 0)
        assert hottest > coldest * 3

    def test_uniform_with_alpha_zero(self):
        generator = WorkloadGenerator(pages=synthetic_pages(4), page_alpha=0.0,
                                      seed=3)
        counts = generator.empirical_page_counts(8000)
        for count in counts.values():
            assert count == pytest.approx(2000, rel=0.15)

    def test_population_identities_flow_through(self):
        population = UserPopulation(["bob", "carol"], registered_fraction=1.0)
        generator = WorkloadGenerator(
            pages=synthetic_pages(2), population=population, seed=1
        )
        users = {t.request.user_id for t in generator.stream(100)}
        assert users <= {"bob", "carol"}
        assert users  # non-empty

    def test_requires_pages(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(pages=[])

    def test_page_rank_recorded(self):
        generator = WorkloadGenerator(pages=synthetic_pages(5))
        for timed in generator.stream(20):
            assert 1 <= timed.page_rank <= 5
