"""Tests for the Zipf distribution."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfChooser, ZipfDistribution, zipf_over


class TestZipfDistribution:
    def test_pmf_sums_to_one(self):
        zipf = ZipfDistribution(10)
        assert sum(zipf.pmf(rank) for rank in range(1, 11)) == pytest.approx(1.0)

    def test_rank_one_most_popular(self):
        zipf = ZipfDistribution(10)
        assert zipf.pmf(1) > zipf.pmf(2) > zipf.pmf(10)

    def test_alpha_zero_is_uniform(self):
        zipf = ZipfDistribution(4, alpha=0.0)
        for rank in range(1, 5):
            assert zipf.pmf(rank) == pytest.approx(0.25)

    def test_classic_ratio(self):
        """With alpha=1, P(1)/P(2) == 2."""
        zipf = ZipfDistribution(100, alpha=1.0)
        assert zipf.pmf(1) / zipf.pmf(2) == pytest.approx(2.0)

    def test_cdf_endpoints(self):
        zipf = ZipfDistribution(5)
        assert zipf.cdf(5) == pytest.approx(1.0)
        assert zipf.cdf(1) == pytest.approx(zipf.pmf(1))

    def test_out_of_range_rank(self):
        zipf = ZipfDistribution(5)
        with pytest.raises(ConfigurationError):
            zipf.pmf(0)
        with pytest.raises(ConfigurationError):
            zipf.pmf(6)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(0)
        with pytest.raises(ConfigurationError):
            ZipfDistribution(5, alpha=-1)

    def test_sampling_matches_pmf(self):
        zipf = ZipfDistribution(5, alpha=1.0)
        rng = random.Random(7)
        counts = [0] * 5
        n = 20_000
        for _ in range(n):
            counts[zipf.sample(rng) - 1] += 1
        for rank in range(1, 6):
            assert counts[rank - 1] / n == pytest.approx(zipf.pmf(rank), abs=0.02)

    def test_sample_many(self):
        zipf = ZipfDistribution(3)
        samples = zipf.sample_many(random.Random(1), 50)
        assert len(samples) == 50
        assert all(1 <= s <= 3 for s in samples)

    def test_expected_counts(self):
        zipf = ZipfDistribution(2, alpha=0.0)
        assert zipf.expected_counts(100) == [pytest.approx(50.0)] * 2


class TestZipfChooser:
    def test_choice_returns_items(self):
        chooser = zipf_over(["a", "b", "c"])
        assert chooser.choose(random.Random(1)) in ("a", "b", "c")

    def test_probability_of(self):
        chooser = ZipfChooser(["hot", "cold"], alpha=1.0)
        assert chooser.probability_of("hot") > chooser.probability_of("cold")

    def test_empty_items_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfChooser([])
