"""Tests for row storage, indexes maintenance, and change events."""

import pytest

from repro.database.schema import schema
from repro.database.table import Table
from repro.database.triggers import DELETE, INSERT, UPDATE, TriggerBus
from repro.errors import IntegrityError, SchemaError


@pytest.fixture
def table():
    return Table(
        schema(
            "products",
            [("pid", "str"), ("category", "str"), ("price", "float")],
        )
    )


def seed(table):
    table.insert({"pid": "a", "category": "books", "price": 10.0})
    table.insert({"pid": "b", "category": "books", "price": 20.0})
    table.insert({"pid": "c", "category": "toys", "price": 5.0})


class TestInsert:
    def test_insert_and_get(self, table):
        seed(table)
        assert table.get("a")["price"] == 10.0
        assert len(table) == 3

    def test_duplicate_pk_rejected(self, table):
        seed(table)
        with pytest.raises(IntegrityError):
            table.insert({"pid": "a", "category": "x", "price": 1.0})

    def test_returned_row_is_a_copy(self, table):
        seed(table)
        row = table.get("a")
        row["price"] = 999.0
        assert table.get("a")["price"] == 10.0


class TestUpdate:
    def test_update_by_key(self, table):
        seed(table)
        assert table.update({"price": 11.0}, key="a") == 1
        assert table.get("a")["price"] == 11.0

    def test_update_by_predicate(self, table):
        seed(table)
        count = table.update(
            {"price": 0.0}, where=lambda row: row["category"] == "books"
        )
        assert count == 2

    def test_noop_update_returns_zero(self, table):
        seed(table)
        assert table.update({"price": 10.0}, key="a") == 0

    def test_update_missing_key_is_zero(self, table):
        seed(table)
        assert table.update({"price": 1.0}, key="zzz") == 0

    def test_update_pk_forbidden(self, table):
        seed(table)
        with pytest.raises(SchemaError):
            table.update({"pid": "z"}, key="a")

    def test_update_validates_types(self, table):
        seed(table)
        with pytest.raises(SchemaError):
            table.update({"price": "free"}, key="a")


class TestDelete:
    def test_delete_by_key(self, table):
        seed(table)
        assert table.delete(key="a") == 1
        assert table.get("a") is None

    def test_delete_by_predicate(self, table):
        seed(table)
        assert table.delete(where=lambda row: row["category"] == "books") == 2
        assert len(table) == 1

    def test_delete_all(self, table):
        seed(table)
        assert table.delete() == 3
        assert len(table) == 0


class TestIndexes:
    def test_lookup_via_index(self, table):
        table.create_index("category")
        seed(table)
        rows = table.lookup("category", "books")
        assert {row["pid"] for row in rows} == {"a", "b"}

    def test_lookup_without_index_scans(self, table):
        seed(table)
        rows = table.lookup("category", "toys")
        assert [row["pid"] for row in rows] == ["c"]

    def test_index_created_after_rows_backfills(self, table):
        seed(table)
        index = table.create_index("category")
        assert len(index) == 3

    def test_index_follows_updates(self, table):
        table.create_index("category")
        seed(table)
        table.update({"category": "toys"}, key="a")
        assert {row["pid"] for row in table.lookup("category", "toys")} == {"a", "c"}
        assert {row["pid"] for row in table.lookup("category", "books")} == {"b"}

    def test_index_follows_deletes(self, table):
        table.create_index("category")
        seed(table)
        table.delete(key="c")
        assert table.lookup("category", "toys") == []


class TestChangeEvents:
    def test_insert_event(self):
        bus = TriggerBus()
        events = []
        bus.subscribe(events.append)
        table = Table(schema("t", [("k", "int"), ("v", "int")]), bus=bus)
        table.insert({"k": 1, "v": 10})
        assert len(events) == 1
        assert events[0].operation == INSERT
        assert events[0].key == 1
        assert events[0].row == {"k": 1, "v": 10}

    def test_update_event_carries_images_and_columns(self):
        bus = TriggerBus()
        events = []
        bus.subscribe(events.append)
        table = Table(schema("t", [("k", "int"), ("v", "int")]), bus=bus)
        table.insert({"k": 1, "v": 10})
        table.update({"v": 20}, key=1)
        event = events[-1]
        assert event.operation == UPDATE
        assert event.old_row["v"] == 10
        assert event.row["v"] == 20
        assert event.changed_columns == ("v",)

    def test_noop_update_emits_nothing(self):
        bus = TriggerBus()
        events = []
        bus.subscribe(events.append)
        table = Table(schema("t", [("k", "int"), ("v", "int")]), bus=bus)
        table.insert({"k": 1, "v": 10})
        table.update({"v": 10}, key=1)
        assert len(events) == 1  # just the insert

    def test_delete_event(self):
        bus = TriggerBus()
        events = []
        bus.subscribe(events.append)
        table = Table(schema("t", [("k", "int"), ("v", "int")]), bus=bus)
        table.insert({"k": 1, "v": 10})
        table.delete(key=1)
        assert events[-1].operation == DELETE
        assert events[-1].old_row == {"k": 1, "v": 10}


class TestCounters:
    def test_scan_counts_all_rows_examined(self, table):
        seed(table)
        table.reset_counters()
        list(table.scan(lambda row: row["category"] == "toys"))
        assert table.rows_read == 3

    def test_reset_counters(self, table):
        seed(table)
        table.reset_counters()
        assert table.rows_read == 0
        assert table.rows_written == 0
