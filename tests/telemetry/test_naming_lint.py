"""The dotted naming scheme: validity, sync, coverage, and source lint."""

import pathlib

import pytest

from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.database import Database
from repro.errors import ConfigurationError
from repro.faults.recovery import ResyncProtocol
from repro.harness.monitoring import take_snapshot
from repro.network import Channel, Firewall, Sniffer
from repro.network.clock import SimulatedClock
from repro.overload import CircuitBreaker, DropLedger
from repro.telemetry import Tracer
from repro.telemetry.naming import (
    METRIC_NAMES,
    _DROP_REASONS,
    _MISS_CAUSES,
    valid_metric_name,
    validate_metric_name,
)

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


class TestScheme:
    def test_every_canonical_name_is_valid(self):
        for name in METRIC_NAMES:
            assert valid_metric_name(name), name

    def test_no_duplicates(self):
        assert len(METRIC_NAMES) == len(set(METRIC_NAMES))

    def test_validate_raises_with_the_offending_name(self):
        with pytest.raises(ConfigurationError, match="UpperCase"):
            validate_metric_name("UpperCase.metric")

    @pytest.mark.parametrize("name", [
        "bem.fragment_hits", "overload.drops.queue_full", "a.b_c.d0",
    ])
    def test_accepts_dotted_lowercase(self, name):
        assert valid_metric_name(name)

    @pytest.mark.parametrize("name", [
        "nodots", "", "has space.x", "Trailing.", "double..dot", "0start.x",
    ])
    def test_rejects_malformed(self, name):
        assert not valid_metric_name(name)


class TestSync:
    def test_drop_reasons_stay_in_sync_with_overload(self):
        from repro.overload.accounting import DROP_REASONS

        assert _DROP_REASONS == tuple(DROP_REASONS)

    def test_miss_causes_stay_in_sync_with_insight(self):
        from repro.insight.ledger import MISS_CAUSES

        assert _MISS_CAUSES == tuple(MISS_CAUSES)


class TestLiveCoverage:
    def test_full_snapshot_names_are_canonical(self):
        """Every name a fully-populated snapshot emits is in METRIC_NAMES."""
        from repro.insight import InsightLayer, SloEngine, SloObjective

        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=64, clock=clock)
        dpc = DynamicProxyCache(capacity=64)
        snapshot = take_snapshot(
            bem=bem,
            dpc=dpc,
            firewall=Firewall(),
            sniffer=Sniffer(),
            recovery=ResyncProtocol(bem, dpc),
            overload=DropLedger(),
            channel=Channel("origin", endpoint_a="dpc", endpoint_b="appserver"),
            db=Database(),
            breaker=CircuitBreaker(),
            tracer=Tracer(clock),
            insight=InsightLayer(),
            slo=SloEngine([SloObjective(name="slo.demo", metric="demo.metric",
                                        comparator="<=", threshold=1.0)]),
        )
        names = snapshot.names()
        unknown = [name for name in names if name not in METRIC_NAMES]
        assert unknown == [], "snapshot emits non-canonical names: %s" % unknown
        # Conditional rows aside, coverage should be nearly complete.
        missing = [name for name in METRIC_NAMES if name not in names]
        assert missing == ["dpc.byte_savings_ratio"], missing


class TestSourceLint:
    def source_files(self):
        return sorted(SRC_ROOT.rglob("*.py"))

    def test_no_adhoc_snapshot_add_literals_in_src(self):
        """``snapshot.add("...")`` is the deprecated shim; src must not use it."""
        offenders = []
        for path in self.source_files():
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if "snapshot.add(" in line:
                    offenders.append("%s:%d" % (path.relative_to(SRC_ROOT), lineno))
        assert offenders == [], (
            "ad-hoc snapshot.add() literals in src (register a metric_rows() "
            "provider instead): %s" % offenders
        )

    def test_registry_record_is_confined_to_the_shim(self):
        """``.record(`` on a registry is the legacy escape hatch; only the
        telemetry package and the monitoring shim may call it."""
        allowed = {"telemetry", "harness"}
        offenders = []
        for path in self.source_files():
            if path.parent.name in allowed:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if "registry.record(" in line or "reg.record(" in line:
                    offenders.append("%s:%d" % (path.relative_to(SRC_ROOT), lineno))
        assert offenders == [], offenders
