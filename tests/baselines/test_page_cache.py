"""Tests for the page-level proxy cache baseline — including its flaws."""

import pytest

from repro.appserver import HttpRequest, HttpResponse
from repro.baselines.page_cache import PageLevelCache
from repro.errors import ConfigurationError
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


@pytest.fixture
def cache(clock):
    return PageLevelCache(clock, capacity=4, ttl_s=60.0)


def static_origin(body="page"):
    def origin(request):
        return HttpResponse(body=body)

    return origin


class TestMechanics:
    def test_miss_then_hit(self, cache):
        request = HttpRequest("/x")
        _, from_cache = cache.serve(request, static_origin())
        assert not from_cache
        _, from_cache = cache.serve(request, static_origin())
        assert from_cache
        assert cache.stats.hit_ratio == 0.5

    def test_ttl_expiry(self, cache, clock):
        request = HttpRequest("/x")
        cache.serve(request, static_origin())
        clock.advance(61.0)
        _, from_cache = cache.serve(request, static_origin())
        assert not from_cache
        assert cache.stats.expirations == 1

    def test_lru_eviction(self, cache):
        for i in range(5):
            cache.serve(HttpRequest("/p%d" % i), static_origin())
        assert len(cache) == 4
        assert cache.stats.evictions == 1
        # /p0 was evicted; /p4 still cached.
        _, hit = cache.serve(HttpRequest("/p0"), static_origin())
        assert not hit
        _, hit = cache.serve(HttpRequest("/p4"), static_origin())
        assert hit

    def test_origin_bytes_only_on_miss(self, cache):
        request = HttpRequest("/x")
        cache.serve(request, static_origin("abc"))
        cache.serve(request, static_origin("abc"))
        assert cache.stats.origin_bytes == 503  # one miss: 3 + 500 header
        assert cache.stats.served_bytes == 1006

    def test_invalidate_url(self, cache):
        cache.serve(HttpRequest("/x"), static_origin())
        assert cache.invalidate_url("/x")
        assert not cache.invalidate_url("/x")

    def test_invalidate_all(self, cache):
        cache.serve(HttpRequest("/a"), static_origin())
        cache.serve(HttpRequest("/b"), static_origin())
        assert cache.invalidate_all() == 2
        assert len(cache) == 0

    def test_invalid_config(self, clock):
        with pytest.raises(ConfigurationError):
            PageLevelCache(clock, capacity=0)
        with pytest.raises(ConfigurationError):
            PageLevelCache(clock, ttl_s=0)


class TestPaperFlaws:
    def test_bob_then_alice_gets_bobs_page(self):
        """§3.2.1's central correctness failure, reproduced exactly."""
        clock = SimulatedClock()
        server = books.build_server(clock=clock, cost_model=FREE)
        cache = PageLevelCache(clock, ttl_s=300.0)

        bob = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                          user_id="user000", session_id="bob")
        alice = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                            session_id="alice")

        cache.serve(bob, server.handle)            # Bob populates the cache
        served, from_cache = cache.serve(alice, server.handle)
        assert from_cache
        assert "Hello, User 000" in served.body    # Alice sees Bob's greeting!
        oracle = server.render_reference_page(alice)
        assert served.body != oracle               # wrong page served

    def test_personalization_destroys_reuse(self):
        """Per-user uniqueness -> low hit ratio when identity varies."""
        clock = SimulatedClock()
        server = books.build_server(clock=clock, cost_model=FREE)
        correct_cache = {}

        # With correct behaviour (cache key would need user identity),
        # 10 users x same URL = 10 distinct pages: zero reuse available
        # for the URL-keyed cache to exploit *safely*.
        pages = set()
        for i in range(10):
            request = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                                  user_id="user%03d" % i, session_id="s%d" % i)
            pages.add(server.handle(request).body)
        assert len(pages) == 10
