#!/usr/bin/env python
"""BooksOnline: the paper's Bob/Alice correctness story, played out.

Serves the same URL to a registered user (Bob) and an anonymous visitor
(Alice) through three caching systems:

* a page-level proxy cache -> Alice receives Bob's personalized page;
* an ESI-style assembler   -> same failure, frozen first-user template;
* the DPC                  -> everyone gets exactly their own page, while
  shared fragments (navbar, listings, promos) are still served from cache.

Run:  python examples/books_online.py
"""

from repro.appserver import HttpRequest
from repro.baselines import EsiAssembler, PageLevelCache
from repro.core import BackEndMonitor, DynamicProxyCache
from repro.network import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


def bob_and_alice():
    bob = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                      user_id="user000", session_id="sess-bob")
    alice = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="sess-alice")
    return bob, alice


def show(title, served, oracle):
    correct = served == oracle
    greeting = "Hello, User 000" in served
    print("  %-28s -> %s%s" % (
        title,
        "CORRECT" if correct else "WRONG PAGE",
        " (contains Bob's greeting!)" if greeting and not correct else "",
    ))


def main():
    bob, alice = bob_and_alice()

    print("=== page-level proxy cache (URL-keyed) ===")
    clock = SimulatedClock()
    server = books.build_server(clock=clock, cost_model=FREE)
    cache = PageLevelCache(clock, ttl_s=600.0)
    cache.serve(bob, server.handle)
    served, from_cache = cache.serve(alice, server.handle)
    print("  Alice's request hit the cache:", from_cache)
    show("page served to Alice", served.body,
         server.render_reference_page(alice))

    print("\n=== ESI-style dynamic page assembly ===")
    server = books.build_server(cost_model=FREE)
    esi = EsiAssembler(server)
    esi.serve(bob)
    html, from_template = esi.serve(alice)
    print("  Alice assembled from Bob's template:", from_template)
    show("page served to Alice", html, server.render_reference_page(alice))

    print("\n=== Dynamic Proxy Cache (this paper) ===")
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=512, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=512)

    bob_page = dpc.process_response(server.handle(bob).body)
    alice_response = server.handle(alice)
    alice_page = dpc.process_response(alice_response.body)
    show("page served to Bob", bob_page.html, server.render_reference_page(bob))
    show("page served to Alice", alice_page.html,
         server.render_reference_page(alice))
    print("  Alice's request reused %d cached fragments "
          "(navbar, listing, promos)" % alice_response.meta["hits"])

    print("\n=== dynamic layouts ===")
    server.services.profiles.set_layout(
        "user001", ["main", "navigation", "greeting", "recommendations",
                    "promos"],
    )
    carol = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        user_id="user001", session_id="sess-carol")
    carol_page = dpc.process_response(server.handle(carol).body)
    assert carol_page.html == server.render_reference_page(carol)
    listing_first = carol_page.html.index('class="listing"') < \
        carol_page.html.index("<nav>")
    print("  Carol's profile puts the listing before the navbar:",
          listing_first)
    print("  ...and her page is still assembled correctly from the same "
          "fragment cache.")


if __name__ == "__main__":
    main()
