"""Cache replacement policies for the BEM's replacement manager.

"A cache replacement manager monitors the size of the cache directory and
selects fragments for replacement when the directory size exceeds some
specified threshold." (§4.3.3)

The paper does not prescribe a policy, so several classic ones are provided
and compared in an ablation bench (LRU wins under Zipf-skewed request
streams, as expected).  A policy sees the candidate directory entries and
picks a victim; the directory handles the mechanics of marking the victim
invalid and recycling its dpcKey.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .cache_directory import DirectoryEntry


class ReplacementPolicy:
    """Interface: choose one victim among valid entries."""

    name = "abstract"

    #: Duck-typed :class:`repro.insight.InsightLayer` (anything exposing
    #: ``record_eviction``); set by ``CacheDirectory.attach_insight`` so
    #: eviction victims carry per-policy diagnostics.  ``None`` disables.
    insight = None

    def select_victim(
        self, entries: Iterable["DirectoryEntry"], now: float
    ) -> Optional["DirectoryEntry"]:
        """Choose one entry to evict, or None if no candidates."""
        raise NotImplementedError

    def record_victim(self, victim: "DirectoryEntry", now: float) -> None:
        """Report one eviction's diagnostics to the attached insight layer.

        Called by the directory just before the victim is invalidated, so
        ``last_access``/``hits`` still reflect the entry's lived history.
        The idle time (now minus last access) is the number capacity
        diagnosis cares about: victims evicted while recently hot indicate
        a cache that is genuinely too small, victims idle for ages are free
        to drop.
        """
        if self.insight is not None:
            self.insight.record_eviction(
                self.name,
                max(0.0, now - victim.last_access),
                victim.hits,
                victim.size_bytes,
            )


class LruPolicy(ReplacementPolicy):
    """Evict the least-recently-used entry."""

    name = "lru"

    def select_victim(self, entries, now):
        """Pick the entry with the oldest last access."""
        return min(entries, key=lambda e: (e.last_access, e.dpc_key), default=None)


class LfuPolicy(ReplacementPolicy):
    """Evict the least-frequently-used entry (ties broken by recency)."""

    name = "lfu"

    def select_victim(self, entries, now):
        """Pick the entry with the fewest hits (recency tiebreak)."""
        return min(
            entries, key=lambda e: (e.hits, e.last_access, e.dpc_key), default=None
        )


class FifoPolicy(ReplacementPolicy):
    """Evict the oldest entry regardless of use."""

    name = "fifo"

    def select_victim(self, entries, now):
        """Pick the entry created earliest."""
        return min(entries, key=lambda e: (e.created_at, e.dpc_key), default=None)


class TtlAwarePolicy(ReplacementPolicy):
    """Evict the entry closest to (or past) its TTL expiry.

    Entries without a TTL are considered to expire at infinity, so they are
    only chosen when every entry is TTL-less (then falls back to LRU order).
    """

    name = "ttl"

    def select_victim(self, entries, now):
        """Pick the entry nearest to (or past) TTL expiry."""
        def remaining(entry):
            if entry.ttl is None:
                return (float("inf"), entry.last_access, entry.dpc_key)
            return (entry.created_at + entry.ttl - now, entry.last_access, entry.dpc_key)

        return min(entries, key=remaining, default=None)


class GreedyDualSizePolicy(ReplacementPolicy):
    """GreedyDual-Size (Cao & Irani 1997): the era's web-caching standard.

    Each entry carries a credit ``H = L + cost/size`` where ``L`` is an
    inflation value that rises to the victim's credit on every eviction.
    With cost proportional to regeneration work (we use size itself as the
    proxy: bigger fragments cost more to rebuild AND to ship), the policy
    trades off recency, size, and cost in one scalar.  Uses the entry's
    ``hits`` and ``size_bytes`` plus an internal inflation accumulator —
    no extra per-entry state is required in the directory.
    """

    name = "gds"

    def __init__(self, cost_of=None) -> None:
        """``cost_of(entry) -> float`` overrides the default size-as-cost."""
        self._inflation = 0.0
        self._credit: dict = {}  # dpc_key -> (H value, last seen access stamp)
        self._cost_of = cost_of if cost_of is not None else (
            lambda entry: float(max(entry.size_bytes, 1))
        )

    def _credit_of(self, entry) -> float:
        """Current H value, refreshed on access (hits/last_access moved)."""
        cached = self._credit.get(entry.dpc_key)
        stamp = (entry.hits, entry.last_access)
        if cached is None or cached[1] != stamp:
            size = float(max(entry.size_bytes, 1))
            value = self._inflation + self._cost_of(entry) / size
            self._credit[entry.dpc_key] = (value, stamp)
            return value
        return cached[0]

    def select_victim(self, entries, now):
        """Evict the entry with the lowest credit; inflate L to it."""
        victim = None
        lowest = float("inf")
        for entry in entries:
            credit = self._credit_of(entry)
            if credit < lowest or (
                credit == lowest
                and victim is not None
                and entry.dpc_key < victim.dpc_key
            ):
                lowest = credit
                victim = entry
        if victim is not None:
            self._inflation = lowest
            self._credit.pop(victim.dpc_key, None)
        return victim


_POLICIES = {
    policy.name: policy
    for policy in (
        LruPolicy, LfuPolicy, FifoPolicy, TtlAwarePolicy, GreedyDualSizePolicy
    )
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by name ('lru', 'lfu', 'fifo', 'ttl')."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            "unknown replacement policy %r (expected one of %s)"
            % (name, sorted(_POLICIES))
        ) from None
