"""Admission control: pluggable load-shedding policies for origin-bound work.

Applied at the DPC, in front of the origin trip: cache hits are never
consulted against a policy (serving them costs the origin almost nothing),
only requests that would trigger regeneration work.  Each policy answers
one question — *given the origin queue's state, should this miss be
admitted?* — and keeps its own shed accounting.

Three classic shapes:

* :class:`StaticThresholdPolicy` — shed when the queue is deeper than a
  fixed threshold.  Simple, but tuned to one traffic mix.
* :class:`CoDelPolicy` — shed when queueing *delay* has stayed above a
  target for a full interval (the CoDel insight: depth is a poor signal,
  standing delay is the real symptom of overload).
* :class:`TokenBucketPolicy` — admit origin-bound work at a bounded
  sustained rate with a burst allowance; everything beyond sheds.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError


class AdmissionPolicy:
    """Interface: decide one origin-bound admission; count what you shed."""

    name = "admit-all"

    def __init__(self) -> None:
        self.consulted = 0
        self.shed = 0

    def admit(self, now: float, depth: int, wait_s: float) -> bool:
        """Whether to admit an origin-bound request arriving at ``now``.

        ``depth`` and ``wait_s`` describe the origin queue the request
        would join.  Implementations must call :meth:`_account`.
        """
        return self._account(True)

    def _account(self, admitted: bool) -> bool:
        self.consulted += 1
        if not admitted:
            self.shed += 1
        return admitted


class StaticThresholdPolicy(AdmissionPolicy):
    """Shed whenever the origin queue is at least ``threshold`` deep."""

    name = "static-threshold"

    def __init__(self, threshold: int = 8) -> None:
        super().__init__()
        if threshold < 1:
            raise ConfigurationError("threshold must be positive")
        self.threshold = threshold

    def admit(self, now: float, depth: int, wait_s: float) -> bool:
        """Depth-gated admission."""
        return self._account(depth < self.threshold)


class CoDelPolicy(AdmissionPolicy):
    """Shed when queueing delay exceeds ``target_s`` for ``interval_s``.

    Transient bursts that drain quickly are admitted untouched; only a
    *standing* queue — delay continuously above target for a whole
    interval — triggers shedding, which continues until the delay dips
    back under target.
    """

    name = "codel"

    def __init__(self, target_s: float = 0.05, interval_s: float = 0.5) -> None:
        super().__init__()
        if target_s <= 0 or interval_s <= 0:
            raise ConfigurationError("CoDel target and interval must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        self._above_since: Optional[float] = None

    def admit(self, now: float, depth: int, wait_s: float) -> bool:
        """Standing-delay-gated admission."""
        if wait_s <= self.target_s:
            self._above_since = None
            return self._account(True)
        if self._above_since is None:
            self._above_since = now
            return self._account(True)
        return self._account(now - self._above_since < self.interval_s)


class TokenBucketPolicy(AdmissionPolicy):
    """Admit origin-bound work at ``rate`` per second, ``burst`` deep."""

    name = "token-bucket"

    def __init__(self, rate: float = 50.0, burst: float = 10.0) -> None:
        super().__init__()
        if rate <= 0 or burst < 1:
            raise ConfigurationError("rate must be positive, burst at least 1")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._refilled_at: Optional[float] = None

    def admit(self, now: float, depth: int, wait_s: float) -> bool:
        """Rate-gated admission on the virtual clock."""
        if self._refilled_at is not None and now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
        self._refilled_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return self._account(True)
        return self._account(False)


POLICIES = {
    "admit-all": AdmissionPolicy,
    "static-threshold": StaticThresholdPolicy,
    "codel": CoDelPolicy,
    "token-bucket": TokenBucketPolicy,
}


def make_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Construct an admission policy by name (see :data:`POLICIES`)."""
    if name not in POLICIES:
        raise ConfigurationError(
            "unknown admission policy %r (have %s)" % (name, sorted(POLICIES))
        )
    return POLICIES[name](**kwargs)
