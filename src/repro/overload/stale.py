"""The brown-out page cache: last-known-good pages at the proxy.

During a brown-out (circuit breaker open, or a policy shed that can be
degraded instead of dropped) the DPC serves the most recent *fresh* page
it assembled for the same URL, stale-while-revalidate style at page
granularity.  Only pages that passed through the normal pipeline are
stored — a stale serve is never re-stored, so staleness cannot compound.

This is deliberately tiny: an LRU map from URL to (html, stored_at).  It
holds pages, not fragments — fragment-grain staleness lives in the BEM's
deadline-pressure path (:meth:`repro.core.bem.BackEndMonitor.process_block`
with an attached degrader).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError


@dataclass
class StaleCacheStats:
    """Brown-out serving accounting."""

    stores: int = 0
    stale_serves: int = 0
    stale_bytes: int = 0
    misses: int = 0          # brown-out lookups that found nothing usable
    expired_skips: int = 0   # entries present but older than max_age_s


class StalePageCache:
    """Bounded LRU of the last fresh page per URL."""

    def __init__(self, capacity: int = 256, max_age_s: Optional[float] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("stale cache capacity must be positive")
        if max_age_s is not None and max_age_s <= 0:
            raise ConfigurationError("max_age_s must be positive when set")
        self.capacity = capacity
        self.max_age_s = max_age_s
        self.stats = StaleCacheStats()
        self._pages: "OrderedDict[str, Tuple[str, float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def put(self, url: str, html: str, now: float) -> None:
        """Remember a freshly assembled page for ``url``."""
        if url in self._pages:
            del self._pages[url]
        elif len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[url] = (html, now)
        self.stats.stores += 1

    def has(self, url: str, now: float) -> bool:
        """Whether a brown-out serve for ``url`` would succeed."""
        cached = self._pages.get(url)
        if cached is None:
            return False
        _, stored_at = cached
        return self.max_age_s is None or now - stored_at <= self.max_age_s

    def serve_stale(self, url: str, now: float) -> Optional[str]:
        """The last-known-good page for ``url``, or ``None``.

        A hit is accounted as a stale serve — the correctness exposure a
        bench reports — and refreshes LRU position (a page being leaned on
        during brown-out is the last one to evict).
        """
        cached = self._pages.get(url)
        if cached is None:
            self.stats.misses += 1
            return None
        html, stored_at = cached
        if self.max_age_s is not None and now - stored_at > self.max_age_s:
            self.stats.expired_skips += 1
            return None
        self._pages.move_to_end(url)
        self.stats.stale_serves += 1
        self.stats.stale_bytes += len(html.encode("utf-8"))
        return html

    def clear(self) -> None:
        """Drop every remembered page."""
        self._pages.clear()
