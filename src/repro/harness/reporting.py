"""Plain-text tables and series for the benchmark harness output.

Every bench prints the same rows/series the paper's figure or table
reports, via these helpers, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction log captured in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table to stdout."""
    print()
    print("=== %s ===" % title)
    print(format_table(headers, rows))


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def drops_table(ledger) -> str:
    """Render a drop ledger as a reason-by-reason table, zeros included.

    ``ledger`` is duck-typed (anything exposing ``rows()`` and ``total``,
    normally a :class:`repro.overload.accounting.DropLedger`).  Every
    registered rejection reason gets a row even when its count is zero, so
    a silent drop path is visible as an explicit ``0`` rather than an
    absent line.
    """
    rows: List[Sequence[object]] = [list(row) for row in ledger.rows()]
    rows.append(["total", ledger.total])
    return format_table(["drop reason", "count"], rows)


def percent(value: float) -> str:
    """Format a percentage with one decimal, e.g. ``70.2%``."""
    return "%.1f%%" % value


def ratio(value: float) -> str:
    """Format a dimensionless ratio with three decimals."""
    return "%.3f" % value


def kb(value: float) -> str:
    """Format a byte count in binary kilobytes."""
    return "%.1f KB" % (value / 1024.0)


def mb(value: float) -> str:
    """Format a byte count in binary megabytes."""
    return "%.2f MB" % (value / (1024.0 * 1024.0))
