"""The fragment lifecycle ledger: every miss gets exactly one cause.

A cache directory can report *that* it missed; operating one requires
knowing *why*.  The paper's BEM produces misses through four different
mechanisms with four different remedies — a cold directory (warm it), TTL
expiry (raise the TTL), data-source invalidation (nothing to fix: the
content changed), and capacity eviction (add slots) — and the overload and
fault subsystems add two more (a shed refill opportunity, a quarantined
slot).  This module attributes every observed miss to exactly one of those
causes:

======================  ====================================================
cause                   the fragment was absent/invalid because…
======================  ====================================================
``cold``                it had never been cached (compulsory miss)
``ttl_expired``         its TTL lapsed (lazy expiry or the background sweep)
``data_invalidated``    a data-source change invalidated it (§4.3.3 trigger
                        path, or an explicit admin invalidation)
``evicted_capacity``    the replacement manager evicted it to free a slot
``shed_overload``       it was absent and the request that would have
                        regenerated it was shed by overload protection
``fault_quarantine``    recovery dropped it (epoch resync, anti-entropy,
                        undelivered-SET quarantine, or directory repair)
======================  ====================================================

Mechanically the ledger is a *pending-reason* map: every removal records
its reason keyed by the fragment's canonical ID, and the next miss on that
fragment consumes the pending reason (defaulting to ``cold`` when none is
pending — the fragment was simply never cached).  Because every miss
consumes exactly one cause and every cause increments exactly one counter,
the load-bearing invariant

    ``sum(cause counts) == directory.stats.misses``

holds by construction; :meth:`MissCauseLedger.check_invariants` asserts it
against a live directory and the property tests in
``tests/properties/test_insight_invariants.py`` drive it through random
workloads with faults and overload enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: Every way a miss can happen, in report order.  ``cold`` must stay first:
#: it is the default when no removal reason is pending.
MISS_CAUSES = (
    "cold",
    "ttl_expired",
    "data_invalidated",
    "evicted_capacity",
    "shed_overload",
    "fault_quarantine",
)

#: Reasons a removal hook may carry.  ``refreshed`` (re-insert over a valid
#: entry, i.e. a forced regeneration) is accepted but never becomes a miss
#: cause: the follow-up insert lands immediately, so no miss can observe it.
REMOVAL_REASONS = (
    "ttl_expired",
    "data_invalidated",
    "evicted_capacity",
    "fault_quarantine",
    "refreshed",
)


class MissCauseLedger:
    """Attribute every directory miss to exactly one lifecycle cause."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {cause: 0 for cause in MISS_CAUSES}
        self.hits = 0
        self.misses = 0
        #: canonical fragment ID -> reason its entry was last removed.
        self._pending: Dict[str, str] = {}
        #: canonical fragment ID -> per-cause miss counts (report detail).
        self._per_fragment: Dict[str, Dict[str, int]] = {}

    # -- hooks (called by the directory / harnesses) ------------------------

    def record_access(self, canonical: str, hit: bool) -> None:
        """One directory lookup outcome; misses consume the pending reason."""
        if hit:
            self.hits += 1
            # A hit proves the entry is present and fresh; any stale pending
            # reason (e.g. a shed note on a fragment that survived) is moot.
            self._pending.pop(canonical, None)
            return
        self.misses += 1
        cause = self._pending.pop(canonical, "cold")
        self.counts[cause] += 1
        per_fragment = self._per_fragment.setdefault(canonical, {})
        per_fragment[cause] = per_fragment.get(cause, 0) + 1

    def record_removal(self, canonical: str, reason: str) -> None:
        """An entry left the directory; remember why until the next miss."""
        if reason not in REMOVAL_REASONS:
            raise ConfigurationError(
                "unknown removal reason %r (have %s)"
                % (reason, sorted(REMOVAL_REASONS))
            )
        if reason == "refreshed":
            # The caller is about to re-insert fresh content; nothing for a
            # future miss to observe.
            self._pending.pop(canonical, None)
            return
        self._pending[canonical] = reason

    def record_insert(self, canonical: str) -> None:
        """An entry (re)entered the directory: no removal is pending."""
        self._pending.pop(canonical, None)

    def note_shed(self, canonical: str) -> None:
        """Overload protection shed the request that would have cached this.

        Called by the overload harness for each absent-or-stale cacheable
        fragment of a shed/timed-out page: the system had the opportunity
        to (re)generate the fragment and declined under pressure, so the
        *next* miss on it is attributed to the shed rather than to whatever
        removed it earlier.  A later, more precise removal (e.g. lazy TTL
        expiry during the missing lookup itself) still overwrites the note.
        """
        self._pending[canonical] = "shed_overload"

    # -- reading ------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    def cause_total(self) -> int:
        """Sum of all cause counters; equals :attr:`misses` by invariant."""
        return sum(self.counts.values())

    def as_rows(self) -> List[Tuple[str, int]]:
        """``(cause, count)`` rows in canonical order, zeros included."""
        return [(cause, self.counts[cause]) for cause in MISS_CAUSES]

    def top_fragments(self, n: int = 5) -> List[Tuple[str, int, str]]:
        """The ``n`` worst-missing fragments as (canonical, misses, causes).

        ``causes`` is a compact ``cause×count`` breakdown string, dominant
        cause first — the doctor report's "which fragments hurt" table.
        """
        scored = sorted(
            self._per_fragment.items(),
            key=lambda item: (-sum(item[1].values()), item[0]),
        )
        rows: List[Tuple[str, int, str]] = []
        for canonical, causes in scored[:n]:
            total = sum(causes.values())
            breakdown = " ".join(
                "%s×%d" % (cause, count)
                for cause, count in sorted(
                    causes.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            rows.append((canonical, total, breakdown))
        return rows

    def check_invariants(self, directory=None) -> None:
        """Assert cause counts sum to misses (and match a live directory).

        ``directory`` is duck-typed (anything with ``stats.misses``); when
        given, the ledger's observed miss count must equal the directory's
        own counter — i.e. no miss path escaped attribution.
        """
        total = self.cause_total()
        if total != self.misses:
            raise AssertionError(
                "miss causes sum to %d but %d misses were observed"
                % (total, self.misses)
            )
        if directory is not None and directory.stats.misses != self.misses:
            raise AssertionError(
                "ledger saw %d misses but the directory counted %d"
                % (self.misses, directory.stats.misses)
            )

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows under ``insight.miss.*`` (zeros pre-registered)."""
        rows: List[Tuple[str, object]] = [
            ("insight.miss.%s" % cause, self.counts[cause])
            for cause in MISS_CAUSES
        ]
        rows.append(("insight.miss.total", self.misses))
        rows.append(("insight.hits", self.hits))
        rows.append(("insight.accesses", self.accesses))
        return rows
