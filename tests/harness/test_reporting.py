"""Tests for the plain-text reporting helpers."""

from repro.harness.reporting import format_table, kb, mb, percent, ratio


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["short", 1], ["a-much-longer-name", 22]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows padded to the same width per column.
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "a-much-longer-name" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_bool_formatting(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestUnits:
    def test_percent(self):
        assert percent(70.25) == "70.2%"

    def test_ratio(self):
        assert ratio(0.5784) == "0.578"

    def test_kb(self):
        assert kb(2048) == "2.0 KB"

    def test_mb(self):
        assert mb(3 * 1024 * 1024) == "3.00 MB"
