"""User sessions: the run-time state dimension of dynamic pages.

Section 2 stresses that dynamic pages are built "based on the run-time
state of the Web site and the user session on the site".  Sessions here
carry the logged-in identity and arbitrary per-visit state; the application
server resolves a request's session before running any script, mirroring a
servlet container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SessionError
from ..network.clock import SimulatedClock


@dataclass
class Session:
    """One visitor's server-side session state."""

    session_id: str
    user_id: Optional[str] = None
    created_at: float = 0.0
    last_seen: float = 0.0
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def authenticated(self) -> bool:
        """Whether a user is logged into this session."""
        return self.user_id is not None

    def get(self, key: str, default: object = None) -> object:
        """Read one session attribute, with a default."""
        return self.data.get(key, default)

    def put(self, key: str, value: object) -> None:
        """Store one session attribute."""
        self.data[key] = value


class SessionManager:
    """Creates, resolves, and expires sessions."""

    def __init__(self, clock: SimulatedClock, idle_timeout_s: float = 1800.0) -> None:
        if idle_timeout_s <= 0:
            raise SessionError("idle timeout must be positive")
        self._clock = clock
        self.idle_timeout_s = idle_timeout_s
        self._sessions: Dict[str, Session] = {}
        self.created = 0
        self.expired = 0

    def resolve(
        self, session_id: Optional[str], user_id: Optional[str] = None
    ) -> Session:
        """Return the live session for an id, creating one when needed.

        An expired session is replaced by a fresh one (the visitor's cookie
        outlived the server-side state).  A ``user_id`` on the request logs
        that user into the session, as a login form would.
        """
        now = self._clock.now()
        if session_id is None:
            session_id = "anon-%d" % self.created
        session = self._sessions.get(session_id)
        if session is not None and now - session.last_seen > self.idle_timeout_s:
            self.expired += 1
            del self._sessions[session_id]
            session = None
        if session is None:
            session = Session(
                session_id=session_id, created_at=now, last_seen=now
            )
            self._sessions[session_id] = session
            self.created += 1
        session.last_seen = now
        if user_id is not None:
            session.user_id = user_id
        return session

    def logout(self, session_id: str) -> None:
        """Clear a session's identity and data (the logout action)."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError("no session %r" % session_id)
        session.user_id = None
        session.data.clear()

    def sweep(self) -> int:
        """Expire idle sessions; returns the number removed."""
        now = self._clock.now()
        doomed = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_seen > self.idle_timeout_s
        ]
        for sid in doomed:
            del self._sessions[sid]
        self.expired += len(doomed)
        return len(doomed)

    def active_count(self) -> int:
        """Number of live (unexpired) sessions."""
        return len(self._sessions)
