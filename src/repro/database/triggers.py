"""Change notification for the database: the root of data-driven invalidation.

"Fragments may become invalid due to, for instance, expiration of the ttl or
updates to the underlying data sources." (§4.3.3)

Every mutation the engine performs emits a :class:`ChangeEvent` on the
database's :class:`TriggerBus`.  The BEM's invalidation manager subscribes
and maps events to fragment dependencies, marking affected directory entries
invalid — exactly the "cache invalidation manager monitors fragments" role
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"

_OPERATIONS = (INSERT, UPDATE, DELETE)


@dataclass(frozen=True)
class ChangeEvent:
    """One committed row mutation.

    ``row`` is the post-image (``None`` for deletes); ``old_row`` the
    pre-image (``None`` for inserts).  ``changed_columns`` is populated for
    updates so listeners can do column-granular dependency matching.
    """

    table: str
    operation: str
    key: object
    row: Optional[Dict[str, object]] = None
    old_row: Optional[Dict[str, object]] = None
    changed_columns: tuple = ()

    def __post_init__(self) -> None:
        if self.operation not in _OPERATIONS:
            raise ValueError("unknown operation %r" % (self.operation,))


Listener = Callable[[ChangeEvent], None]


class TriggerBus:
    """Dispatches :class:`ChangeEvent` objects to subscribed listeners.

    Listeners can subscribe to a single table or to all tables (``None``).
    Dispatch order is subscription order; listeners must not mutate the
    database from inside a callback (the engine guards against re-entrant
    mutation and raises).
    """

    def __init__(self) -> None:
        self._by_table: Dict[str, List[Listener]] = {}
        self._global: List[Listener] = []
        self.events_dispatched = 0

    def subscribe(self, listener: Listener, table: Optional[str] = None) -> None:
        """Register ``listener`` for one table, or every table if ``None``."""
        if table is None:
            self._global.append(listener)
        else:
            self._by_table.setdefault(table, []).append(listener)

    def unsubscribe(self, listener: Listener, table: Optional[str] = None) -> None:
        """Remove a previously subscribed listener."""
        if table is None:
            self._global.remove(listener)
        else:
            self._by_table.get(table, []).remove(listener)

    def publish(self, event: ChangeEvent) -> None:
        """Dispatch one change event to matching listeners."""
        self.events_dispatched += 1
        for listener in self._by_table.get(event.table, ()):
            listener(event)
        for listener in self._global:
            listener(event)

    def listener_count(self, table: Optional[str] = None) -> int:
        """Listeners for one table, or in total for None."""
        if table is None:
            return len(self._global) + sum(
                len(listeners) for listeners in self._by_table.values()
            )
        return len(self._by_table.get(table, ()))
