"""Figure 6: savings vs cacheability — analytical AND experimental, plus
the *measured* firewall-savings curve (Result 1 on real scan counts).

Paper shape: experimental network savings track the analytical curve
(slightly below it, due to protocol headers); firewall savings cross from
negative to positive as cacheability rises.
"""

from repro.harness.experiments import figure_6_rows

CACHEABILITIES = (0.25, 0.5, 0.75, 1.0)
REQUESTS = 1200
WARMUP = 300


def test_figure_6(benchmark, report):
    rows = benchmark.pedantic(
        lambda: figure_6_rows(
            cacheabilities=CACHEABILITIES, requests=REQUESTS, warmup=WARMUP
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "Figure 6: Cost Savings (%) vs Cacheability",
        [
            "cacheability",
            "analytical network (%)",
            "experimental network (%)",
            "analytical firewall (%)",
            "measured firewall (%)",
        ],
        [
            [
                "%.0f%%" % (row.cacheability * 100),
                "%.2f" % row.analytical_network_savings_pct,
                "%.2f" % row.experimental_network_savings_pct,
                "%.2f" % row.analytical_firewall_savings_pct,
                "%.2f" % row.experimental_firewall_savings_pct,
            ]
            for row in rows
        ],
    )

    network = [row.experimental_network_savings_pct for row in rows]
    firewall = [row.experimental_firewall_savings_pct for row in rows]
    assert all(a < b for a, b in zip(network, network[1:]))  # increasing
    assert firewall[0] < 0 < firewall[-1]                    # crossover
    for row in rows:
        assert (
            abs(row.experimental_network_savings_pct
                - row.analytical_network_savings_pct) < 10.0
        )
