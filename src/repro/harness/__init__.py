"""Experiment harness: the Figure 4 testbed and per-figure experiments."""

from .experiments import (
    CacheabilityRow,
    CaseStudyResult,
    RatioRow,
    SavingsRow,
    case_study,
    figure_2a_rows,
    figure_2b_rows,
    figure_3a_rows,
    figure_3b_rows,
    figure_5_rows,
    figure_6_rows,
    run_pair,
)
from .edge import (
    DEPLOYMENTS,
    EdgeExperimentConfig,
    EdgeExperimentResult,
    compare_deployments,
    run_edge_experiment,
)
from .monitoring import DeploymentSnapshot, take_snapshot
from .realistic import (
    RealisticConfig,
    RealisticResult,
    run_realistic,
    run_realistic_pair,
)
from .reporting import format_table, kb, mb, percent, print_table, ratio
from .warming import CacheWarmer, WarmupReport
from .testbed import MODES, Testbed, TestbedConfig, TestbedResult, run_testbed

__all__ = [
    "Testbed",
    "TestbedConfig",
    "TestbedResult",
    "run_testbed",
    "MODES",
    "run_pair",
    "RatioRow",
    "SavingsRow",
    "CacheabilityRow",
    "CaseStudyResult",
    "figure_2a_rows",
    "figure_2b_rows",
    "figure_3a_rows",
    "figure_3b_rows",
    "figure_5_rows",
    "figure_6_rows",
    "case_study",
    "format_table",
    "EdgeExperimentConfig",
    "EdgeExperimentResult",
    "DEPLOYMENTS",
    "run_edge_experiment",
    "compare_deployments",
    "RealisticConfig",
    "RealisticResult",
    "run_realistic",
    "run_realistic_pair",
    "DeploymentSnapshot",
    "take_snapshot",
    "CacheWarmer",
    "WarmupReport",
    "print_table",
    "percent",
    "ratio",
    "kb",
    "mb",
]
