"""Packaging contracts: exports resolve, errors share one root.

A library's ``__all__`` lists and exception hierarchy are API promises;
these tests keep them true as modules evolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors

SUBPACKAGES = [
    "repro.analysis",
    "repro.appserver",
    "repro.baselines",
    "repro.cms",
    "repro.core",
    "repro.database",
    "repro.faults",
    "repro.harness",
    "repro.insight",
    "repro.network",
    "repro.overload",
    "repro.sites",
    "repro.telemetry",
    "repro.workload",
]


class TestAllExports:
    @pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        assert exported is not None, "%s has no __all__" % name
        for symbol in exported:
            assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_no_duplicate_exports(self, name):
        module = importlib.import_module(name)
        exported = module.__all__
        assert len(exported) == len(set(exported)), name

    def test_top_level_exposes_subpackages(self):
        for name in SUBPACKAGES:
            short = name.split(".")[-1]
            assert hasattr(repro, short)


class TestErrorHierarchy:
    def error_classes(self):
        return [
            member
            for _, member in vars(errors).items()
            if inspect.isclass(member) and issubclass(member, Exception)
        ]

    def test_every_error_derives_from_repro_error(self):
        for klass in self.error_classes():
            assert issubclass(klass, errors.ReproError), klass

    def test_catching_the_root_catches_everything(self):
        from repro.core.dpc import DynamicProxyCache

        dpc = DynamicProxyCache(capacity=4)
        with pytest.raises(errors.ReproError):
            dpc.fetch(2)  # AssemblyError
        with pytest.raises(errors.ReproError):
            dpc.fetch(99)  # SlotError

    def test_domain_errors_are_distinct_branches(self):
        assert not issubclass(errors.DatabaseError, errors.CacheError)
        assert not issubclass(errors.NetworkError, errors.AppServerError)
        assert issubclass(errors.SqlSyntaxError, errors.QueryError)
        assert issubclass(errors.AssemblyError, errors.CacheError)

    def test_all_error_classes_documented(self):
        for klass in self.error_classes():
            assert inspect.getdoc(klass), klass


class TestVersioning:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
