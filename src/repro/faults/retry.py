"""Seeded, clock-driven timeout/retry/backoff for unreliable deliveries.

The paper's deployment assumes TCP makes the BEM→DPC path reliable; once
faults can drop or delay messages, every delivery that matters — the
response template itself, coherency fan-out to forward proxies — needs a
retry discipline.  :class:`RetryPolicy` is the schedule (exponential
backoff with bounded, seeded jitter); :class:`ReliableDelivery` executes it
against a :class:`~repro.network.clock.SimulatedClock`, so retries cost
virtual time exactly like any other latency, and keeps a dead-letter count
when a delivery exhausts its attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..errors import ConfigurationError, DeliveryTimeoutError, NetworkError
from ..network.clock import SimulatedClock
from ..telemetry.tracing import NULL_TRACER

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with multiplicative jitter.

    The delay before retry ``k`` (0-indexed) is
    ``min(base_delay_s * multiplier**k, max_delay_s)`` scaled by a uniform
    factor in ``[1 - jitter, 1 + jitter]``.  All randomness comes from the
    caller-supplied RNG, so a seeded run is fully deterministic.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError("max_attempts must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        if attempt < 0:
            raise ConfigurationError("attempt cannot be negative")
        delay = min(self.base_delay_s * (self.multiplier ** attempt), self.max_delay_s)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class DeliveryStats:
    """Counters for one :class:`ReliableDelivery` instance."""

    attempts: int = 0        # individual send attempts, including failures
    deliveries: int = 0      # sends that eventually succeeded
    retries: int = 0         # extra attempts beyond the first
    dead_letters: int = 0    # deliveries that exhausted every attempt
    total_backoff_s: float = 0.0

    @property
    def first_try_ratio(self) -> float:
        """Fraction of successful deliveries that needed no retry."""
        if self.deliveries == 0:
            return 0.0
        return (self.deliveries - min(self.retries, self.deliveries)) / self.deliveries


class ReliableDelivery:
    """Run a send thunk under a :class:`RetryPolicy` on the virtual clock.

    ``deliver`` treats any :class:`~repro.errors.NetworkError` from the
    thunk as a transient failure: it backs off (advancing the clock) and
    retries.  When attempts are exhausted the delivery is dead-lettered and
    a :class:`~repro.errors.DeliveryTimeoutError` is raised, chaining the
    last transport error.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[SimulatedClock] = None,
        seed: int = 0,
        tracer=None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self.stats = DeliveryStats()
        self._rng = random.Random(seed)
        #: Tracer wrapping backoff waits in ``retry.backoff`` spans, so the
        #: virtual time retries burn stays attributed in span trees.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def deliver(self, send: Callable[[], T]) -> T:
        """Attempt ``send()`` until it succeeds or the policy is exhausted."""
        policy = self.policy
        last_error: Optional[NetworkError] = None
        for attempt in range(policy.max_attempts):
            self.stats.attempts += 1
            try:
                result = send()
            except NetworkError as exc:
                last_error = exc
                if attempt + 1 < policy.max_attempts:
                    delay = policy.delay_for(attempt, self._rng)
                    self.stats.total_backoff_s += delay
                    if self.clock is not None:
                        with self.tracer.span("retry.backoff", attempt=attempt):
                            self.clock.advance(delay)
                continue
            self.stats.deliveries += 1
            self.stats.retries += attempt
            return result
        self.stats.dead_letters += 1
        raise DeliveryTimeoutError(
            "delivery failed after %d attempts (%s)"
            % (policy.max_attempts, last_error)
        ) from last_error
