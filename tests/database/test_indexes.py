"""Tests for the hash index."""

import pytest

from repro.database.indexes import HashIndex
from repro.errors import SchemaError


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex("t", "c")
        index.add("books", "a")
        index.add("books", "b")
        index.add("toys", "c")
        assert index.lookup("books") == ["a", "b"]
        assert index.lookup("toys") == ["c"]

    def test_lookup_missing_is_empty(self):
        assert HashIndex("t", "c").lookup("nothing") == []

    def test_remove(self):
        index = HashIndex("t", "c")
        index.add("books", "a")
        index.add("books", "b")
        index.remove("books", "a")
        assert index.lookup("books") == ["b"]

    def test_remove_last_entry_clears_bucket(self):
        index = HashIndex("t", "c")
        index.add("books", "a")
        index.remove("books", "a")
        assert index.lookup("books") == []
        assert len(index) == 0

    def test_remove_missing_raises(self):
        index = HashIndex("t", "c")
        with pytest.raises(SchemaError):
            index.remove("books", "a")

    def test_null_values_indexed(self):
        index = HashIndex("t", "c")
        index.add(None, "a")
        assert index.lookup(None) == ["a"]

    def test_distinct_values(self):
        index = HashIndex("t", "c")
        index.add("x", 1)
        index.add("y", 2)
        index.add(None, 3)
        assert set(index.distinct_values()) == {"x", "y", None}

    def test_lookup_returns_copy(self):
        index = HashIndex("t", "c")
        index.add("x", 1)
        result = index.lookup("x")
        result.append(2)
        assert index.lookup("x") == [1]

    def test_probe_counter(self):
        index = HashIndex("t", "c")
        index.lookup("x")
        index.lookup("y")
        assert index.probes == 2
