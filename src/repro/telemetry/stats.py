"""Small statistical helpers shared by harnesses and benchmarks.

One home for the sample statistics that used to be re-implemented (with
subtly different rank conventions) in the overload harness, the testbed
result, and benchmark scripts.  Everything here is dependency-free and
operates on plain lists of floats.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (q in [0, 1]) of a sample; 0.0 when empty.

    Nearest-rank (ceil(q*n)) so small-sample tails are not systematically
    overstated: p99 of 50 values is the 50th rank only when q*n rounds up
    past 49, and p50 of an even-length sample takes the lower middle rank.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 when empty."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Count/mean/median/tail summary of a sample, as a plain dict.

    Keys: ``count``, ``mean``, ``p50``, ``p95``, ``p99``, ``max``.  An
    empty sample yields all zeros, so callers can render the summary
    unconditionally.
    """
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "max": max(values),
    }
