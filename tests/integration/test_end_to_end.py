"""Integration: the full Figure 4 pipeline under realistic workloads."""

import pytest

from repro.harness.testbed import TestbedConfig, run_testbed
from repro.network.message import ProtocolOverheadModel
from repro.sites.synthetic import SyntheticParams


class TestBandwidthClaims:
    def test_warm_high_cacheability_beats_70_percent_savings(self):
        """The abstract: 'more than 70% savings in bytes transmitted'."""
        common = dict(
            synthetic=SyntheticParams(cacheability=1.0),
            target_hit_ratio=0.95,
            requests=600,
            warmup_requests=150,
        )
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        savings = 1 - dpc.response_payload_bytes / plain.response_payload_bytes
        assert savings > 0.70

    def test_experimental_sits_near_analytical_at_baseline(self):
        from repro.analysis import TABLE2, bytes_ratio

        common = dict(target_hit_ratio=0.8, requests=800, warmup_requests=200)
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        measured = dpc.response_payload_bytes / plain.response_payload_bytes
        analytical = bytes_ratio(TABLE2.with_(hit_ratio=dpc.measured_hit_ratio))
        assert measured == pytest.approx(analytical, abs=0.08)

    def test_wire_gap_has_papers_sign(self):
        """Experimental (wire) ratio above the analytical (payload) one:
        the Figure 3(b) relationship, caused by protocol headers."""
        common = dict(target_hit_ratio=0.8, requests=500, warmup_requests=100)
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        payload_ratio = dpc.response_payload_bytes / plain.response_payload_bytes
        wire_ratio = dpc.response_wire_bytes / plain.response_wire_bytes
        assert wire_ratio > payload_ratio

    def test_gap_vanishes_without_protocol_overhead(self):
        common = dict(
            target_hit_ratio=0.8,
            requests=400,
            warmup_requests=100,
            overhead=ProtocolOverheadModel(enabled=False),
        )
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        assert dpc.response_wire_bytes == dpc.response_payload_bytes


class TestThreeModeOrdering:
    def test_bytes_ordering(self):
        """dpc < no_cache == backend on origin-link bytes."""
        common = dict(target_hit_ratio=0.9, requests=400, warmup_requests=100)
        results = {
            mode: run_testbed(TestbedConfig(mode=mode, **common))
            for mode in ("no_cache", "dpc", "backend")
        }
        assert (
            results["dpc"].response_payload_bytes
            < results["no_cache"].response_payload_bytes
        )
        assert (
            results["backend"].response_payload_bytes
            == results["no_cache"].response_payload_bytes
        )

    def test_latency_ordering(self):
        """Both caches beat no-cache; the DPC also saves transfer time."""
        common = dict(target_hit_ratio=0.9, requests=400, warmup_requests=100)
        results = {
            mode: run_testbed(TestbedConfig(mode=mode, **common))
            for mode in ("no_cache", "dpc", "backend")
        }
        assert results["dpc"].mean_response_time < results["no_cache"].mean_response_time
        assert (
            results["backend"].mean_response_time
            < results["no_cache"].mean_response_time
        )

    def test_correctness_in_all_modes(self):
        for mode in ("no_cache", "dpc", "backend"):
            result = run_testbed(
                TestbedConfig(
                    mode=mode,
                    requests=200,
                    warmup_requests=50,
                    correctness_every=7,
                )
            )
            assert result.pages_incorrect == 0, mode


class TestScanCostMeasured:
    def test_result1_measured_at_full_cacheability(self):
        """Measured firewall+DPC scan work confirms Result 1's direction."""
        common = dict(
            synthetic=SyntheticParams(cacheability=1.0),
            target_hit_ratio=0.95,
            requests=500,
            warmup_requests=150,
        )
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        scan_with_cache = dpc.firewall_bytes + dpc.dpc_scanned_bytes
        assert scan_with_cache < plain.firewall_bytes

    def test_scan_cost_loses_at_low_cacheability(self):
        common = dict(
            synthetic=SyntheticParams(cacheability=0.25),
            target_hit_ratio=0.8,
            requests=400,
            warmup_requests=100,
        )
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        scan_with_cache = dpc.firewall_bytes + dpc.dpc_scanned_bytes
        assert scan_with_cache > plain.firewall_bytes
