"""In-memory relational engine substrate (stands in for Oracle 8.1.6).

Provides typed tables, hash indexes, a tiny SQL dialect, and row-level
change notification.  The change events are what drive data-dependency
invalidation of cached fragments in the BEM.
"""

from .engine import Database, QueryResult
from .indexes import HashIndex
from .schema import Column, TableSchema, schema
from .sql import (
    Aggregate,
    Condition,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    parse,
)
from .table import Table
from .transactions import TransactionManager
from .triggers import DELETE, INSERT, UPDATE, ChangeEvent, TriggerBus

__all__ = [
    "Database",
    "QueryResult",
    "HashIndex",
    "Column",
    "TableSchema",
    "schema",
    "Aggregate",
    "Condition",
    "SelectStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "parse",
    "Table",
    "TransactionManager",
    "TriggerBus",
    "ChangeEvent",
    "INSERT",
    "UPDATE",
    "DELETE",
]
