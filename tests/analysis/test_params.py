"""Tests for Table 2 parameters."""

import pytest

from repro.analysis.params import TABLE2, AnalysisParams
from repro.errors import ConfigurationError


class TestTable2:
    def test_baseline_values(self):
        assert TABLE2.hit_ratio == 0.8
        assert TABLE2.fragment_size == 1024.0
        assert TABLE2.fragments_per_page == 4
        assert TABLE2.num_pages == 10
        assert TABLE2.header_bytes == 500.0
        assert TABLE2.tag_size == 10.0
        assert TABLE2.cacheability == 0.6
        assert TABLE2.requests == 1_000_000

    def test_as_table_rows(self):
        table = TABLE2.as_table()
        assert table["hit ratio (h)"] == 0.8
        assert table["tag size (g)"] == "10 bytes"
        assert len(table) == 8

    def test_with_override(self):
        modified = TABLE2.with_(hit_ratio=0.5)
        assert modified.hit_ratio == 0.5
        assert modified.fragment_size == TABLE2.fragment_size
        assert TABLE2.hit_ratio == 0.8  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnalysisParams(hit_ratio=1.5)
        with pytest.raises(ConfigurationError):
            AnalysisParams(cacheability=-0.1)
        with pytest.raises(ConfigurationError):
            AnalysisParams(fragment_size=-1)
        with pytest.raises(ConfigurationError):
            AnalysisParams(num_pages=0)
        with pytest.raises(ConfigurationError):
            AnalysisParams(zipf_alpha=-1)
