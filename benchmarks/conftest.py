"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table or figure) and prints
the same rows/series the paper reports, so that
``pytest benchmarks/ --benchmark-only`` is the reproduction log.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def report(capsys):
    """Print a figure/table block immediately, bypassing pytest capture."""

    def emit(title, headers, rows):
        from repro.harness.reporting import format_table

        with capsys.disabled():
            print()
            print("=== %s ===" % title)
            print(format_table(headers, rows))

    return emit
