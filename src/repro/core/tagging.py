"""The tagging API: marking code blocks cacheable and building pages.

System initialization (§4.3.1): "Once the cacheable fragments are
identified, each of the corresponding code blocks in the script is tagged...
by inserting APIs around the code block, enabling the output of the code
block to be cached at run-time.  The tagging process assigns a unique
identifier to each cacheable fragment, along with the appropriate metadata
(e.g., time-to-live)."

Two pieces:

* :class:`TagRegistry` — the initialization-phase artifact: a per-site map
  of block name -> cacheability metadata (TTL, data dependencies).
* :class:`PageBuilder` — the run-time API a dynamic script writes through.
  ``builder.block(name, params, generate)`` is the "API around the code
  block": with a BEM attached it runs the §4.3.2 protocol (the generator is
  skipped on hits); without one (caching disabled) it always runs the
  generator and emits plain literals, which doubles as the correctness
  oracle for the DPC assembly invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import TaggingError
from .bem import BackEndMonitor
from .fragments import Dependency, FragmentID, FragmentMetadata
from .template import DEFAULT_CONFIG, Literal, Template, TemplateConfig

#: Computes a block's data dependencies from its run-time parameters.
DependencyFactory = Callable[[Mapping[str, object]], Tuple[Dependency, ...]]


@dataclass(frozen=True)
class BlockTag:
    """Initialization-phase cacheability declaration for one code block."""

    name: str
    ttl: Optional[float] = None
    cacheable: bool = True
    dependency_factory: Optional[DependencyFactory] = None

    def metadata_for(self, params: Mapping[str, object]) -> FragmentMetadata:
        """Materialize FragmentMetadata for one invocation's params."""
        dependencies: Tuple[Dependency, ...] = ()
        if self.dependency_factory is not None:
            dependencies = tuple(self.dependency_factory(params))
        return FragmentMetadata(
            ttl=self.ttl, dependencies=dependencies, cacheable=self.cacheable
        )


class TagRegistry:
    """All tagged blocks of one site — the output of the tagging pass."""

    def __init__(self) -> None:
        self._tags: Dict[str, BlockTag] = {}

    def tag(
        self,
        name: str,
        ttl: Optional[float] = None,
        dependencies: Optional[DependencyFactory] = None,
        cacheable: bool = True,
    ) -> BlockTag:
        """Declare a block cacheable (or explicitly non-cacheable)."""
        if name in self._tags:
            raise TaggingError("block %r is already tagged" % name)
        block = BlockTag(
            name=name,
            ttl=ttl,
            cacheable=cacheable,
            dependency_factory=dependencies,
        )
        self._tags[name] = block
        return block

    def retag(
        self,
        name: str,
        ttl: Optional[float] = None,
        dependencies: Optional[DependencyFactory] = None,
        cacheable: bool = True,
    ) -> BlockTag:
        """Replace an existing block's cacheability declaration.

        Re-running the tagging pass on one block — the operational move when
        initial metadata turns out wrong (e.g. adding a TTL after the insight
        layer shows a block never expires).  Raises
        :class:`~repro.errors.TaggingError` if the block was never tagged, so
        typos cannot silently create new tags.
        """
        if name not in self._tags:
            raise TaggingError("block %r is not tagged; use tag() first" % name)
        block = BlockTag(
            name=name,
            ttl=ttl,
            cacheable=cacheable,
            dependency_factory=dependencies,
        )
        self._tags[name] = block
        return block

    def lookup(self, name: str) -> Optional[BlockTag]:
        """The tag declared for a block name, or None if untagged."""
        return self._tags.get(name)

    def names(self) -> List[str]:
        """All tagged block names, sorted."""
        return sorted(self._tags)

    def cacheable_fraction(self) -> float:
        """The 'cacheability factor' of the Section 5 analysis."""
        if not self._tags:
            return 0.0
        cacheable = sum(1 for tag in self._tags.values() if tag.cacheable)
        return cacheable / len(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, name: str) -> bool:
        return name in self._tags


@dataclass
class PageBuildStats:
    """What happened while building one page."""

    blocks: int = 0
    cacheable_blocks: int = 0
    hits: int = 0
    misses: int = 0
    generated_bytes: int = 0


class PageBuilder:
    """Run-time page writer handed to dynamic scripts.

    With ``bem`` set, tagged blocks go through the BEM protocol and the
    result is a *template* (GET/SET instructions).  With ``bem=None`` the
    builder is in no-cache mode: every block executes and the result is the
    full page.  Scripts are completely unaware of which mode they run in —
    that transparency is the design requirement that lets the system work
    without changing the site's MVC structure (§3.2.2's critique of ESI).
    """

    def __init__(
        self,
        registry: TagRegistry,
        bem: Optional[BackEndMonitor] = None,
        template_config: TemplateConfig = DEFAULT_CONFIG,
    ) -> None:
        self.registry = registry
        self.bem = bem
        self.template = Template(config=template_config)
        self.stats = PageBuildStats()
        self._finished = False

    # -- script-facing API -------------------------------------------------------

    def literal(self, text: str) -> "PageBuilder":
        """Emit layout markup (never cached; part of every response)."""
        self._check_open()
        if text:
            self.template.literal(text)
        return self

    def block(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        generate: Callable[[], str] = None,
    ) -> "PageBuilder":
        """Execute one (possibly tagged) code block.

        ``generate`` produces the block's HTML and is only invoked when the
        content cannot be served from the DPC.  Untagged names behave as
        non-cacheable blocks.
        """
        self._check_open()
        if generate is None:
            raise TaggingError("block %r needs a generate callable" % name)
        params = dict(params or {})
        tag = self.registry.lookup(name)
        self.stats.blocks += 1

        if tag is None or not tag.cacheable or self.bem is None:
            content = generate()
            self.stats.generated_bytes += len(content.encode("utf-8"))
            if content:
                self.template.literal(content)
            return self

        self.stats.cacheable_blocks += 1
        fragment_id = FragmentID.create(name, params)
        metadata = tag.metadata_for(params)

        generated = []

        def observed_generate() -> str:
            content = generate()
            generated.append(content)
            return content

        instruction = self.bem.process_block(fragment_id, metadata, observed_generate)
        if generated:
            self.stats.misses += 1
            self.stats.generated_bytes += len(generated[0].encode("utf-8"))
        else:
            self.stats.hits += 1
        self.template.add(instruction)
        return self

    # -- harvesting ------------------------------------------------------------------

    def finish(self) -> Template:
        """Close the page and return the instruction stream."""
        self._check_open()
        self._finished = True
        self.template = self.template.normalized()
        return self.template

    def response_body(self) -> str:
        """The bytes the origin ships: serialized template (both modes)."""
        if not self._finished:
            self.finish()
        return self.template.serialize()

    def full_page(self) -> str:
        """The user-deliverable page, ignoring caching (oracle rendering).

        Only available in no-cache mode, where every instruction is a
        literal; in cached mode the page exists only after DPC assembly.
        """
        if not self._finished:
            self.finish()
        parts = []
        for instruction in self.template.instructions:
            if not isinstance(instruction, Literal):
                raise TaggingError(
                    "full_page() requires no-cache mode; template has %r"
                    % (instruction,)
                )
            parts.append(instruction.text)
        return "".join(parts)

    def _check_open(self) -> None:
        if self._finished:
            raise TaggingError("PageBuilder already finished")
