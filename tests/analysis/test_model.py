"""Tests for the Section 5 closed-form model."""

import pytest

from repro.analysis.model import (
    breakeven_hit_ratio,
    bytes_ratio,
    expected_bytes_cached,
    expected_bytes_no_cache,
    figure_2a_series,
    figure_2b_series,
    fragment_bytes_cached,
    page_access_counts,
    response_size_cached,
    response_size_no_cache,
    savings_percent,
)
from repro.analysis.params import TABLE2


class TestResponseSizes:
    def test_s_nc_formula(self):
        # 4 fragments x 1024 + 500 header.
        assert response_size_no_cache(TABLE2) == 4 * 1024 + 500

    def test_s_c_hand_computed(self):
        # Per cacheable fragment: 0.8*10 + 0.2*(1024+20) = 216.8
        # Per page: 4 * (0.6*216.8 + 0.4*1024) + 500
        expected = 4 * (0.6 * 216.8 + 0.4 * 1024.0) + 500
        assert response_size_cached(TABLE2) == pytest.approx(expected)

    def test_full_hit_full_cacheability(self):
        params = TABLE2.with_(hit_ratio=1.0, cacheability=1.0)
        assert response_size_cached(params) == pytest.approx(4 * 10 + 500)

    def test_zero_hit_adds_tag_overhead(self):
        params = TABLE2.with_(hit_ratio=0.0)
        # Misses cost s + 2g, so the cached response EXCEEDS the plain one.
        assert response_size_cached(params) > response_size_no_cache(params)

    def test_non_cacheable_fragment_costs_its_size(self):
        assert fragment_bytes_cached(1024, 0.8, 10, cacheable=False) == 1024


class TestExpectedBytes:
    def test_homogeneous_pages_give_s_times_r(self):
        assert expected_bytes_no_cache(TABLE2) == pytest.approx(
            response_size_no_cache(TABLE2) * TABLE2.requests
        )

    def test_access_counts_sum_to_r(self):
        counts = page_access_counts(TABLE2)
        assert sum(counts) == pytest.approx(TABLE2.requests)
        assert counts[0] > counts[-1]  # Zipf skew

    def test_ratio_at_baseline(self):
        # Documented reproduction number: ~0.578 at Table 2 settings.
        assert bytes_ratio(TABLE2) == pytest.approx(0.5785, abs=0.001)

    def test_savings_over_70_percent_at_full_cacheability(self):
        """The abstract's 'more than 70% savings' claim."""
        params = TABLE2.with_(cacheability=1.0)
        assert savings_percent(params) > 70.0


class TestBreakeven:
    def test_breakeven_formula(self):
        h_star = breakeven_hit_ratio(TABLE2)
        assert h_star == pytest.approx(2 * 10 / (1024 + 10))

    def test_breakeven_is_about_one_percent(self):
        """The paper's 'as long as 1% or more fragments are served from
        cache' claim; the printed formula gives ~1.9%."""
        assert 0.005 < breakeven_hit_ratio(TABLE2) < 0.03

    def test_savings_sign_flips_at_breakeven(self):
        h_star = breakeven_hit_ratio(TABLE2)
        below = savings_percent(TABLE2.with_(hit_ratio=h_star * 0.5, cacheability=1.0))
        above = savings_percent(TABLE2.with_(hit_ratio=h_star * 2.0, cacheability=1.0))
        assert below < 0 < above


class TestFigureShapes:
    def test_figure_2a_shape(self):
        """Ratio >1 near zero size, steep early drop, monotone decrease."""
        series = figure_2a_series(TABLE2, [1, 50, 100, 500, 1024, 2048, 5120])
        ratios = [ratio for _, ratio in series]
        assert ratios[0] > 1.0
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 0.6

    def test_figure_2a_asymptote(self):
        """As s -> inf, ratio -> X(1-h) + (1-X) = 0.52 at baseline."""
        series = figure_2a_series(TABLE2, [10_000_000])
        assert series[0][1] == pytest.approx(0.52, abs=0.01)

    def test_figure_2b_shape(self):
        """Negative at h=0, crosses zero early, max at h=1."""
        series = figure_2b_series(TABLE2, [0.0, 0.05, 0.5, 1.0])
        savings = [s for _, s in series]
        assert savings[0] < 0
        assert savings[1] > 0
        assert all(a <= b for a, b in zip(savings, savings[1:]))

    def test_figure_2b_h0_penalty_is_small(self):
        """At h=0 the penalty is just the added tags: ~1% at baseline."""
        series = figure_2b_series(TABLE2, [0.0])
        assert -3.0 < series[0][1] < 0.0
