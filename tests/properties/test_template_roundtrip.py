"""Property: template serialize -> parse is the identity (invariant 3)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.template import (
    GetInstruction,
    Literal,
    SetInstruction,
    Template,
    TemplateConfig,
    parse_template,
)

# Text strategies deliberately include the sentinel characters '<' and '~'
# so escaping gets exercised hard.
text = st.text(
    alphabet=string.ascii_letters + string.digits + "<>~:QSEG \n",
    max_size=80,
)
keys = st.integers(min_value=0, max_value=9999)

instructions = st.one_of(
    text.map(Literal),
    keys.map(GetInstruction),
    st.tuples(keys, text).map(lambda kv: SetInstruction(*kv)),
)


@given(st.lists(instructions, max_size=20))
@settings(max_examples=300)
def test_roundtrip_identity(instruction_list):
    template = Template(instruction_list)
    parsed = parse_template(template.serialize())
    assert parsed == template.normalized()


@given(st.lists(instructions, max_size=20))
def test_serialization_deterministic(instruction_list):
    template = Template(instruction_list)
    assert template.serialize() == template.serialize()


@given(text)
def test_pure_literal_roundtrip(content):
    template = Template().literal(content)
    parsed = parse_template(template.serialize())
    if content:
        assert parsed.instructions == [Literal(content)]
    else:
        assert parsed.instructions == []


@given(keys, text)
def test_set_content_preserved_exactly(key, content):
    parsed = parse_template(Template().set(key, content).serialize())
    assert parsed.instructions == [SetInstruction(key, content)]


@given(st.lists(instructions, max_size=20), st.integers(2, 6))
def test_roundtrip_under_any_key_width(instruction_list, width):
    config = TemplateConfig(key_width=width)
    clipped = []
    for instruction in instruction_list:
        if isinstance(instruction, GetInstruction):
            clipped.append(GetInstruction(instruction.key % (10 ** width)))
        elif isinstance(instruction, SetInstruction):
            clipped.append(
                SetInstruction(instruction.key % (10 ** width), instruction.content)
            )
        else:
            clipped.append(instruction)
    template = Template(clipped, config)
    assert parse_template(template.serialize(), config) == template.normalized()


@given(st.lists(instructions, max_size=15))
def test_wire_bytes_accounting(instruction_list):
    """GET costs exactly g; SET costs content + 2g; literals cost their
    escaped length.  Total wire bytes must equal the sum of parts."""
    config = TemplateConfig()
    template = Template(instruction_list, config).normalized()
    expected = 0
    for instruction in template.instructions:
        if isinstance(instruction, Literal):
            expected += len(
                instruction.text.replace("<~", "<~Q~>").encode("utf-8")
            )
        elif isinstance(instruction, GetInstruction):
            expected += config.tag_size
        else:
            expected += (
                len(instruction.content.replace("<~", "<~Q~>").encode("utf-8"))
                + 2 * config.tag_size
            )
    assert template.wire_bytes() == expected
