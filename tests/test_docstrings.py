"""Quality gate: every public item in the library carries a docstring.

"Documentation on every public item" is a deliverable, so it is enforced,
not aspired to.  Public = importable from a ``repro`` module and not
underscore-prefixed; dataclass-generated plumbing and inherited members
are exempt.
"""

import inspect
import pkgutil
import importlib

import pytest

import repro

EXEMPT_MEMBER_NAMES = {
    # dataclass/enum plumbing and dunder-ish generated members
    "__init__", "__repr__", "__eq__", "__hash__", "__post_init__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        # Only report items defined in this package (not re-imports of
        # stdlib objects etc.).
        defined_in = getattr(member, "__module__", None)
        if defined_in is None or not str(defined_in).startswith("repro"):
            continue
        if defined_in != module.__name__:
            continue  # avoid double-reporting re-exports
        yield name, member


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not inspect.getdoc(m)]
    assert missing == [], "modules without docstrings: %s" % missing


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in iter_modules():
        for name, member in public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if not inspect.getdoc(member):
                    missing.append("%s.%s" % (module.__name__, name))
    assert missing == [], "undocumented public items: %s" % missing


def test_public_methods_have_docstrings():
    """Methods defined directly on public classes must be documented
    (inherited and generated members are exempt)."""
    missing = []
    for module in iter_modules():
        for class_name, klass in public_members(module):
            if not inspect.isclass(klass):
                continue
            for name, member in vars(klass).items():
                if name.startswith("_") or name in EXEMPT_MEMBER_NAMES:
                    continue
                func = None
                if inspect.isfunction(member):
                    func = member
                elif isinstance(member, property):
                    func = member.fget
                elif isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                if func is not None and not inspect.getdoc(func):
                    missing.append(
                        "%s.%s.%s" % (module.__name__, class_name, name)
                    )
    assert missing == [], "undocumented public methods: %s" % missing
