"""The synthetic test application driven by the Section 5/6 parameters.

"Our experiments were run in a test environment that attempts to simulate
the conditions described in Section 5.  Thus, we have incorporated the
parameter settings in Table 2.  The test site is an ASP-based site which
retrieves content from a site content repository." (§6)

This site is that ASP application: ``n`` pages, each composed of a fixed
number of fragments drawn from a pool of ``m`` fragments; every fragment
has an exact byte size ``s_e``; a design-time *cacheability factor* decides
which pool fragments are tagged.  Fragment content derives from a row in a
backing table, so the experiment harness can drive the hit ratio through
the real invalidation path (update row -> trigger -> BEM invalidation)
instead of poking cache internals.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Optional

from ..appserver import ApplicationServer, DynamicScript, ScriptContext, SiteServices
from ..core.fragments import Dependency
from ..database import Database, schema
from ..errors import ConfigurationError

SYNTHETIC_TABLE = "synthetic_data"

_SYNTHETIC_SCHEMA = schema(
    SYNTHETIC_TABLE,
    [("frag_id", "int"), ("version", "int")],
    primary_key="frag_id",
)

#: Filler alphabet for padding fragment bodies to their exact size.  The
#: template sentinel "<~" never occurs in it, so serialized sizes are exact.
_FILLER = "abcdefghijklmnopqrstuvwxyz0123456789 "


@dataclass(frozen=True)
class SyntheticParams:
    """The Table 2 knobs that shape the synthetic application."""

    num_pages: int = 10
    fragments_per_page: int = 4
    fragment_size: int = 1024
    cacheability: float = 0.6
    #: Pool of distinct fragments; defaults to pages*fragments (no sharing),
    #: which is the layout the closed-form analysis assumes.
    pool_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_pages <= 0 or self.fragments_per_page <= 0:
            raise ConfigurationError("pages and fragments must be positive")
        if self.fragment_size < 0:
            raise ConfigurationError("fragment_size cannot be negative")
        if not 0.0 <= self.cacheability <= 1.0:
            raise ConfigurationError("cacheability must be in [0, 1]")
        if self.pool_size is not None and self.pool_size <= 0:
            raise ConfigurationError("pool_size must be positive")

    @property
    def effective_pool_size(self) -> int:
        """Number of distinct fragments in the pool."""
        if self.pool_size is not None:
            return self.pool_size
        return self.num_pages * self.fragments_per_page

    def pool_indexes_for_page(self, page_id: int) -> List[int]:
        """Which pool fragments page ``page_id`` is composed of."""
        if not 0 <= page_id < self.num_pages:
            raise ConfigurationError(
                "page_id %d out of range [0, %d)" % (page_id, self.num_pages)
            )
        start = page_id * self.fragments_per_page
        pool = self.effective_pool_size
        return [(start + j) % pool for j in range(self.fragments_per_page)]

    def is_cacheable(self, pool_index: int) -> bool:
        """Design-time cacheability of pool fragment ``pool_index``.

        Bresenham-style spreading: exactly ``floor(n * cacheability)`` of
        any prefix of n fragments are cacheable, and the pattern is evenly
        interleaved, so every page carries close to the configured
        cacheable fraction (the X_j of the analysis).
        """
        c = self.cacheability
        return math.floor((pool_index + 1) * c) - math.floor(pool_index * c) == 1

    def cacheable_count(self) -> int:
        """How many pool fragments are design-time cacheable."""
        return sum(
            1 for k in range(self.effective_pool_size) if self.is_cacheable(k)
        )


def fragment_content(pool_index: int, version: int, size: int) -> str:
    """Deterministic fragment body of exactly ``size`` bytes (ASCII)."""
    prefix = "F%05d v%08d " % (pool_index, version)
    if size <= len(prefix):
        return prefix[:size]
    padding_needed = size - len(prefix)
    repeats = padding_needed // len(_FILLER) + 1
    return prefix + (_FILLER * repeats)[:padding_needed]


class SyntheticPageScript(DynamicScript):
    """``/page.jsp?pageID=i`` — emits the page's fragments, nothing else.

    No literal layout markup is written, so the no-cache body size is
    exactly ``sum(s_e) `` and the analytical S_NC = sum + f holds to the
    byte (header bytes ride on the HTTP response object).
    """

    path = "/page.jsp"

    def __init__(self, params: SyntheticParams) -> None:
        self.params = params

    def run(self, ctx: ScriptContext) -> None:
        """Emit the page's fragments through the tagging API."""
        page_id = int(ctx.request.param("pageID", "0"))
        table = ctx.services.db.table(SYNTHETIC_TABLE)
        for pool_index in self.params.pool_indexes_for_page(page_id):
            block_name = (
                "frag" if self.params.is_cacheable(pool_index) else "frag_nc"
            )

            def generate(pool_index: int = pool_index) -> str:
                row = table.get(pool_index)
                version = int(row["version"]) if row is not None else 0
                return fragment_content(
                    pool_index, version, self.params.fragment_size
                )

            ctx.block(block_name, {"id": pool_index}, generate)


def build_services(params: SyntheticParams) -> SiteServices:
    """Create the synthetic site's database and tagging registry."""
    db = Database("synthetic")
    table = db.create_table(_SYNTHETIC_SCHEMA)
    for pool_index in range(params.effective_pool_size):
        table.insert({"frag_id": pool_index, "version": 0})

    services = SiteServices(db=db)
    services.tags.tag(
        "frag",
        dependencies=lambda p: (Dependency(SYNTHETIC_TABLE, key=int(p["id"])),),
    )
    # "frag_nc" is left untagged on purpose: those blocks always execute.
    return services


def build_server(
    params: Optional[SyntheticParams] = None,
    services: Optional[SiteServices] = None,
    **server_kwargs,
) -> ApplicationServer:
    """An application server serving the synthetic page script."""
    if params is None:
        params = SyntheticParams()
    if services is None:
        services = build_services(params)
    server = ApplicationServer(services, **server_kwargs)
    server.register(SyntheticPageScript(params))
    return server


def touch_fragment(services: SiteServices, pool_index: int) -> None:
    """Invalidate one fragment the honest way: update its source row."""
    table = services.db.table(SYNTHETIC_TABLE)
    row = table.get(pool_index)
    if row is None:
        raise ConfigurationError("no synthetic fragment %d" % pool_index)
    table.update({"version": int(row["version"]) + 1}, key=pool_index)
