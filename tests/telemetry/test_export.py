"""Exporters: JSON-lines round trips, aligned tables, span trees."""

import json

import pytest

from repro.core.fragments import FragmentID
from repro.harness.reporting import format_table
from repro.network.clock import SimulatedClock
from repro.telemetry.export import (
    parse_json_lines,
    registry_from_rows,
    render_metrics,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    spans_from_json_lines,
    spans_to_json_lines,
    to_json_lines,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.tracing import Tracer


def sample_rows():
    registry = MetricsRegistry()
    registry.counter("bem.fragment_hits").inc(12)
    registry.gauge("dpc.slots_occupied").set(5)
    histogram = registry.histogram("db.wait_s", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(3.0)
    return registry.collect()


class TestJsonLines:
    def test_round_trip_is_byte_identical(self):
        rows = sample_rows()
        text = to_json_lines(rows)
        parsed = parse_json_lines(text)
        assert to_json_lines(parsed) == text

    def test_round_trip_preserves_values(self):
        parsed = dict(parse_json_lines(to_json_lines(sample_rows())))
        assert parsed["bem.fragment_hits"] == 12
        assert parsed["db.wait_s.count"] == 2
        assert parsed["db.wait_s.buckets"] == [[0.1, 1], [1.0, 0], ["inf", 1]]

    def test_one_valid_json_object_per_line(self):
        for line in to_json_lines(sample_rows()).splitlines():
            record = json.loads(line)
            assert set(record) == {"name", "value"}

    def test_blank_lines_skipped(self):
        rows = parse_json_lines('\n{"name": "a.b", "value": 1}\n\n')
        assert rows == [("a.b", 1)]

    def test_registry_from_rows_replays_verbatim(self):
        rows = sample_rows()
        assert registry_from_rows(rows).collect() == rows


class TestRenderMetrics:
    def test_matches_harness_format_table(self):
        rows = sample_rows()
        assert render_metrics(rows) == format_table(["metric", "value"], rows)

    def test_title_prepended(self):
        text = render_metrics([("a.b", 1)], title="Snapshot")
        assert text.splitlines()[0] == "Snapshot"

    def test_empty_rows_still_render_headers(self):
        lines = render_metrics([]).splitlines()
        assert lines[0].startswith("metric")
        assert set(lines[1]) <= {"-", " "}


def build_trace():
    clock = SimulatedClock()
    tracer = Tracer(clock, enabled=True)
    with tracer.span("request", url="/page.jsp") as root:
        with tracer.span("bem.process"):
            clock.advance(0.010)
        with tracer.span("dpc.assemble") as assemble:
            assemble.set_status("failed")
            clock.advance(0.002)
    return root


class TestSpanExport:
    def test_span_to_dict_shape(self):
        record = span_to_dict(build_trace())
        assert record["name"] == "request"
        assert record["duration"] == pytest.approx(0.012)
        assert record["meta"] == {"url": "/page.jsp"}
        children = record["children"]
        assert [c["name"] for c in children] == ["bem.process", "dpc.assemble"]
        assert children[1]["status"] == "failed"
        assert "meta" not in children[0]

    def test_spans_to_json_lines_one_trace_per_line(self):
        roots = [build_trace(), build_trace()]
        lines = spans_to_json_lines(roots).splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "request"

    def test_render_span_tree(self):
        text = render_span_tree(build_trace())
        lines = text.splitlines()
        assert lines[0] == "request  12.000ms  url=/page.jsp"
        assert lines[1] == "  bem.process  10.000ms"
        assert lines[2] == "  dpc.assemble  2.000ms  status=failed"

    def test_render_span_tree_custom_indent(self):
        text = render_span_tree(build_trace(), indent="....")
        assert text.splitlines()[1].startswith("....bem.process")


class TestSpanRoundTrip:
    """span_from_dict / spans_from_json_lines invert the export exactly."""

    def test_span_from_dict_inverts_to_dict(self):
        record = span_to_dict(build_trace())
        rebuilt = span_from_dict(record)
        assert span_to_dict(rebuilt) == record

    def test_rebuilt_tree_matches_structure(self):
        root = build_trace()
        rebuilt = span_from_dict(span_to_dict(root))
        assert [s.name for s in rebuilt.walk()] == [s.name for s in root.walk()]
        assert rebuilt.duration == pytest.approx(root.duration)
        assert rebuilt.children[1].status == "failed"
        assert rebuilt.meta == {"url": "/page.jsp"}

    def test_json_lines_round_trip(self):
        roots = [build_trace(), build_trace()]
        text = spans_to_json_lines(roots)
        rebuilt = spans_from_json_lines(text)
        assert len(rebuilt) == 2
        assert spans_to_json_lines(rebuilt) == text

    def test_json_lines_skips_blank_lines(self):
        text = spans_to_json_lines([build_trace()])
        rebuilt = spans_from_json_lines("\n" + text + "\n\n")
        assert len(rebuilt) == 1

    def test_root_annotations_survive_the_round_trip(self):
        """The exporter gap this PR closes: root meta is carried and parsed."""
        clock = SimulatedClock()
        tracer = Tracer(clock, enabled=True)
        with tracer.span("request", url="/p.jsp", predicted_hit=True) as root:
            clock.advance(0.001)
        rebuilt = spans_from_json_lines(spans_to_json_lines([root]))[0]
        assert rebuilt.meta == {"url": "/p.jsp", "predicted_hit": True}

    def test_non_json_safe_meta_is_coerced_not_fatal(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, enabled=True)
        with tracer.span("request", frag=FragmentID.create("frag", {"id": 3}),
                         depth=(1, 2)) as root:
            clock.advance(0.001)
        text = spans_to_json_lines([root])  # must not raise
        rebuilt = spans_from_json_lines(text)[0]
        assert rebuilt.meta["frag"] == str(FragmentID.create("frag", {"id": 3}))
        assert rebuilt.meta["depth"] == [1, 2]
        # A second export of the parsed tree is now a fixed point.
        assert spans_to_json_lines([rebuilt]) == text
