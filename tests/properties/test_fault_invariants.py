"""Property: slot discipline and correctness survive faults and recovery.

Three families of random schedules, all seeded through hypothesis:
crash/flush cycles interleaved with traffic, directory corruption followed
by anti-entropy repair, and epoch resync after cold restarts.  After every
recovery action the directory must satisfy the slot-discipline invariant
(every dpcKey free XOR backing exactly one valid entry) and continue to
serve byte-correct pages.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.errors import AssemblyError
from repro.faults.injectors import CORRUPTION_MODES, DirectoryCorruption, FaultContext
from repro.faults.recovery import ResyncProtocol
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books

CATEGORIES = ("Fiction", "Science", "History")


def books_stack(capacity):
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=capacity, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=capacity)
    return server, bem, dpc


def serve(server, dpc, index):
    request = HttpRequest(
        "/catalog.jsp",
        {"categoryID": CATEGORIES[index % len(CATEGORIES)]},
        session_id="s%d" % (index % 2),
    )
    page = dpc.process_response(server.handle(request).body)
    assert page.html == server.render_reference_page(request)


events = st.lists(
    st.one_of(
        st.tuples(st.just("serve"), st.integers(0, 11)),
        st.tuples(st.just("crash"), st.integers(0, 0)),
        st.tuples(st.just("flush"), st.integers(0, 0)),
    ),
    min_size=1,
    max_size=25,
)


@given(events, st.integers(2, 16))
@settings(max_examples=60, deadline=None)
def test_slot_discipline_across_crash_and_flush(schedule, capacity):
    """Random crash/flush/traffic interleavings: recovery always restores
    slot discipline and correct service."""
    server, bem, dpc = books_stack(capacity)
    resync = ResyncProtocol(bem, dpc)
    for kind, index in schedule:
        if kind == "serve":
            try:
                serve(server, dpc, index)
            except AssemblyError:
                resync.recover()
                serve(server, dpc, index)  # must succeed after recovery
        elif kind == "crash":
            dpc.clear()
        else:  # flush: the paper's documented restart protocol half
            bem.flush()
        bem.directory.check_invariants()
    resync.recover()
    bem.directory.check_invariants()
    assert bem.directory.valid_count() + len(bem.directory.free_list) == capacity


@given(
    st.sampled_from(sorted(CORRUPTION_MODES)),
    st.integers(1, 8),
    st.integers(0, 1000),
    st.integers(4, 16),
)
@settings(max_examples=60, deadline=None)
def test_anti_entropy_repairs_any_corruption(mode, count, seed, capacity):
    """Every corruption mode, any victim choice: one sweep restores the
    invariant and correct service resumes."""
    server, bem, dpc = books_stack(capacity)
    for index in range(6):
        serve(server, dpc, index)
    ctx = FaultContext(clock=SimulatedClock(), bem=bem, dpc=dpc)
    DirectoryCorruption(at=0.0, mode=mode, count=count, seed=seed).start(ctx)

    resync = ResyncProtocol(bem, dpc)
    resync.anti_entropy()

    bem.directory.check_invariants()
    assert bem.directory.valid_count() + len(bem.directory.free_list) == capacity
    for index in range(6):
        try:
            serve(server, dpc, index)
        except AssemblyError:
            resync.recover()
            serve(server, dpc, index)


@given(st.integers(1, 4), st.integers(2, 12))
@settings(max_examples=40, deadline=None)
def test_epoch_resync_after_repeated_restarts(restarts, capacity):
    """N cold restarts in a row: the epoch protocol converges and never
    strands a pre-restart entry as valid."""
    server, bem, dpc = books_stack(capacity)
    resync = ResyncProtocol(bem, dpc)
    for round_index in range(restarts):
        for index in range(4):
            serve(server, dpc, index + round_index)
        dpc.clear()
        resync.observe_epoch(dpc.epoch)
        assert bem.epoch == dpc.epoch == round_index + 1
        assert all(
            entry.epoch == bem.epoch for entry in bem.directory.valid_entries()
        )
        bem.directory.check_invariants()
    for index in range(4):
        serve(server, dpc, index)
