"""The Back End Monitor (BEM), §4.3.

The BEM "resides at the back end and has two primary functions:
(1) managing the cache for the DPC, and (2) caching intermediate objects."

Function (1) is the run-time protocol of §4.3.2: when a tagged code block is
encountered, look up its fragmentID in the cache directory and emit either

* **case 1** (miss / invalid): insert a directory entry, run the block to
  generate the content, and write a ``SET`` instruction to the template; or
* **case 2** (fresh hit): write only a ``GET`` instruction — the block's
  body never runs and its bytes never cross the wire.

Function (2) is an intermediate-object cache (:class:`ObjectCache`): the
user-profile object of the §3.2.2 example is fetched once per request chain
and shared by every fragment that derives from it, which is the semantic
interdependence that defeats ESI-style page factoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..network.clock import SimulatedClock
from .cache_directory import CacheDirectory
from .fragments import FragmentID, FragmentMetadata
from .invalidation import InvalidationManager
from .replacement import ReplacementPolicy, make_policy
from .template import (
    DEFAULT_CONFIG,
    GetInstruction,
    Instruction,
    Literal,
    SetInstruction,
    TemplateConfig,
)


@dataclass
class BemStats:
    """Run-time counters for experiments and monitoring."""

    blocks_processed: int = 0
    cacheable_blocks: int = 0
    fragment_hits: int = 0
    fragment_misses: int = 0
    bytes_generated: int = 0      # fragment bytes actually computed
    bytes_served_from_dpc: int = 0  # fragment bytes replaced by GET tags
    object_hits: int = 0
    object_misses: int = 0
    #: Fragments served past TTL (within the degrader's grace window)
    #: because the request was already past its deadline — regeneration
    #: was skipped to bound latency, at a bounded correctness cost.
    stale_fragment_serves: int = 0

    @property
    def fragment_hit_ratio(self) -> float:
        """Directory hits over all cacheable-block accesses."""
        total = self.fragment_hits + self.fragment_misses
        if total == 0:
            return 0.0
        return self.fragment_hits / total


class ObjectCache:
    """BEM function (2): memoized intermediate (programmatic) objects.

    Keys are arbitrary strings (e.g. ``profile:bob``); values arbitrary
    Python objects.  Entries honor a TTL and can be invalidated explicitly
    or wholesale.  This is component-level caching in the style the authors
    describe in their VLDB'01 work, scoped to what the reproduction needs.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._entries: Dict[str, Tuple[object, Optional[float], float]] = {}
        self.hits = 0
        self.misses = 0

    def fetch(
        self,
        key: str,
        compute: Callable[[], object],
        ttl: Optional[float] = None,
    ) -> object:
        """Return the cached object for ``key``, computing it on a miss."""
        now = self._clock.now()
        cached = self._entries.get(key)
        if cached is not None:
            value, entry_ttl, created_at = cached
            if entry_ttl is None or now < created_at + entry_ttl:
                self.hits += 1
                return value
            del self._entries[key]
        self.misses += 1
        value = compute()
        self._entries[key] = (value, ttl, now)
        return value

    def invalidate(self, key: str) -> bool:
        """Drop one memoized object; True if it existed."""
        return self._entries.pop(key, None) is not None

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every object whose key starts with ``prefix``."""
        doomed = [key for key in self._entries if key.startswith(prefix)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every memoized object."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class BackEndMonitor:
    """Observes script execution and writes the page template (§4.3.2)."""

    def __init__(
        self,
        capacity: int = 1024,
        clock: Optional[SimulatedClock] = None,
        policy: Optional[ReplacementPolicy] = None,
        template_config: TemplateConfig = DEFAULT_CONFIG,
    ) -> None:
        if capacity > template_config.max_key + 1:
            raise ConfigurationError(
                "capacity %d exceeds the %d keys representable with key_width=%d"
                % (capacity, template_config.max_key + 1, template_config.key_width)
            )
        self.clock = clock if clock is not None else SimulatedClock()
        self.directory = CacheDirectory(capacity, policy=policy)
        self.invalidation = InvalidationManager(self.directory)
        self.objects = ObjectCache(self.clock)
        self.template_config = template_config
        self.stats = BemStats()
        #: The DPC generation this directory is synchronized against.  New
        #: entries are stamped with it; the resync protocol
        #: (:mod:`repro.faults.recovery`) advances it when it observes a
        #: restarted proxy and drops entries stamped with older epochs.
        self.epoch = 0
        #: Transient per-request deadline (absolute virtual time), set by
        #: the application server around script execution.  ``None`` means
        #: no deadline pressure — the pre-overload behavior.
        self.deadline_at: Optional[float] = None
        #: Duck-typed :class:`repro.faults.degradation.GracefulDegrader`
        #: (anything exposing ``stale_lookup(fragment_id, now)``); enables
        #: the late-request stale-fragment fallback.
        self._degrader = None

    @classmethod
    def with_policy(cls, capacity: int, policy_name: str, **kwargs) -> "BackEndMonitor":
        """Construct a BEM with a replacement policy chosen by name."""
        return cls(capacity=capacity, policy=make_policy(policy_name), **kwargs)

    # -- the run-time protocol ----------------------------------------------------

    def process_block(
        self,
        fragment_id: FragmentID,
        metadata: FragmentMetadata,
        generate: Callable[[], str],
    ) -> Instruction:
        """Handle one tagged code block; returns the template instruction.

        ``generate`` is the block's body.  It is invoked *only* on a miss —
        skipping it on hits is where the server-side computation savings of
        the approach come from.
        """
        self.stats.blocks_processed += 1
        now = self.clock.now()
        if not metadata.cacheable:
            # Untagged block (X_j = 0): always executes, ships as literal.
            content = generate()
            self.stats.bytes_generated += len(content.encode("utf-8"))
            return Literal(content)

        self.stats.cacheable_blocks += 1
        if (
            self._degrader is not None
            and self.deadline_at is not None
            and now >= self.deadline_at
        ):
            # The request is already late: a full regeneration can only
            # make it later.  Prefer whatever the directory still holds.
            # A TTL-expired entry within the degrader's grace window is
            # served via the non-mutating stale probe *before* lookup() so
            # lazy TTL expiry cannot free the slot out from under the GET
            # we are about to emit; a still-fresh entry falls through to
            # the normal lookup() below so it keeps its recency and hit
            # bookkeeping instead of becoming a preferential LRU victim.
            stale = self._degrader.stale_lookup(fragment_id, now)
            if stale is not None and not stale.fresh(now):
                self.stats.stale_fragment_serves += 1
                return GetInstruction(stale.dpc_key)
        entry = self.directory.lookup(fragment_id, now)
        if entry is not None:
            # Case 2: fresh hit -> GET instruction only.
            self.stats.fragment_hits += 1
            self.stats.bytes_served_from_dpc += entry.size_bytes
            return GetInstruction(entry.dpc_key)

        # Case 1: miss or invalid -> generate, insert entry, SET instruction.
        self.stats.fragment_misses += 1
        content = generate()
        size = len(content.encode("utf-8"))
        self.stats.bytes_generated += size
        entry = self.directory.insert(fragment_id, metadata, size, now, epoch=self.epoch)
        if metadata.dependencies:
            self.invalidation.watch(fragment_id, tuple(metadata.dependencies))
        return SetInstruction(entry.dpc_key, content)

    # -- management surface ---------------------------------------------------------

    def attach_database(self, bus) -> None:
        """Wire a database's trigger bus into the invalidation manager."""
        self.invalidation.attach(bus)

    def attach_insight(self, insight) -> None:
        """Attach a miss-cause/reuse observer to the cache directory.

        ``insight`` is duck-typed (normally a
        :class:`repro.insight.InsightLayer`) and simply forwarded to
        :meth:`repro.core.cache_directory.CacheDirectory.attach_insight`,
        mirroring :meth:`attach_degrader` so the core stays
        import-independent of the insight subsystem.
        """
        self.directory.attach_insight(insight)

    def attach_degrader(self, degrader) -> None:
        """Enable the stale-on-late fallback for deadline-pressured requests.

        ``degrader`` is duck-typed (anything exposing
        ``stale_lookup(fragment_id, now)``, normally a
        :class:`repro.faults.degradation.GracefulDegrader`) so the core
        stays import-independent of the fault subsystem.
        """
        self._degrader = degrader

    def invalidate_fragment(
        self, name: str, params: Optional[Dict[str, object]] = None
    ) -> bool:
        """Explicit invalidation by fragment identity (admin/API surface)."""
        return self.directory.invalidate(FragmentID.create(name, params))

    def invalidate_block(self, name: str) -> int:
        """Invalidate every cached instance of a block, across parameters."""
        return self.directory.invalidate_where(
            lambda entry: entry.fragment_id.name == name
        )

    def flush(self) -> int:
        """Invalidate everything (e.g. on deploy of new script versions)."""
        self.objects.clear()
        return self.directory.invalidate_all()

    @property
    def hit_ratio(self) -> float:
        """Directory hits over all cacheable-block accesses."""
        return self.stats.fragment_hit_ratio

    def metric_rows(self) -> List[tuple]:
        """Registry rows: the BEM's health under ``bem.*``/``directory.*``.

        Same rows, order, and rounding the deployment snapshot always
        published (``objects.memoized`` now spelled ``bem.objects.memoized``
        per the dotted-name normalization).
        """
        return [
            ("bem.epoch", self.epoch),
            ("bem.blocks_processed", self.stats.blocks_processed),
            ("bem.fragment_hits", self.stats.fragment_hits),
            ("bem.fragment_misses", self.stats.fragment_misses),
            ("bem.hit_ratio", round(self.stats.fragment_hit_ratio, 4)),
            ("bem.bytes_generated", self.stats.bytes_generated),
            ("bem.bytes_served_from_dpc", self.stats.bytes_served_from_dpc),
            ("directory.valid_entries", self.directory.valid_count()),
            ("directory.capacity", self.directory.capacity),
            (
                "directory.utilization",
                round(self.directory.valid_count() / self.directory.capacity, 4),
            ),
            ("directory.evictions", self.directory.stats.evictions),
            ("directory.invalidations", self.directory.stats.invalidations),
            ("directory.ttl_expirations", self.directory.stats.ttl_expirations),
            (
                "invalidation.fragments_invalidated",
                self.invalidation.fragments_invalidated,
            ),
            ("bem.objects.memoized", len(self.objects)),
        ]
