"""The in-memory database engine: DDL, statement execution, and statistics.

Stands in for the paper's Oracle 8.1.6 instance.  It supports exactly what
the reproduction's dynamic scripts need — typed tables, equality-indexed
lookups, the tiny SQL dialect, and change notification — while tracking the
row-touch counts that feed the generation-delay model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import QueryError, SchemaError
from ..telemetry.tracing import NULL_TRACER
from .transactions import TransactionManager, undo_event_on
from .schema import TableSchema
from .sql import (
    PLACEHOLDER,
    Condition,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    count_placeholders,
    parse,
)
from .table import Table
from .triggers import TriggerBus


@dataclass
class QueryResult:
    """Outcome of one executed statement.

    ``rows`` is populated for SELECT; ``rowcount`` is the number of rows
    returned (SELECT) or affected (INSERT/UPDATE/DELETE).  ``rows_touched``
    is the number of stored rows the execution examined — the quantity the
    latency model charges for.
    """

    rows: List[Dict[str, object]]
    rowcount: int
    rows_touched: int


class Database:
    """A named collection of tables sharing one trigger bus.

    Mutations publish change events through a :class:`TransactionManager`:
    in autocommit (the default) events reach listeners immediately; inside
    ``with db.transaction():`` they are delivered atomically at commit, or
    undone and discarded on rollback.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.bus = TriggerBus()
        self.transactions = TransactionManager(self.bus)
        self._tables: Dict[str, Table] = {}
        self.statements_executed = 0
        self._queue = None
        self._queue_clock = None
        self._queue_service_s_per_row = 0.0
        #: Cumulative virtual seconds statements spent waiting for a
        #: connection (only grows while a bounded queue is attached).
        self.queue_wait_s = 0.0
        #: Tracer wrapping connection-pool waits in ``queue.wait`` spans
        #: (the only place the engine advances the shared clock).
        self.tracer = NULL_TRACER

    # -- bounded connection pool --------------------------------------------------

    def attach_queue(self, queue, clock, service_s_per_row: float = 5e-5) -> None:
        """Model a bounded connection pool in front of statement execution.

        ``queue`` is duck-typed (normally a
        :class:`repro.overload.queues.BoundedQueue`); each executed
        statement occupies a pool connection for
        ``rows_touched * service_s_per_row`` virtual seconds and advances
        ``clock`` by any queueing delay it experiences.  When the pool's
        waiting room is full the offer raises
        :class:`~repro.errors.QueueFullError` — callers running under a
        BEM should pre-screen admission (as
        :meth:`repro.appserver.server.ApplicationServer._screen_admission`
        does) so a mid-script rejection cannot leave a partially emitted
        template behind.
        """
        self._queue = queue
        self._queue_clock = clock
        self._queue_service_s_per_row = service_s_per_row

    def detach_queue(self) -> None:
        """Remove the connection-pool model; execution is free again."""
        self._queue = None
        self._queue_clock = None
        self._queue_service_s_per_row = 0.0

    # -- DDL ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a schema; its events publish transactionally."""
        if schema.name in self._tables:
            raise SchemaError("table %r already exists" % schema.name)
        # Tables publish through the transaction manager (same .publish
        # interface as the bus) so events can be buffered per-transaction.
        table = Table(schema, bus=self.transactions)
        self._tables[schema.name] = table
        return table

    # -- transactions ------------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction; events buffer until commit."""
        self.transactions.begin()

    def commit(self) -> int:
        """Deliver the buffered events in order; returns how many."""
        return self.transactions.commit()

    def rollback(self) -> int:
        """Undo every mutation of the open transaction; returns how many."""
        return self.transactions.rollback(
            lambda event: undo_event_on(self.table(event.table), event)
        )

    def transaction(self):
        """``with db.transaction():`` — commit on success, rollback on error."""

        @contextmanager
        def _txn():
            self.begin()
            try:
                yield self
            except BaseException:
                self.rollback()
                raise
            self.commit()

        return _txn()

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction is currently open."""
        return self.transactions.in_transaction

    def drop_table(self, name: str) -> None:
        """Remove a table and its rows."""
        if name not in self._tables:
            raise SchemaError("no table named %r" % name)
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name; raises QueryError if unknown."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError("no table named %r" % name) from None

    def table_names(self) -> List[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    # -- statement execution -----------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> QueryResult:
        """Parse and execute one statement with positional parameters."""
        statement = parse(sql)
        return self.execute_statement(statement, params)

    def execute_statement(
        self, statement: Statement, params: Sequence[object] = ()
    ) -> QueryResult:
        """Execute a pre-parsed statement with positional parameters."""
        expected = count_placeholders(statement)
        if expected != len(params):
            raise QueryError(
                "statement has %d placeholders but %d parameters were given"
                % (expected, len(params))
            )
        self.statements_executed += 1
        binder = _ParamBinder(params)
        if isinstance(statement, SelectStatement):
            result = self._execute_select(statement, binder)
        elif isinstance(statement, InsertStatement):
            result = self._execute_insert(statement, binder)
        elif isinstance(statement, UpdateStatement):
            result = self._execute_update(statement, binder)
        elif isinstance(statement, DeleteStatement):
            result = self._execute_delete(statement, binder)
        else:  # pragma: no cover
            raise QueryError("unsupported statement %r" % (statement,))
        if self._queue is not None:
            service_s = max(1, result.rows_touched) * self._queue_service_s_per_row
            placement = self._queue.offer(self._queue_clock.now(), service_s)
            if placement.wait_s > 0:
                self.queue_wait_s += placement.wait_s
                with self.tracer.span("queue.wait", queue="db"):
                    self._queue_clock.advance(placement.wait_s)
        return result

    # -- SELECT ---------------------------------------------------------------

    def _execute_select(
        self, statement: SelectStatement, binder: "_ParamBinder"
    ) -> QueryResult:
        table = self.table(statement.table)
        bound = [(cond, binder.bind(cond.value)) for cond in statement.where]
        self._validate_columns(table, statement)
        before = table.rows_read
        rows = self._candidate_rows(table, bound)
        if statement.is_aggregate:
            rows = _aggregate_rows(statement, rows)
            if statement.limit is not None:
                rows = rows[: statement.limit]
            return QueryResult(
                rows=rows, rowcount=len(rows),
                rows_touched=table.rows_read - before,
            )
        if statement.order_by is not None:
            table.schema.column(statement.order_by)
            rows.sort(
                key=lambda row: _sort_key(row[statement.order_by]),
                reverse=statement.descending,
            )
        if statement.limit is not None:
            rows = rows[: statement.limit]
        if not statement.is_star:
            rows = [
                {column: row[column] for column in statement.columns} for row in rows
            ]
        return QueryResult(
            rows=rows, rowcount=len(rows), rows_touched=table.rows_read - before
        )

    def _validate_columns(self, table: Table, statement: SelectStatement) -> None:
        for column in statement.columns:
            table.schema.column(column)
        for cond in statement.where:
            table.schema.column(cond.column)
        for aggregate in statement.aggregates:
            if aggregate.column is not None:
                table.schema.column(aggregate.column)
        if statement.group_by is not None:
            table.schema.column(statement.group_by)

    def _candidate_rows(
        self, table: Table, bound: List[Tuple[Condition, object]]
    ) -> List[Dict[str, object]]:
        """Fetch rows matching all conditions, using one index if possible."""
        index_cond = None
        for cond, value in bound:
            if cond.op == "=" and (
                table.has_index(cond.column)
                or cond.column == table.schema.primary_key
            ):
                index_cond = (cond, value)
                break
        if index_cond is not None:
            cond, value = index_cond
            if cond.column == table.schema.primary_key and not table.has_index(
                cond.column
            ):
                row = table.get(value)
                candidates = [row] if row is not None else []
            else:
                candidates = table.lookup(cond.column, value)
            remaining = [(c, v) for c, v in bound if c is not cond]
        else:
            candidates = list(table.scan())
            remaining = bound
        return [
            row
            for row in candidates
            if all(cond.matches(row[cond.column], value) for cond, value in remaining)
        ]

    # -- INSERT / UPDATE / DELETE ---------------------------------------------

    def _execute_insert(
        self, statement: InsertStatement, binder: "_ParamBinder"
    ) -> QueryResult:
        table = self.table(statement.table)
        row = {
            column: binder.bind(value)
            for column, value in zip(statement.columns, statement.values)
        }
        table.insert(row)
        return QueryResult(rows=[], rowcount=1, rows_touched=1)

    def _execute_update(
        self, statement: UpdateStatement, binder: "_ParamBinder"
    ) -> QueryResult:
        table = self.table(statement.table)
        changes = {
            column: binder.bind(value) for column, value in statement.assignments
        }
        bound = [(cond, binder.bind(cond.value)) for cond in statement.where]
        before = table.rows_read
        predicate = _predicate_for(bound) if bound else None
        count = table.update(changes, where=predicate)
        return QueryResult(
            rows=[], rowcount=count, rows_touched=table.rows_read - before + count
        )

    def _execute_delete(
        self, statement: DeleteStatement, binder: "_ParamBinder"
    ) -> QueryResult:
        table = self.table(statement.table)
        bound = [(cond, binder.bind(cond.value)) for cond in statement.where]
        before = table.rows_read
        predicate = _predicate_for(bound) if bound else None
        count = table.delete(where=predicate)
        return QueryResult(
            rows=[], rowcount=count, rows_touched=table.rows_read - before + count
        )

    # -- statistics ----------------------------------------------------------------

    def total_rows_read(self) -> int:
        """Rows read across all tables since the last reset."""
        return sum(table.rows_read for table in self._tables.values())

    def total_rows_written(self) -> int:
        """Rows written across all tables since the last reset."""
        return sum(table.rows_written for table in self._tables.values())

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows: execution and wait totals under ``db.*``."""
        return [
            ("db.statements_executed", self.statements_executed),
            ("db.rows_read", self.total_rows_read()),
            ("db.queue_wait_s", round(self.queue_wait_s, 6)),
            ("db.tables", len(self._tables)),
        ]

    def reset_counters(self) -> None:
        """Zero statement and row counters on every table."""
        self.statements_executed = 0
        for table in self._tables.values():
            table.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Database(%r, tables=%s)" % (self.name, self.table_names())


class _ParamBinder:
    """Replaces ``?`` placeholders with positional parameters, in order."""

    def __init__(self, params: Sequence[object]) -> None:
        self._params = list(params)
        self._next = 0

    def bind(self, value: object) -> object:
        if value is PLACEHOLDER:
            bound = self._params[self._next]
            self._next += 1
            return bound
        return value


def _predicate_for(bound: List[Tuple[Condition, object]]):
    def predicate(row: Dict[str, object]) -> bool:
        return all(cond.matches(row[cond.column], value) for cond, value in bound)

    return predicate


def _aggregate_rows(
    statement: SelectStatement, rows: List[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Evaluate aggregates, optionally grouped by one column.

    SQL semantics: over an empty input, COUNT is 0 and the other
    aggregates are NULL; with GROUP BY, empty input yields no groups.
    """
    if statement.group_by is None:
        return [_aggregate_group(statement, None, rows)]
    groups: Dict[object, List[Dict[str, object]]] = {}
    order: List[object] = []
    for row in rows:
        key = row[statement.group_by]
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    order.sort(key=_sort_key)
    return [_aggregate_group(statement, key, groups[key]) for key in order]


def _aggregate_group(
    statement: SelectStatement, key: object, rows: List[Dict[str, object]]
) -> Dict[str, object]:
    result: Dict[str, object] = {}
    if statement.group_by is not None:
        result[statement.group_by] = key
    for aggregate in statement.aggregates:
        if aggregate.column is None:
            result[aggregate.result_name] = len(rows)
            continue
        values = [
            row[aggregate.column] for row in rows
            if row[aggregate.column] is not None
        ]
        if aggregate.func == "count":
            result[aggregate.result_name] = len(values)
        elif not values:
            result[aggregate.result_name] = None
        elif aggregate.func == "sum":
            result[aggregate.result_name] = sum(values)
        elif aggregate.func == "avg":
            result[aggregate.result_name] = sum(values) / len(values)
        elif aggregate.func == "min":
            result[aggregate.result_name] = min(values)
        elif aggregate.func == "max":
            result[aggregate.result_name] = max(values)
    return result


def _sort_key(value: object) -> Tuple[int, object]:
    """Total order with NULLs first and mixed types kept apart."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))
