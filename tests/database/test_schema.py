"""Tests for table schemas and value validation."""

import pytest

from repro.database.schema import Column, TableSchema, schema
from repro.errors import SchemaError


class TestColumn:
    def test_valid_column(self):
        col = Column("price", "float")
        assert col.validate_value(3) == 3.0
        assert col.validate_value(3.5) == 3.5

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name!", "int")

    def test_not_null_enforced(self):
        col = Column("x", "int")
        with pytest.raises(SchemaError):
            col.validate_value(None)

    def test_nullable_accepts_none(self):
        assert Column("x", "int", nullable=True).validate_value(None) is None

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "int").validate_value("five")

    def test_bool_not_accepted_for_int(self):
        with pytest.raises(SchemaError):
            Column("x", "int").validate_value(True)

    def test_bool_column_accepts_bool(self):
        assert Column("x", "bool").validate_value(True) is True

    def test_int_accepted_for_float_and_coerced(self):
        value = Column("x", "float").validate_value(7)
        assert value == 7.0
        assert isinstance(value, float)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", (Column("a", "int"), Column("a", "str")), primary_key="a"
            )

    def test_missing_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", "int"),), primary_key="zzz")

    def test_nullable_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", (Column("a", "int", nullable=True),), primary_key="a"
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (), primary_key="a")

    def test_validate_row_fills_nullable(self):
        s = schema("t", [("a", "int"), ("b", "str")], nullable=["b"])
        row = s.validate_row({"a": 1})
        assert row == {"a": 1, "b": None}

    def test_validate_row_missing_required(self):
        s = schema("t", [("a", "int"), ("b", "str")])
        with pytest.raises(SchemaError):
            s.validate_row({"a": 1})

    def test_validate_row_unknown_column(self):
        s = schema("t", [("a", "int")])
        with pytest.raises(SchemaError):
            s.validate_row({"a": 1, "zzz": 2})

    def test_column_lookup(self):
        s = schema("t", [("a", "int"), ("b", "str")])
        assert s.column("b").type == "str"
        assert s.has_column("a")
        assert not s.has_column("c")
        with pytest.raises(SchemaError):
            s.column("c")

    def test_default_pk_is_first_column(self):
        s = schema("t", [("a", "int"), ("b", "str")])
        assert s.primary_key == "a"
