"""Model-View-Controller layering helpers (§2.2.2's n-tier architecture).

The paper's Figure 1 workflow walks presentation -> business logic -> data
access, and §3.2.2 argues that ESI-style page factoring "is a major
departure from the standard Model-View-Controller design paradigm".  The
reference sites in this reproduction are therefore written in an explicit
MVC shape — controllers orchestrate, models query, views format — to
demonstrate that DPC tagging slots into that structure without redesign:
tags wrap *view* emissions, leaving controllers and models untouched.

These helpers also centralize the cross-tier hop accounting used by the
latency model: each layer boundary crossed is one hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import AppServerError


@dataclass
class TierAccounting:
    """Counts layer-boundary crossings for the generation-delay model."""

    presentation_calls: int = 0
    business_calls: int = 0
    data_access_calls: int = 0

    @property
    def cross_tier_hops(self) -> int:
        """Each non-presentation call is one hop down plus one return."""
        return self.business_calls + self.data_access_calls

    def reset(self) -> None:
        """Zero all per-request tier counters."""
        self.presentation_calls = 0
        self.business_calls = 0
        self.data_access_calls = 0


class View:
    """Formats model data into HTML.  Presentation layer."""

    def __init__(self, render: Callable[..., str]) -> None:
        self._render = render

    def render(self, accounting: TierAccounting, **model: object) -> str:
        """Format model data into HTML (one presentation call)."""
        accounting.presentation_calls += 1
        return self._render(**model)


class BusinessComponent:
    """An EJB-like business-logic component.  Business layer."""

    def __init__(self, name: str, logic: Callable[..., object]) -> None:
        self.name = name
        self._logic = logic
        self.invocations = 0

    def invoke(self, accounting: TierAccounting, **inputs: object) -> object:
        """Run the business logic (one cross-tier hop)."""
        accounting.business_calls += 1
        self.invocations += 1
        return self._logic(**inputs)


class DataAccessor:
    """A JDBC/ODBC-like data-access wrapper.  Data-access layer."""

    def __init__(self, name: str, fetch: Callable[..., object]) -> None:
        self.name = name
        self._fetch = fetch
        self.invocations = 0

    def fetch(self, accounting: TierAccounting, **inputs: object) -> object:
        """Fetch via the data-access layer (one cross-tier hop)."""
        accounting.data_access_calls += 1
        self.invocations += 1
        return self._fetch(**inputs)


class ComponentRegistry:
    """Named business components and data accessors for one site."""

    def __init__(self) -> None:
        self._components: Dict[str, BusinessComponent] = {}
        self._accessors: Dict[str, DataAccessor] = {}

    def component(self, name: str, logic: Callable[..., object]) -> BusinessComponent:
        """Register a named business component."""
        if name in self._components:
            raise AppServerError("business component %r already registered" % name)
        component = BusinessComponent(name, logic)
        self._components[name] = component
        return component

    def accessor(self, name: str, fetch: Callable[..., object]) -> DataAccessor:
        """Register a named data accessor."""
        if name in self._accessors:
            raise AppServerError("data accessor %r already registered" % name)
        accessor = DataAccessor(name, fetch)
        self._accessors[name] = accessor
        return accessor

    def get_component(self, name: str) -> BusinessComponent:
        """Look up a business component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise AppServerError("no business component %r" % name) from None

    def get_accessor(self, name: str) -> DataAccessor:
        """Look up a data accessor by name."""
        try:
            return self._accessors[name]
        except KeyError:
            raise AppServerError("no data accessor %r" % name) from None

    def names(self) -> List[str]:
        """All registered component/accessor names."""
        return sorted(self._components) + sorted(self._accessors)
