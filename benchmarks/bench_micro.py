"""Microbenchmarks: the hot paths of the DPC/BEM machinery.

§7's scalability requirement: "the data structures and algorithms
underlying the system must scale, both in time and space requirements."
These measure the per-operation costs that bound a deployment's throughput:
the KMP tag scan, template parse+assembly, directory probes, and the
database's indexed lookups.
"""

import random

from repro.core.bem import BackEndMonitor
from repro.core.cache_directory import CacheDirectory
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.scanner import TagScanner
from repro.core.template import SENTINEL, Template
from repro.database import Database, schema
from repro.network.clock import SimulatedClock


def test_kmp_scan_throughput(benchmark):
    """Scanning a 64 KB tag-free response for the sentinel."""
    scanner = TagScanner(SENTINEL)
    text = ("The quick brown fox jumps over the lazy dog. " * 1456)[:65536]
    result = benchmark(scanner.positions, text)
    assert result == []


def test_template_parse_and_assemble(benchmark):
    """A warm 20-GET template through parse + slot splicing."""
    dpc = DynamicProxyCache(capacity=64)
    content = "y" * 1024
    cold = Template()
    warm = Template()
    for key in range(20):
        cold.set(key, content)
        warm.get(key)
    dpc.process_response(cold.serialize())
    wire = warm.serialize()

    page = benchmark(dpc.process_response, wire)
    assert page.page_bytes == 20 * 1024


def test_directory_probe(benchmark):
    """One warm cache-directory lookup (the per-block hit cost)."""
    directory = CacheDirectory(4096)
    ids = [FragmentID.create("f", {"i": i}) for i in range(1000)]
    for fragment_id in ids:
        directory.insert(fragment_id, FragmentMetadata(), 100, 0.0)
    probe = ids[123]

    entry = benchmark(directory.lookup, probe, 1.0)
    assert entry is not None


def test_bem_block_hit_path(benchmark):
    """The full process_block hit path (probe + GET emission)."""
    bem = BackEndMonitor(capacity=1024)
    fragment_id = FragmentID.create("hot", {"k": 1})
    meta = FragmentMetadata()
    bem.process_block(fragment_id, meta, lambda: "x" * 512)

    instruction = benchmark(bem.process_block, fragment_id, meta,
                            lambda: "never")
    assert instruction.key is not None


def test_indexed_lookup(benchmark):
    """Equality probe on an indexed column, 10k-row table."""
    db = Database()
    table = db.create_table(
        schema("t", [("k", "int"), ("cat", "str"), ("v", "int")])
    )
    table.create_index("cat")
    rng = random.Random(3)
    for i in range(10_000):
        table.insert({"k": i, "cat": "c%02d" % rng.randrange(50), "v": i})

    rows = benchmark(table.lookup, "cat", "c25")
    assert rows


def test_invalidation_fanout(benchmark):
    """One row update fanning out through the trigger bus to a BEM
    watching 200 fragments on other rows (the non-matching fast path)."""
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    db = Database()
    table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
    for i in range(256):
        table.insert({"k": i, "v": 0})
    bem.attach_database(db.bus)
    from repro.core.fragments import Dependency

    for i in range(200):
        fragment_id = FragmentID.create("f", {"i": i})
        meta = FragmentMetadata(dependencies=(Dependency("t", key=i),))
        bem.process_block(fragment_id, meta, lambda: "x")

    counter = iter(range(10**9))

    def update_unwatched():
        table.update({"v": next(counter)}, key=255)

    benchmark(update_unwatched)
