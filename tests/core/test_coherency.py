"""Tests for the distributed-proxy coherency group (§7 extension)."""

import pytest

from repro.core.coherency import ProxyGroup
from repro.core.fragments import Dependency, FragmentID, FragmentMetadata
from repro.core.template import GetInstruction, SetInstruction
from repro.database import Database, schema
from repro.errors import ConfigurationError


def fid(name, **params):
    return FragmentID.create(name, params or None)


@pytest.fixture
def group():
    g = ProxyGroup(capacity_per_proxy=16)
    g.add_proxy("edge-east")
    g.add_proxy("edge-west")
    return g


class TestMembership:
    def test_add_and_list(self, group):
        assert group.names() == ["edge-east", "edge-west"]
        assert len(group) == 2

    def test_duplicate_rejected(self, group):
        with pytest.raises(ConfigurationError):
            group.add_proxy("edge-east")

    def test_member_lookup(self, group):
        bem, dpc = group.member("edge-east")
        assert dpc.name == "edge-east"
        with pytest.raises(ConfigurationError):
            group.member("nowhere")

    def test_remove(self, group):
        group.remove_proxy("edge-west")
        assert group.names() == ["edge-east"]


class TestIndependentCopies:
    def test_fragment_copies_are_per_proxy(self, group):
        """The same fragment cached on two proxies is two directory
        entries with independent dpcKeys."""
        east_bem, _ = group.member("edge-east")
        west_bem, _ = group.member("edge-west")
        east_bem.process_block(fid("f"), FragmentMetadata(), lambda: "v")
        # West has never seen it: a miss there, independent of east.
        instruction = west_bem.process_block(fid("f"), FragmentMetadata(), lambda: "v")
        assert isinstance(instruction, SetInstruction)


class TestCoherency:
    def test_database_change_invalidates_every_copy(self, group):
        db = Database()
        table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        table.insert({"k": 1, "v": 0})
        group.attach_database(db.bus)

        meta = FragmentMetadata(dependencies=(Dependency("t", key=1),))
        for name in group.names():
            bem, _ = group.member(name)
            bem.process_block(fid("f"), meta, lambda: "v0")

        table.update({"v": 1}, key=1)

        for name in group.names():
            bem, _ = group.member(name)
            instruction = bem.process_block(fid("f"), meta, lambda: "v1")
            assert isinstance(instruction, SetInstruction), name

    def test_coherency_messages_counted(self, group):
        db = Database()
        table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        group.attach_database(db.bus)
        table.insert({"k": 1, "v": 0})
        assert group.coherency_messages == 2  # one per proxy

    def test_proxy_added_after_attach_still_observes(self):
        g = ProxyGroup(capacity_per_proxy=8)
        db = Database()
        table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        table.insert({"k": 1, "v": 0})
        g.attach_database(db.bus)
        g.add_proxy("late")
        bem, _ = g.member("late")
        meta = FragmentMetadata(dependencies=(Dependency("t", key=1),))
        bem.process_block(fid("f"), meta, lambda: "v0")
        table.update({"v": 1}, key=1)
        assert isinstance(
            bem.process_block(fid("f"), meta, lambda: "v1"), SetInstruction
        )

    def test_explicit_fragment_broadcast(self, group):
        for name in group.names():
            bem, _ = group.member(name)
            bem.process_block(fid("g", u="bob"), FragmentMetadata(), lambda: "x")
        assert group.invalidate_fragment("g", {"u": "bob"}) == 2

    def test_block_broadcast(self, group):
        for name in group.names():
            bem, _ = group.member(name)
            for user in ("a", "b"):
                bem.process_block(fid("g", u=user), FragmentMetadata(), lambda: "x")
        assert group.invalidate_block("g") == 4

    def test_flush_all(self, group):
        for name in group.names():
            bem, dpc = group.member(name)
            bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
            dpc.store(0, "x")
        assert group.flush_all() == 2
        for name in group.names():
            _, dpc = group.member(name)
            assert dpc.occupied_slots() == 0

    def test_group_hit_ratio(self, group):
        east_bem, _ = group.member("edge-east")
        east_bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        east_bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        assert group.group_hit_ratio() == 0.5

    def test_control_plane_carries_invalidation_traffic(self, group):
        from repro.network.channel import Channel

        channel = Channel("control", endpoint_a="client", endpoint_b="origin")
        group.use_control_plane(channel)
        for name in group.names():
            bem, _ = group.member(name)
            bem.process_block(fid("g", u="bob"), FragmentMetadata(), lambda: "x")
        assert group.invalidate_fragment("g", {"u": "bob"}) == 2
        assert channel.messages_sent == 2  # one control message per member
        assert group.dead_letter_flushes == 0

    def test_lost_invalidation_flushes_the_member(self, group):
        """A dead-lettered control message must never leave a stale copy
        valid: the group flushes that member's directory instead."""
        from repro.network.channel import Channel

        channel = Channel("control", endpoint_a="client", endpoint_b="origin")
        group.use_control_plane(channel)
        for name in group.names():
            bem, _ = group.member(name)
            bem.process_block(fid("g", u="bob"), FragmentMetadata(), lambda: "x")
        channel.close()  # the control plane partitions

        assert group.invalidate_fragment("g", {"u": "bob"}) == 0
        assert group.dead_letter_flushes == 2
        for name in group.names():
            bem, _ = group.member(name)
            assert not bem.directory.valid_entries(), name

    def test_control_plane_retries_ride_out_transient_loss(self, group):
        from repro.errors import MessageDropped
        from repro.faults.retry import ReliableDelivery, RetryPolicy
        from repro.network.channel import Channel

        channel = Channel("control", endpoint_a="client", endpoint_b="origin")
        drops = {"left": 1}

        def drop_once(message):
            if drops["left"] > 0:
                drops["left"] -= 1
                raise MessageDropped("transient")
            return 0.0

        channel.add_fault(drop_once)
        group.use_control_plane(
            channel, delivery=ReliableDelivery(RetryPolicy(max_attempts=3))
        )
        for name in group.names():
            bem, _ = group.member(name)
            bem.process_block(fid("g", u="bob"), FragmentMetadata(), lambda: "x")

        assert group.invalidate_fragment("g", {"u": "bob"}) == 2
        assert group.dead_letter_flushes == 0

    def test_removed_proxy_stops_observing(self, group):
        db = Database()
        db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        group.attach_database(db.bus)
        bem, _ = group.member("edge-west")
        group.remove_proxy("edge-west")
        db.table("t").insert({"k": 1, "v": 0})
        assert bem.invalidation.events_seen == 0
