"""BooksOnline: the paper's running e-commerce example, as a working site.

The paper's motivating scenarios all live here:

* ``/catalog.jsp?categoryID=Fiction`` — the Section 4 example request whose
  category page is assembled from cached fragments;
* registered vs non-registered users submitting the *same URL* and
  (correctly) receiving different pages — the Bob/Alice scenario that
  breaks URL-keyed proxy caches (§3.2.1);
* profile-controlled page layout — dynamic layout (§2.1), fatal to
  fixed-template page assembly (§3.2.2);
* the Personal Greeting / Recommended Products pair derived from one
  user-profile object — the semantic interdependence argument (§3.2.2).

Every view emission goes through the tagging API, so the same site runs
uncached (baseline), behind a DPC, behind a page-level cache, or behind an
ESI-style assembler — that is what the comparison benches exercise.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..appserver import ApplicationServer, DynamicScript, ScriptContext, SiteServices
from ..cms import (
    CONTENT_TABLE,
    ContentRepository,
    PersonalizationEngine,
    ProfileStore,
    PROFILE_TABLE,
)
from ..core.fragments import Dependency
from ..database import Database, schema

PRODUCTS_TABLE = "products"
REVIEWS_TABLE = "reviews"

_PRODUCTS_SCHEMA = schema(
    PRODUCTS_TABLE,
    [
        ("product_id", "str"),
        ("category", "str"),
        ("title", "str"),
        ("description", "str"),
        ("price", "float"),
        ("in_stock", "bool"),
    ],
    primary_key="product_id",
)

_REVIEWS_SCHEMA = schema(
    REVIEWS_TABLE,
    [
        ("review_id", "str"),
        ("product_id", "str"),
        ("stars", "int"),
        ("text", "str"),
    ],
    primary_key="review_id",
)


# ---------------------------------------------------------------------------
# Views (presentation layer)
# ---------------------------------------------------------------------------


def render_navbar(categories: List[str]) -> str:
    """Category navigation bar (shared by every page)."""
    links = "".join(
        '<a href="/catalog.jsp?categoryID=%s">%s</a> ' % (c, c) for c in categories
    )
    return "<nav>%s</nav>" % links


def render_greeting(greeting: str) -> str:
    """Personal greeting div; empty string for anonymous visitors."""
    if not greeting:
        return ""
    return '<div class="greeting">%s</div>' % greeting


def render_listing(category: str, products: List[Dict[str, object]]) -> str:
    """Product table for one category."""
    rows = "".join(
        "<tr><td>%s</td><td>%s</td><td>$%.2f</td></tr>"
        % (p["product_id"], p["title"], p["price"])
        for p in products
    )
    return '<table class="listing" data-category="%s">%s</table>' % (category, rows)


def render_recommendations(items: List[Dict[str, object]]) -> str:
    """Recommended-titles list from the personalization engine."""
    entries = "".join("<li>%s</li>" % item["title"] for item in items)
    return '<ul class="recs">%s</ul>' % entries


def render_promos(promos: List[Dict[str, object]]) -> str:
    """Site-wide promotional sidebar."""
    entries = "".join(
        '<div class="promo">%s: %s</div>' % (p["title"], p["body"]) for p in promos
    )
    return '<aside class="promos">%s</aside>' % entries


def render_product(product: Dict[str, object], reviews: List[Dict[str, object]]) -> str:
    """Product detail article with its reviews and average rating."""
    stars = sum(int(r["stars"]) for r in reviews)
    avg = (stars / len(reviews)) if reviews else 0.0
    review_html = "".join(
        '<blockquote data-stars="%d">%s</blockquote>' % (r["stars"], r["text"])
        for r in reviews
    )
    return (
        '<article class="product"><h1>%s</h1><p>%s</p><b>$%.2f</b>'
        '<span class="rating">%.1f</span>%s</article>'
        % (product["title"], product["description"], product["price"], avg, review_html)
    )


def render_cart_status(session) -> str:
    """Per-session cart indicator (never cacheable)."""
    items = session.get("cart_items", 0)
    return '<div class="cart">Cart: %d items</div>' % items


# ---------------------------------------------------------------------------
# Scripts (controllers)
# ---------------------------------------------------------------------------


class CatalogScript(DynamicScript):
    """``/catalog.jsp?categoryID=X`` — the paper's canonical page.

    Layout slots are emitted in the *profile's* order: two users with the
    same URL can get different fragment sets in different orders.
    """

    path = "/catalog.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Emit the category page in the profile's slot order."""
        services = ctx.services
        category = ctx.request.param("categoryID", "Fiction")
        user_id = ctx.session.user_id

        # §3.2.2 step (1): one profile fetch shared by several fragments.
        profile = ctx.memo(
            "profile:%s" % (user_id or ""),
            lambda: services.personalization.profile_for(user_id),
            ttl=60.0,
        )

        ctx.write("<html><head><title>%s | BooksOnline</title></head><body>" % category)
        for slot in services.personalization.layout_for(profile):
            if slot == "navigation":
                ctx.block(
                    "navbar",
                    {},
                    lambda: render_navbar(
                        sorted(
                            {
                                str(row["category"])
                                for row in services.db.table(PRODUCTS_TABLE).scan()
                            }
                        )
                    ),
                )
            elif slot == "greeting":
                ctx.block(
                    "greeting",
                    {"user": user_id or ""},
                    lambda: render_greeting(
                        services.personalization.greeting_for(profile)
                    ),
                )
            elif slot == "main":
                ctx.block(
                    "category_listing",
                    {"categoryID": category},
                    lambda: render_listing(
                        category,
                        services.db.table(PRODUCTS_TABLE).lookup("category", category),
                    ),
                )
            elif slot == "recommendations":
                ctx.block(
                    "recommendations",
                    {"user": user_id or ""},
                    lambda: render_recommendations(
                        services.personalization.recommendations_for(profile)
                    ),
                )
            elif slot == "promos" and profile.show_promos:
                # The show/hide decision is per-request layout logic made at
                # the origin; the fragment itself is user-independent.  An
                # under-parameterized fragmentID here (keying user-dependent
                # content by {}) would serve wrong pages — the tagging rule
                # is: every output-affecting input joins the parameter list.
                ctx.block(
                    "promos",
                    {},
                    lambda: render_promos(
                        services.personalization.promos_for(profile)
                    ),
                )
        # Per-session state: deliberately untagged (never cacheable).
        ctx.block("cart_status", {}, lambda: render_cart_status(ctx.session))
        ctx.write("</body></html>")


class ProductScript(DynamicScript):
    """``/product.jsp?productID=X`` — detail page with reviews."""

    path = "/product.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Emit the product detail page."""
        services = ctx.services
        product_id = ctx.request.param("productID")
        user_id = ctx.session.user_id
        profile = ctx.memo(
            "profile:%s" % (user_id or ""),
            lambda: services.personalization.profile_for(user_id),
            ttl=60.0,
        )

        ctx.write("<html><body>")
        ctx.block(
            "navbar",
            {},
            lambda: render_navbar(
                sorted(
                    {
                        str(row["category"])
                        for row in services.db.table(PRODUCTS_TABLE).scan()
                    }
                )
            ),
        )
        ctx.block(
            "greeting",
            {"user": user_id or ""},
            lambda: render_greeting(services.personalization.greeting_for(profile)),
        )
        ctx.block(
            "product_detail",
            {"productID": product_id},
            lambda: render_product(
                services.db.table(PRODUCTS_TABLE).get(product_id)
                or {"title": "Unknown", "description": "", "price": 0.0},
                services.db.table(REVIEWS_TABLE).lookup("product_id", product_id),
            ),
        )
        ctx.block("cart_status", {}, lambda: render_cart_status(ctx.session))
        ctx.write("</body></html>")


class CartScript(DynamicScript):
    """``/cart.jsp?action=add&productID=X`` — session-mutating interaction.

    Carts are pure per-session state: the cart page is almost entirely
    non-cacheable, yet it still reuses the shared navbar fragment — the
    point being that the DPC composes cached and per-request content in
    one response without any special casing.
    """

    path = "/cart.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Apply the cart action, then emit the cart page."""
        services = ctx.services
        action = ctx.request.param("action", "view")
        product_id = ctx.request.param("productID", "")
        cart: List[str] = list(ctx.session.get("cart_list", []))

        if action == "add" and product_id:
            if services.db.table(PRODUCTS_TABLE).get(product_id) is not None:
                cart.append(product_id)
        elif action == "remove" and product_id in cart:
            cart.remove(product_id)
        elif action == "clear":
            cart = []
        ctx.session.put("cart_list", cart)
        ctx.session.put("cart_items", len(cart))

        ctx.write("<html><body>")
        ctx.block(
            "navbar",
            {},
            lambda: render_navbar(
                sorted(
                    {
                        str(row["category"])
                        for row in services.db.table(PRODUCTS_TABLE).scan()
                    }
                )
            ),
        )
        # Cart contents: untagged, per-session, regenerated every time.
        def render_cart() -> str:
            rows = []
            for pid in cart:
                product = services.db.table(PRODUCTS_TABLE).get(pid)
                if product is not None:
                    rows.append(
                        "<tr><td>%s</td><td>$%.2f</td></tr>"
                        % (product["title"], product["price"])
                    )
            total = sum(
                float(services.db.table(PRODUCTS_TABLE).get(pid)["price"])
                for pid in cart
                if services.db.table(PRODUCTS_TABLE).get(pid) is not None
            )
            return (
                '<table class="cart-contents">%s'
                '<tr><td>Total</td><td>$%.2f</td></tr></table>'
                % ("".join(rows), total)
            )

        ctx.block("cart_contents", {}, render_cart)
        ctx.block("cart_status", {}, lambda: render_cart_status(ctx.session))
        ctx.write("</body></html>")


class HomeScript(DynamicScript):
    """``/home.jsp`` — personalized portal home."""

    path = "/home.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Emit the personalized portal home page."""
        services = ctx.services
        user_id = ctx.session.user_id
        profile = ctx.memo(
            "profile:%s" % (user_id or ""),
            lambda: services.personalization.profile_for(user_id),
            ttl=60.0,
        )
        ctx.write("<html><body>")
        for slot in services.personalization.layout_for(profile):
            if slot == "navigation":
                ctx.block(
                    "navbar",
                    {},
                    lambda: render_navbar(
                        sorted(
                            {
                                str(row["category"])
                                for row in services.db.table(PRODUCTS_TABLE).scan()
                            }
                        )
                    ),
                )
            elif slot == "greeting":
                ctx.block(
                    "greeting",
                    {"user": user_id or ""},
                    lambda: render_greeting(
                        services.personalization.greeting_for(profile)
                    ),
                )
            elif slot == "recommendations":
                ctx.block(
                    "recommendations",
                    {"user": user_id or ""},
                    lambda: render_recommendations(
                        services.personalization.recommendations_for(profile)
                    ),
                )
            elif slot == "promos" and profile.show_promos:
                ctx.block(
                    "promos",
                    {},
                    lambda: render_promos(services.personalization.promos_for(profile)),
                )
        ctx.write("</body></html>")


# ---------------------------------------------------------------------------
# Site assembly
# ---------------------------------------------------------------------------

#: Content categories used when seeding the catalog.
DEFAULT_CATEGORIES = ("Fiction", "NonFiction", "Science", "History", "Children")


def build_services(
    seed: int = 7,
    categories: tuple = DEFAULT_CATEGORIES,
    products_per_category: int = 8,
    reviews_per_product: int = 2,
    registered_users: int = 10,
) -> SiteServices:
    """Create and seed every back-end service for BooksOnline."""
    rng = random.Random(seed)
    db = Database("booksonline")
    products = db.create_table(_PRODUCTS_SCHEMA)
    products.create_index("category")
    reviews = db.create_table(_REVIEWS_SCHEMA)
    reviews.create_index("product_id")

    repository = ContentRepository(db)
    profiles = ProfileStore(db)
    personalization = PersonalizationEngine(repository, profiles)
    services = SiteServices(
        db=db,
        repository=repository,
        profiles=profiles,
        personalization=personalization,
    )

    _seed_catalog(rng, products, reviews, categories, products_per_category,
                  reviews_per_product)
    _seed_cms(rng, repository, categories)
    _seed_users(rng, profiles, categories, registered_users)
    _tag_blocks(services)
    return services


def build_server(services: Optional[SiteServices] = None, **server_kwargs) -> ApplicationServer:
    """An application server with the BooksOnline scripts registered."""
    if services is None:
        services = build_services()
    server = ApplicationServer(services, **server_kwargs)
    server.register(CatalogScript())
    server.register(ProductScript())
    server.register(HomeScript())
    server.register(CartScript())
    return server


def _seed_catalog(rng, products, reviews, categories, per_category, per_product) -> None:
    adjectives = ("Silent", "Hidden", "Last", "Golden", "Distant", "Broken", "Lost")
    nouns = ("Empire", "River", "Garden", "Theorem", "Voyage", "Archive", "Mirror")
    review_texts = (
        "Couldn't put it down.",
        "A thorough treatment of the subject.",
        "Not what I expected, but rewarding.",
        "The middle chapters drag a little.",
    )
    for category in categories:
        for i in range(per_category):
            product_id = "%s-%03d" % (category[:3].upper(), i)
            title = "The %s %s" % (rng.choice(adjectives), rng.choice(nouns))
            products.insert(
                {
                    "product_id": product_id,
                    "category": category,
                    "title": title,
                    "description": "A %s title about the %s."
                    % (category.lower(), rng.choice(nouns).lower()),
                    "price": round(rng.uniform(5.0, 60.0), 2),
                    "in_stock": rng.random() > 0.1,
                }
            )
            for j in range(per_product):
                reviews.insert(
                    {
                        "review_id": "%s-r%d" % (product_id, j),
                        "product_id": product_id,
                        "stars": rng.randint(1, 5),
                        "text": rng.choice(review_texts),
                    }
                )


def _seed_cms(rng, repository: ContentRepository, categories) -> None:
    for category in categories:
        for i in range(3):
            repository.put(
                content_id="%s-head-%d" % (category, i),
                kind="headline",
                category=category,
                title="%s news %d" % (category, i),
                body="Latest developments in %s, item %d." % (category, i),
                rank=i,
            )
        repository.put(
            content_id="%s-promo" % category,
            kind="promo",
            category=category,
            title="%s sale" % category,
            body="20%% off selected %s titles this week." % category,
            rank=rng.randint(0, 9),
        )


def _seed_users(rng, profiles: ProfileStore, categories, count: int) -> None:
    layouts = (
        ["navigation", "greeting", "main", "recommendations", "promos"],
        ["greeting", "navigation", "main", "promos", "recommendations"],
        ["navigation", "main", "greeting", "recommendations", "promos"],
    )
    for i in range(count):
        preferred = rng.sample(list(categories), k=min(2, len(categories)))
        profiles.register(
            user_id="user%03d" % i,
            display_name="User %03d" % i,
            preferred_categories=preferred,
            layout_order=list(rng.choice(layouts)),
            show_promos=rng.random() > 0.2,
        )


def _tag_blocks(services: SiteServices) -> None:
    """The initialization-phase tagging pass (§4.3.1) for BooksOnline."""
    tags = services.tags
    tags.tag(
        "navbar",
        ttl=600.0,
        dependencies=lambda params: (Dependency(PRODUCTS_TABLE, column="category"),),
    )
    tags.tag(
        "greeting",
        dependencies=lambda params: (
            (Dependency(PROFILE_TABLE, key=params["user"]),)
            if params.get("user")
            else ()
        ),
    )
    tags.tag(
        "category_listing",
        dependencies=lambda params: (
            Dependency(
                PRODUCTS_TABLE,
                where_column="category",
                where_value=params["categoryID"],
            ),
        ),
    )
    tags.tag(
        "recommendations",
        ttl=300.0,
        dependencies=lambda params: (
            Dependency(CONTENT_TABLE),
            *(
                (Dependency(PROFILE_TABLE, key=params["user"]),)
                if params.get("user")
                else ()
            ),
        ),
    )
    tags.tag(
        "promos",
        ttl=300.0,
        dependencies=lambda params: (
            Dependency(CONTENT_TABLE, where_column="kind", where_value="promo"),
        ),
    )
    tags.tag(
        "product_detail",
        dependencies=lambda params: (
            Dependency(PRODUCTS_TABLE, key=params["productID"]),
            Dependency(
                REVIEWS_TABLE,
                where_column="product_id",
                where_value=params["productID"],
            ),
        ),
    )
    # cart_status is deliberately NOT tagged: per-session, never cacheable.
