"""Firewall scan-cost model (Section 5's comparative analysis).

The paper charges a per-byte cost ``y`` for the firewall to scan traffic,
and observes that the DPC must *also* scan every response byte for tags
(linear-time KMP matching), at a per-byte cost ``z ~= y``.  Hence:

    scanCost_NC = B_NC * y          (firewall only)
    scanCost_C  = B_C  * (y + z)  ~= B_C * 2y

Result 1: the dynamic proxy cache wins on scan cost iff B_NC > 2 * B_C.

:class:`Firewall` meters bytes it scans; :class:`ScanCostMeter` aggregates
firewall and DPC scanning so experiments can report the Figure 3(a) / 6
"firewall savings" curve from measured traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .message import WireMessage

#: Default per-byte scan cost, in seconds.  The absolute value is arbitrary
#: (the paper's figures are percentages); 10 ns/byte is a plausible order of
#: magnitude for 2002-era packet filtering.
DEFAULT_SCAN_COST_PER_BYTE = 1e-8


@dataclass
class Firewall:
    """A per-byte scanning device on the site perimeter.

    Every message routed through the site crosses the firewall regardless of
    whether the DPC is deployed; what changes with the DPC is *how many
    bytes* cross it, plus the extra tag-scanning pass.
    """

    name: str = "firewall"
    scan_cost_per_byte: float = DEFAULT_SCAN_COST_PER_BYTE
    bytes_scanned: int = 0
    messages_scanned: int = 0

    def __post_init__(self) -> None:
        if self.scan_cost_per_byte < 0:
            raise ConfigurationError("scan cost cannot be negative")

    def scan(self, message: WireMessage) -> float:
        """Scan a message; returns the time spent scanning (seconds)."""
        self.bytes_scanned += message.payload_bytes
        self.messages_scanned += 1
        return message.payload_bytes * self.scan_cost_per_byte

    def scan_bytes(self, nbytes: int) -> float:
        """Scan a raw byte count (used when no message object exists)."""
        if nbytes < 0:
            raise ConfigurationError("cannot scan a negative byte count")
        self.bytes_scanned += nbytes
        return nbytes * self.scan_cost_per_byte

    @property
    def total_scan_cost(self) -> float:
        """Seconds spent scanning so far (bytes x per-byte cost)."""
        return self.bytes_scanned * self.scan_cost_per_byte

    def reset(self) -> None:
        """Zero the scan counters."""
        self.bytes_scanned = 0
        self.messages_scanned = 0

    def metric_rows(self) -> list:
        """Registry rows: scan work under ``firewall.*``."""
        return [
            ("firewall.bytes_scanned", self.bytes_scanned),
            ("firewall.messages_scanned", self.messages_scanned),
        ]


@dataclass
class ScanCostMeter:
    """Aggregates scanning work for the Section 5 cost comparison.

    ``firewall_bytes`` are scanned once at cost ``y``/byte; ``dpc_bytes``
    (template bytes the DPC scans for tags) are scanned at cost ``z``/byte.
    The paper sets z == y; both are configurable so the assumption itself
    can be stress-tested (see the ablation benches).
    """

    y_per_byte: float = DEFAULT_SCAN_COST_PER_BYTE
    z_per_byte: float = DEFAULT_SCAN_COST_PER_BYTE
    firewall_bytes: int = 0
    dpc_bytes: int = 0
    _extra: dict = field(default_factory=dict)

    def charge_firewall(self, nbytes: int) -> None:
        """Account bytes scanned by the firewall (cost y/byte)."""
        self.firewall_bytes += nbytes

    def charge_dpc_scan(self, nbytes: int) -> None:
        """Account bytes scanned by the DPC for tags (cost z/byte)."""
        self.dpc_bytes += nbytes

    @property
    def total_cost(self) -> float:
        """Combined scan cost across firewall and DPC passes."""
        return self.firewall_bytes * self.y_per_byte + self.dpc_bytes * self.z_per_byte

    def reset(self) -> None:
        """Zero both byte counters."""
        self.firewall_bytes = 0
        self.dpc_bytes = 0


def scan_cost_no_cache(b_nc: float, y: float = 1.0) -> float:
    """Equation (1): scanCost_NC = B_NC * y."""
    return b_nc * y


def scan_cost_with_cache(b_c: float, y: float = 1.0, z: float = None) -> float:
    """Equation (2): scanCost_C = B_C * (y + z), with z defaulting to y."""
    if z is None:
        z = y
    return b_c * (y + z)


def dpc_is_preferable(b_nc: float, b_c: float) -> bool:
    """Result 1: use the DPC iff B_NC > 2 * B_C (with z == y)."""
    return b_nc > 2.0 * b_c
