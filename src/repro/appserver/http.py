"""Minimal HTTP request/response objects with byte-exact size accounting.

The analysis (§5) charges every response ``f`` bytes of header information
(HTTP headers such as ``Server`` and ``Content-type``; Table 2 baseline
f = 500).  Requests also cross the measured link, so they get an explicit
size model too — the paper's Sniffer saw them, which is part of why the
experimental curves differ from the analytical ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError

#: Table 2 baseline: "average size of header information (f)".
DEFAULT_RESPONSE_HEADER_BYTES = 500

#: Typical request-line + header budget for a 2002-era browser request.
DEFAULT_REQUEST_HEADER_BYTES = 300


@dataclass(frozen=True)
class HttpRequest:
    """One client request.

    ``user_id`` models the authenticated identity carried by a login
    cookie; it is *not* part of the URL — which is exactly why URL-keyed
    caches confuse Bob with Alice (§3.2.1) while fragmentIDs do not.
    """

    path: str
    params: Mapping[str, str] = field(default_factory=dict)
    user_id: Optional[str] = None
    session_id: Optional[str] = None
    method: str = "GET"
    header_bytes: int = DEFAULT_REQUEST_HEADER_BYTES
    #: Virtual instant the request entered the system (set by the workload
    #: generator).  Bounded queues schedule against this, not against the
    #: drifting shared clock, so c-server queueing is modeled honestly.
    arrived_at: Optional[float] = None
    #: Absolute virtual deadline propagated from the client through proxy
    #: and origin.  ``None`` means "no deadline" (the pre-overload default).
    deadline_at: Optional[float] = None
    #: Queue priority (> 0 reaches capacity a ``priority``-discipline
    #: bounded queue reserves).  The proxy marks predicted cache hits
    #: priority so cheap traffic keeps flowing through a flash crowd.
    priority: int = 0
    #: Trace context (:class:`repro.telemetry.TraceContext`) stamped by an
    #: enabled tracer so downstream components can attach spans to the
    #: right tree.  Excluded from equality/repr: tracing a request must
    #: not change how caches and queues treat it.
    trace: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ConfigurationError("request path must start with '/'")
        if self.header_bytes < 0:
            raise ConfigurationError("header_bytes cannot be negative")
        if (
            self.arrived_at is not None
            and self.deadline_at is not None
            and self.deadline_at < self.arrived_at
        ):
            raise ConfigurationError("deadline cannot precede arrival")

    @property
    def url(self) -> str:
        """The request URL — what a page-level proxy cache keys on."""
        if not self.params:
            return self.path
        query = "&".join(
            "%s=%s" % (key, self.params[key]) for key in sorted(self.params)
        )
        return "%s?%s" % (self.path, query)

    @property
    def payload_bytes(self) -> int:
        """Bytes this request occupies as an HTTP message payload."""
        request_line = len(self.method) + 1 + len(self.url) + len(" HTTP/1.1\r\n")
        return request_line + self.header_bytes

    def param(self, name: str, default: str = "") -> str:
        """Query parameter by name, with a default."""
        return self.params.get(name, default)


@dataclass
class HttpResponse:
    """One origin response: a body plus ``f`` bytes of headers."""

    body: str
    status: int = 200
    header_bytes: int = DEFAULT_RESPONSE_HEADER_BYTES
    #: Free-form annotations for experiments (page id, hit counts, ...).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ConfigurationError("header_bytes cannot be negative")

    @property
    def body_bytes(self) -> int:
        """UTF-8 byte length of the body alone."""
        return len(self.body.encode("utf-8"))

    @property
    def payload_bytes(self) -> int:
        """Body plus header bytes: the S_c of the analysis."""
        return self.body_bytes + self.header_bytes
