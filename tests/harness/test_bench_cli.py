"""Tests for the uniform benchmark runner (``python -m repro bench``)."""

import json

import pytest

from repro import bench


class TestRegistry:
    def test_hotpath_registered(self):
        assert "hotpath" in bench.REGISTRY
        spec = bench.REGISTRY["hotpath"]
        assert spec.default_json == "BENCH_HOTPATH.json"
        assert set(spec.smoke_settings) <= {"requests", "pairs", "warmup"}

    def test_every_spec_is_complete(self):
        for spec in bench.REGISTRY.values():
            assert spec.name and spec.description
            assert callable(spec.runner)
            assert spec.default_json.startswith("BENCH_")


class TestResultsFiles:
    def test_record_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_X.json")
        result = {"benchmark": "x", "speedup": {"lower_quartile": 3.5}}
        bench.record_result(path, result, smoke=True)
        payload = bench.load_results(path)
        assert payload["smoke"]["speedup"]["lower_quartile"] == 3.5
        assert "recorded" in payload

    def test_record_preserves_other_entry(self, tmp_path):
        path = str(tmp_path / "BENCH_X.json")
        bench.record_result(path, {"speedup": {"lower_quartile": 4.0}}, smoke=False)
        bench.record_result(path, {"speedup": {"lower_quartile": 3.9}}, smoke=True)
        payload = bench.load_results(path)
        assert payload["full"]["speedup"]["lower_quartile"] == 4.0
        assert payload["smoke"]["speedup"]["lower_quartile"] == 3.9

    def test_load_missing_returns_none(self, tmp_path):
        assert bench.load_results(str(tmp_path / "absent.json")) is None


class TestRegressionGate:
    def _result(self, speedup):
        return {"speedup": {"lower_quartile": speedup}}

    def test_missing_baseline_passes(self):
        verdict = bench.gate_against_baseline(self._result(4.0), None)
        assert "no committed baseline" in verdict

    def test_within_bound_passes(self):
        baseline = {"smoke": self._result(4.0)}
        verdict = bench.gate_against_baseline(self._result(3.7), baseline)
        assert verdict.endswith("OK")

    def test_regression_beyond_bound_fails(self):
        baseline = {"smoke": self._result(4.0)}
        with pytest.raises(AssertionError, match="perf regression"):
            bench.gate_against_baseline(self._result(3.5), baseline)

    def test_custom_bound(self):
        baseline = {"smoke": self._result(4.0)}
        with pytest.raises(AssertionError):
            bench.gate_against_baseline(
                self._result(3.9), baseline, bound=0.01
            )


class TestCommittedBaseline:
    def test_bench_hotpath_json_is_valid(self):
        """The committed baseline parses and records a >=3x speedup."""
        with open("BENCH_HOTPATH.json", "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in ("full", "smoke"):
            speedup = payload[entry]["speedup"]["lower_quartile"]
            assert speedup >= 3.0
            assert payload[entry]["identical_accounting"] is True


class TestCliPlumbing:
    def test_list_exits_cleanly(self, capsys):
        assert bench.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "hotpath" in out and "scan" in out

    def test_unknown_benchmark_rejected(self, capsys):
        assert bench.main(["nonsense"]) == 2

    def test_run_smoke_with_stub_runner(self, tmp_path, capsys, monkeypatch):
        """End-to-end CLI path with a stubbed-out runner: run, gate, record."""
        path = str(tmp_path / "BENCH_HOTPATH.json")
        calls = {}

        def stub_runner(**settings):
            calls.update(settings)
            return {"benchmark": "hotpath", "speedup": {"lower_quartile": 5.0}}

        monkeypatch.setattr(
            bench.REGISTRY["hotpath"], "runner", stub_runner
        )
        code = bench.main(["hotpath", "--smoke", "--json", path, "--record"])
        assert code == 0
        assert calls == bench.REGISTRY["hotpath"].smoke_settings
        assert bench.load_results(path)["smoke"]["speedup"]["lower_quartile"] == 5.0
        # A second, slower run against the recorded baseline fails the gate.
        monkeypatch.setattr(
            bench.REGISTRY["hotpath"], "runner",
            lambda **settings: {"speedup": {"lower_quartile": 4.0}},
        )
        assert bench.main(["hotpath", "--smoke", "--json", path]) == 1
