"""Bounded c-server queues on the virtual clock.

The paper's testbed models an origin with infinite capacity: every request
is served the instant it arrives, so saturation — the regime where proxy
caching matters most — is invisible.  A :class:`BoundedQueue` gives a
component (application server, database connection pool) a finite service
bank: ``servers`` parallel servers, a bounded waiting room, and rejection
when the room is full.  Virtual generation time then includes queueing
delay, and flash crowds produce queue-full rejections instead of free
service.

The model is an event-free M/G/c sketch driven by the caller: arrivals
must be offered in non-decreasing time order (the harness replays a sorted
workload, so this holds by construction), each with its service demand in
virtual seconds.  The queue schedules the job on the earliest-free server
and reports the wait it would have experienced.  No wall-clock time is
involved anywhere.

Two disciplines:

* ``fifo`` — every arrival sees the same waiting room.
* ``priority`` — a fraction of the room (``reserve_fraction``) is held
  back for priority arrivals (``priority > 0``); best-effort arrivals are
  rejected once the unreserved portion fills.  This is how a deployment
  keeps cheap cache-hit traffic flowing while expensive regeneration work
  queues.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List

from ..errors import ConfigurationError, QueueFullError

DISCIPLINES = ("fifo", "priority")


@dataclass
class QueueStats:
    """Arrival accounting for one bounded queue."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    total_wait_s: float = 0.0
    busy_s: float = 0.0       # total service time scheduled
    max_depth: int = 0        # peak waiting-room occupancy observed

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay over admitted jobs."""
        if not self.admitted:
            return 0.0
        return self.total_wait_s / self.admitted


@dataclass(frozen=True)
class QueuePlacement:
    """Where one admitted job landed in the schedule."""

    wait_s: float       # time spent in the waiting room
    start_at: float     # virtual instant service begins
    finish_at: float    # virtual instant service completes
    depth: int          # waiting-room occupancy seen on arrival


class BoundedQueue:
    """A bounded waiting room in front of ``servers`` virtual servers."""

    def __init__(
        self,
        name: str,
        capacity: int,
        servers: int = 1,
        discipline: str = "fifo",
        reserve_fraction: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be positive")
        if servers < 1:
            raise ConfigurationError("queue needs at least one server")
        if discipline not in DISCIPLINES:
            raise ConfigurationError("discipline must be one of %s" % (DISCIPLINES,))
        if not 0.0 <= reserve_fraction < 1.0:
            raise ConfigurationError("reserve_fraction must be in [0, 1)")
        self.name = name
        self.capacity = capacity
        self.servers = servers
        self.discipline = discipline
        self.reserve_fraction = reserve_fraction
        self.stats = QueueStats()
        #: Busy-until instant of each server (min-heap).
        self._free_at: List[float] = [0.0] * servers
        heapq.heapify(self._free_at)
        #: Scheduled service-start instants of jobs still in the waiting
        #: room, in non-decreasing order (starts are monotone because the
        #: earliest-free server time never decreases).
        self._starts: Deque[float] = deque()
        self._last_offer_at = float("-inf")

    # -- inspection ----------------------------------------------------------

    def depth(self, now: float) -> int:
        """Waiting-room occupancy at ``now``: admitted jobs not yet started."""
        while self._starts and self._starts[0] <= now:
            self._starts.popleft()
        return len(self._starts)

    def next_start(self, now: float) -> float:
        """When a job arriving at ``now`` would begin service."""
        return max(now, self._free_at[0])

    def expected_wait(self, now: float) -> float:
        """Queueing delay a job arriving at ``now`` would experience."""
        return self.next_start(now) - now

    def full(self, now: float, priority: int = 0) -> bool:
        """Whether an arrival at ``now`` would be rejected."""
        return self.depth(now) >= self._limit_for(priority)

    def _limit_for(self, priority: int) -> int:
        if self.discipline == "priority" and priority <= 0:
            reserved = int(self.capacity * self.reserve_fraction)
            return max(1, self.capacity - reserved)
        return self.capacity

    # -- admission -----------------------------------------------------------

    def reject(self, now: float) -> None:
        """Account a screened rejection and raise.

        Callers that must refuse an arrival *before* its service demand is
        known (rejections must precede side-effecting work) use this so
        the queue's own statistics still see every turned-away arrival.
        """
        self.stats.offered += 1
        self.stats.rejected += 1
        raise QueueFullError(
            "queue %r full (%d waiting, capacity %d)"
            % (self.name, self.depth(now), self.capacity)
        )

    def offer(self, now: float, service_s: float, priority: int = 0) -> QueuePlacement:
        """Admit one job arriving at ``now`` needing ``service_s`` of work.

        Raises :class:`~repro.errors.QueueFullError` when the waiting room
        (or, for best-effort arrivals under the ``priority`` discipline,
        its unreserved portion) is already full.  Arrivals must come in
        non-decreasing ``now`` order.
        """
        if now < self._last_offer_at:
            raise ConfigurationError(
                "offers must arrive in time order (%.6f after %.6f)"
                % (now, self._last_offer_at)
            )
        if service_s < 0:
            raise ConfigurationError("service time cannot be negative")
        self._last_offer_at = now
        self.stats.offered += 1
        depth = self.depth(now)
        if depth >= self._limit_for(priority):
            self.stats.rejected += 1
            raise QueueFullError(
                "queue %r full (%d waiting, capacity %d)"
                % (self.name, depth, self.capacity)
            )
        start = max(now, self._free_at[0])
        heapq.heapreplace(self._free_at, start + service_s)
        if start > now:
            self._starts.append(start)
            depth += 1
        self.stats.admitted += 1
        self.stats.total_wait_s += start - now
        self.stats.busy_s += service_s
        self.stats.max_depth = max(self.stats.max_depth, depth)
        return QueuePlacement(
            wait_s=start - now, start_at=start, finish_at=start + service_s,
            depth=depth,
        )

    def reset(self) -> None:
        """Forget all scheduled work (test fixtures and re-runs)."""
        self._free_at = [0.0] * self.servers
        heapq.heapify(self._free_at)
        self._starts.clear()
        self._last_offer_at = float("-inf")
        self.stats = QueueStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BoundedQueue(%r, %d servers, cap=%d)" % (
            self.name, self.servers, self.capacity,
        )
