"""Tests for the scan-cost analysis and Result 1."""

import pytest

from repro.analysis.model import bytes_ratio
from repro.analysis.params import TABLE2
from repro.analysis.scancost import (
    figure_3a_series,
    firewall_savings_percent,
    network_savings_percent,
    result1_holds,
    scan_breakeven_cacheability,
)


class TestFirewallSavings:
    def test_relation_to_bytes_ratio(self):
        ratio = bytes_ratio(TABLE2)
        assert firewall_savings_percent(TABLE2) == pytest.approx(
            (1 - 2 * ratio) * 100
        )

    def test_z_over_y_generalization(self):
        cheap_scan = firewall_savings_percent(TABLE2, z_over_y=0.5)
        paper_scan = firewall_savings_percent(TABLE2, z_over_y=1.0)
        assert cheap_scan > paper_scan

    def test_network_savings_always_above_firewall_savings(self):
        for cacheability in (0.2, 0.5, 0.8, 1.0):
            params = TABLE2.with_(cacheability=cacheability)
            assert network_savings_percent(params) > firewall_savings_percent(params)


class TestResult1:
    def test_result1_consistency_with_savings_sign(self):
        for cacheability in (0.2, 0.4, 0.6, 0.8, 1.0):
            params = TABLE2.with_(cacheability=cacheability)
            assert result1_holds(params) == (firewall_savings_percent(params) > 0)

    def test_result1_false_at_baseline(self):
        # At Table 2 settings the ratio is ~0.58 > 0.5: scanning twice
        # costs more than the byte savings recoup.
        assert not result1_holds(TABLE2)

    def test_result1_true_at_full_cacheability(self):
        assert result1_holds(TABLE2.with_(cacheability=1.0))


class TestFigure3a:
    def test_series_shape(self):
        """Network savings positive over the whole range; firewall savings
        negative at low cacheability, positive at the top."""
        series = figure_3a_series(TABLE2, [0.2, 0.4, 0.6, 0.8, 1.0])
        network = [row[1] for row in series]
        firewall = [row[2] for row in series]
        assert all(value > 0 for value in network)
        assert firewall[0] < 0
        assert firewall[-1] > 0
        assert all(a <= b for a, b in zip(network, network[1:]))
        assert all(a <= b for a, b in zip(firewall, firewall[1:]))

    def test_crossover_location(self):
        """With the printed formulas and Table 2 values the firewall
        break-even lands around 71% cacheability (the paper narrates
        'about 50%'; see EXPERIMENTS.md for the discrepancy note)."""
        crossover = scan_breakeven_cacheability(TABLE2)
        assert 0.6 < crossover < 0.8
        near_zero = firewall_savings_percent(TABLE2.with_(cacheability=crossover))
        assert abs(near_zero) < 0.1

    def test_crossover_edge_cases(self):
        always_winning = TABLE2.with_(fragment_size=100_000.0, hit_ratio=1.0,
                                      cacheability=1.0)
        assert scan_breakeven_cacheability(always_winning, lo=0.9) <= 0.9
        always_losing = TABLE2.with_(hit_ratio=0.0)
        assert scan_breakeven_cacheability(always_losing) == 1.0
