"""Realistic-site bench: BooksOnline behind the full topology.

Not a paper figure — the evaluation the paper's *deployment* section
implies: a personalized e-commerce site with dynamic layouts, a
registered/anonymous visitor mix, Zipf-popular categories, and live
catalog churn.  Reports byte savings, hit ratio, latency, and correctness.
"""

from repro.harness.realistic import run_realistic_pair


def test_realistic_site(benchmark, report):
    plain, dpc = benchmark.pedantic(
        lambda: run_realistic_pair(requests=400, warmup=100),
        rounds=1,
        iterations=1,
    )

    report(
        "BooksOnline behind the DPC (%d requests, %d catalog updates)"
        % (dpc.requests, dpc.catalog_updates),
        ["metric", "no cache", "DPC"],
        [
            ["origin payload bytes", plain.origin_payload_bytes,
             dpc.origin_payload_bytes],
            ["origin wire bytes", plain.origin_wire_bytes,
             dpc.origin_wire_bytes],
            ["byte savings", "-",
             "%.1f%%" % (100 * (1 - dpc.origin_payload_bytes
                                / plain.origin_payload_bytes))],
            ["fragment hit ratio", "-", "%.3f" % dpc.measured_hit_ratio],
            ["mean response time (ms)",
             "%.2f" % (plain.mean_response_time * 1000),
             "%.2f" % (dpc.mean_response_time * 1000)],
            ["pages checked / incorrect",
             "%d / %d" % (plain.pages_checked, plain.pages_incorrect),
             "%d / %d" % (dpc.pages_checked, dpc.pages_incorrect)],
        ],
    )

    assert dpc.pages_incorrect == 0
    assert plain.pages_incorrect == 0
    assert dpc.origin_payload_bytes < 0.65 * plain.origin_payload_bytes
    assert dpc.mean_response_time < plain.mean_response_time
    assert dpc.measured_hit_ratio > 0.6
