"""A financial portal: the paper's deployment case study, reconstructed.

Two of the paper's scenarios live here:

* The §3.2.1 stock-quote page: given a ticker symbol, the page holds a
  current price quote (valid for seconds), recent headlines (~30 minutes),
  and historical research data (~monthly).  Page-level caches must
  regenerate *everything* at quote frequency; the DPC invalidates only the
  quote fragment.
* The §6/§8 claim that the commercially deployed system produced
  order-of-magnitude reductions in bandwidth and response time "at a major
  financial institution" — the case-study bench drives this portal under a
  personalized workload and measures both.

TTLs (virtual seconds): quote 5 s, headlines 1800 s, historical 2 592 000 s
(30 days), matching the paper's invalidation-frequency story.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..appserver import ApplicationServer, DynamicScript, ScriptContext, SiteServices
from ..cms import CONTENT_TABLE, ContentRepository, PersonalizationEngine, ProfileStore, PROFILE_TABLE
from ..core.fragments import Dependency
from ..database import Database, schema

QUOTES_TABLE = "quotes"
HISTORY_TABLE = "historical_data"
ACCOUNTS_TABLE = "accounts"

QUOTE_TTL_S = 5.0
HEADLINES_TTL_S = 1800.0
HISTORY_TTL_S = 2_592_000.0

_QUOTES_SCHEMA = schema(
    QUOTES_TABLE,
    [
        ("symbol", "str"),
        ("price", "float"),
        ("change_pct", "float"),
        ("updated_at", "float"),
    ],
    primary_key="symbol",
)

_HISTORY_SCHEMA = schema(
    HISTORY_TABLE,
    [
        ("symbol", "str"),
        ("pe_ratio", "float"),
        ("eps", "float"),
        ("week52_high", "float"),
        ("week52_low", "float"),
    ],
    primary_key="symbol",
)

_ACCOUNTS_SCHEMA = schema(
    ACCOUNTS_TABLE,
    [
        ("user_id", "str"),
        ("balance", "float"),
        ("watchlist", "str"),  # comma-separated symbols
    ],
    primary_key="user_id",
)


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


def render_quote(quote: Dict[str, object]) -> str:
    """Current price quote for one symbol."""
    return (
        '<div class="quote" data-symbol="%s"><b>%.2f</b>'
        '<span class="chg">%+.2f%%</span></div>'
        % (quote["symbol"], quote["price"], quote["change_pct"])
    )


def render_headlines(symbol: str, items: List[Dict[str, object]]) -> str:
    """Recent headlines list for a symbol or the market."""
    entries = "".join("<li>%s</li>" % item["title"] for item in items)
    return '<ul class="headlines" data-symbol="%s">%s</ul>' % (symbol, entries)


def render_history(history: Dict[str, object]) -> str:
    """Historical research table (P/E, EPS, 52-week range)."""
    return (
        '<table class="history"><tr><td>P/E</td><td>%.1f</td></tr>'
        "<tr><td>EPS</td><td>%.2f</td></tr>"
        "<tr><td>52wk</td><td>%.2f - %.2f</td></tr></table>"
        % (
            history["pe_ratio"],
            history["eps"],
            history["week52_low"],
            history["week52_high"],
        )
    )


def render_account_summary(account: Optional[Dict[str, object]]) -> str:
    """Private account balance block; empty for anonymous."""
    if account is None:
        return ""
    return '<div class="account">Balance: $%.2f</div>' % account["balance"]


def render_watchlist(quotes: List[Dict[str, object]]) -> str:
    """Price table over a user's watched symbols."""
    rows = "".join(
        "<tr><td>%s</td><td>%.2f</td></tr>" % (q["symbol"], q["price"]) for q in quotes
    )
    return '<table class="watchlist">%s</table>' % rows


# ---------------------------------------------------------------------------
# Scripts
# ---------------------------------------------------------------------------


class QuotePageScript(DynamicScript):
    """``/quote.jsp?symbol=X`` — the §3.2.1 three-fragment page."""

    path = "/quote.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Emit the three-TTL-class quote page."""
        services = ctx.services
        symbol = ctx.request.param("symbol", "ACME")
        user_id = ctx.session.user_id
        profile = ctx.memo(
            "profile:%s" % (user_id or ""),
            lambda: services.personalization.profile_for(user_id),
            ttl=60.0,
        )

        ctx.write('<html><body class="quote-page">')
        ctx.block(
            "greeting",
            {"user": user_id or ""},
            lambda: (
                '<div class="greeting">Hello, %s</div>' % profile.display_name
                if profile.registered
                else ""
            ),
        )
        ctx.block(
            "price_quote",
            {"symbol": symbol},
            lambda: render_quote(
                services.db.table(QUOTES_TABLE).get(symbol)
                or {"symbol": symbol, "price": 0.0, "change_pct": 0.0}
            ),
        )
        ctx.block(
            "headlines",
            {"symbol": symbol},
            lambda: render_headlines(
                symbol, services.repository.by_category(symbol, kind="headline")
            ),
        )
        ctx.block(
            "historical",
            {"symbol": symbol},
            lambda: render_history(
                services.db.table(HISTORY_TABLE).get(symbol)
                or {
                    "pe_ratio": 0.0,
                    "eps": 0.0,
                    "week52_high": 0.0,
                    "week52_low": 0.0,
                }
            ),
        )
        ctx.write("</body></html>")


class PortfolioScript(DynamicScript):
    """``/portfolio.jsp`` — the personalized portal page of the deployment."""

    path = "/portfolio.jsp"

    def run(self, ctx: ScriptContext) -> None:
        """Emit the per-user portfolio from shared quote fragments."""
        services = ctx.services
        user_id = ctx.session.user_id or ""
        profile = ctx.memo(
            "profile:%s" % user_id,
            lambda: services.personalization.profile_for(user_id or None),
            ttl=60.0,
        )
        account = ctx.memo(
            "account:%s" % user_id,
            lambda: services.db.table(ACCOUNTS_TABLE).get(user_id),
            ttl=60.0,
        )
        watchlist: List[str] = []
        if account is not None:
            watchlist = [s for s in str(account["watchlist"]).split(",") if s]

        ctx.write("<html><body>")
        ctx.block(
            "greeting",
            {"user": user_id},
            lambda: (
                '<div class="greeting">Hello, %s</div>' % profile.display_name
                if profile.registered
                else ""
            ),
        )
        # Account summary: private per-user data; cacheable per-user with a
        # dependency on the account row.
        ctx.block(
            "account_summary",
            {"user": user_id},
            lambda: render_account_summary(account),
        )
        # One quote fragment per watched symbol: fragments are shared across
        # every user watching that symbol — high reuse despite a fully
        # personalized page, the core win of granular caching.
        for symbol in watchlist:
            ctx.block(
                "price_quote",
                {"symbol": symbol},
                lambda symbol=symbol: render_quote(
                    services.db.table(QUOTES_TABLE).get(symbol)
                    or {"symbol": symbol, "price": 0.0, "change_pct": 0.0}
                ),
            )
        ctx.block(
            "market_headlines",
            {},
            lambda: render_headlines(
                "MARKET", services.repository.by_category("MARKET", kind="headline")
            ),
        )
        ctx.write("</body></html>")


# ---------------------------------------------------------------------------
# Site assembly
# ---------------------------------------------------------------------------

DEFAULT_SYMBOLS = ("ACME", "GLOBEX", "INITECH", "UMBRELLA", "STARK", "WAYNE",
                   "TYRELL", "WONKA")


def build_services(
    seed: int = 11,
    symbols: tuple = DEFAULT_SYMBOLS,
    registered_users: int = 20,
    watchlist_size: int = 4,
) -> SiteServices:
    """Create and seed the financial portal's back-end services."""
    rng = random.Random(seed)
    db = Database("financial")
    quotes = db.create_table(_QUOTES_SCHEMA)
    history = db.create_table(_HISTORY_SCHEMA)
    accounts = db.create_table(_ACCOUNTS_SCHEMA)

    repository = ContentRepository(db)
    profiles = ProfileStore(db)
    personalization = PersonalizationEngine(repository, profiles)
    services = SiteServices(
        db=db,
        repository=repository,
        profiles=profiles,
        personalization=personalization,
    )

    for symbol in symbols:
        base = rng.uniform(10.0, 400.0)
        quotes.insert(
            {
                "symbol": symbol,
                "price": round(base, 2),
                "change_pct": round(rng.uniform(-3.0, 3.0), 2),
                "updated_at": 0.0,
            }
        )
        low = base * rng.uniform(0.6, 0.9)
        history.insert(
            {
                "symbol": symbol,
                "pe_ratio": round(rng.uniform(8.0, 40.0), 1),
                "eps": round(rng.uniform(0.5, 12.0), 2),
                "week52_high": round(base * rng.uniform(1.05, 1.4), 2),
                "week52_low": round(low, 2),
            }
        )
        for i in range(3):
            repository.put(
                content_id="%s-head-%d" % (symbol, i),
                kind="headline",
                category=symbol,
                title="%s update %d" % (symbol, i),
                body="Analysts weigh in on %s, item %d." % (symbol, i),
                rank=i,
            )
    for i in range(3):
        repository.put(
            content_id="MARKET-head-%d" % i,
            kind="headline",
            category="MARKET",
            title="Market brief %d" % i,
            body="Broad market commentary, item %d." % i,
            rank=i,
        )

    for i in range(registered_users):
        user_id = "trader%03d" % i
        profiles.register(user_id=user_id, display_name="Trader %03d" % i)
        watched = rng.sample(list(symbols), k=min(watchlist_size, len(symbols)))
        accounts.insert(
            {
                "user_id": user_id,
                "balance": round(rng.uniform(1_000.0, 500_000.0), 2),
                "watchlist": ",".join(watched),
            }
        )

    _tag_blocks(services)
    return services


def build_server(services: Optional[SiteServices] = None, **server_kwargs) -> ApplicationServer:
    """An application server with the portal scripts registered."""
    if services is None:
        services = build_services()
    server = ApplicationServer(services, **server_kwargs)
    server.register(QuotePageScript())
    server.register(PortfolioScript())
    return server


def _tag_blocks(services: SiteServices) -> None:
    """Tagging pass: the three TTL classes of §3.2.1, plus portal blocks."""
    tags = services.tags
    tags.tag(
        "price_quote",
        ttl=QUOTE_TTL_S,
        dependencies=lambda params: (Dependency(QUOTES_TABLE, key=params["symbol"]),),
    )
    tags.tag(
        "headlines",
        ttl=HEADLINES_TTL_S,
        dependencies=lambda params: (
            Dependency(
                CONTENT_TABLE, where_column="category", where_value=params["symbol"]
            ),
        ),
    )
    tags.tag(
        "historical",
        ttl=HISTORY_TTL_S,
        dependencies=lambda params: (Dependency(HISTORY_TABLE, key=params["symbol"]),),
    )
    tags.tag(
        "greeting",
        dependencies=lambda params: (
            (Dependency(PROFILE_TABLE, key=params["user"]),)
            if params.get("user")
            else ()
        ),
    )
    tags.tag(
        "account_summary",
        ttl=60.0,
        dependencies=lambda params: (
            Dependency(ACCOUNTS_TABLE, key=params["user"]),
        ),
    )
    tags.tag(
        "market_headlines",
        ttl=HEADLINES_TTL_S,
        dependencies=lambda params: (
            Dependency(CONTENT_TABLE, where_column="category", where_value="MARKET"),
        ),
    )


def tick_quote(services: SiteServices, symbol: str, price: float, now: float) -> None:
    """Simulate a market tick: update one quote row.

    The database trigger fans out to the BEM, which invalidates exactly the
    ``price_quote?symbol=X`` fragment — headlines and historical survive.
    """
    services.db.table(QUOTES_TABLE).update(
        {"price": round(price, 2), "updated_at": now}, key=symbol
    )
