"""Tests for the realistic-site (BooksOnline) harness."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.realistic import (
    RealisticConfig,
    run_realistic,
    run_realistic_pair,
)

FAST = dict(requests=150, warmup=40)


class TestConfig:
    def test_invalid_update_probability(self):
        with pytest.raises(ConfigurationError):
            RealisticConfig(update_probability=1.5)


class TestPairedRun:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_realistic_pair(**FAST)

    def test_dpc_saves_bytes(self, pair):
        plain, dpc = pair
        assert dpc.origin_payload_bytes < plain.origin_payload_bytes

    def test_dpc_saves_time(self, pair):
        plain, dpc = pair
        assert dpc.mean_response_time < plain.mean_response_time

    def test_all_pages_correct_in_both_modes(self, pair):
        plain, dpc = pair
        assert plain.pages_incorrect == 0
        assert dpc.pages_incorrect == 0
        assert plain.pages_checked > 0
        assert dpc.pages_checked > 0

    def test_hit_ratio_positive_despite_churn(self, pair):
        _, dpc = pair
        assert dpc.measured_hit_ratio > 0.5
        assert dpc.catalog_updates > 0

    def test_paired_churn_identical(self, pair):
        plain, dpc = pair
        assert plain.catalog_updates == dpc.catalog_updates


class TestSingleRun:
    def test_deterministic(self):
        a = run_realistic(RealisticConfig(requests=100, warmup_requests=20))
        b = run_realistic(RealisticConfig(requests=100, warmup_requests=20))
        assert a.origin_payload_bytes == b.origin_payload_bytes
        assert a.measured_hit_ratio == b.measured_hit_ratio

    def test_no_cache_mode_has_zero_hits(self):
        result = run_realistic(
            RealisticConfig(cached=False, requests=80, warmup_requests=20)
        )
        assert result.measured_hit_ratio == 0.0
        assert result.origin_payload_bytes > 0
