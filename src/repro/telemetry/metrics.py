"""The unified metrics registry: counters, gauges, histograms, providers.

Before this module, every subsystem kept a private ``Stats`` object and
:func:`repro.harness.monitoring.take_snapshot` hand-copied dozens of fields
into a flat list.  The :class:`MetricsRegistry` inverts that: components
*register themselves* — either as instruments (counters/gauges/histograms
created through the registry) or as *providers* (any object exposing
``metric_rows()``) — and ``collect()`` walks them all, yielding the same
``(dotted-name, value)`` rows the snapshot always rendered.

Instrument names are validated against the dotted scheme
(:mod:`repro.telemetry.naming`).  The one escape hatch is
:meth:`MetricsRegistry.record`, which appends a raw ad-hoc row with no
validation — it exists solely so exported snapshots can be reconstructed
into value-level registries (:func:`repro.telemetry.export.registry_from_rows`),
and the lint test under ``tests/telemetry`` rejects new uses of it inside
``src/``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .naming import validate_metric_name

Row = Tuple[str, object]

#: Default histogram bucket upper bounds, in seconds (latency-flavoured).
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ConfigurationError(
                "counter %r cannot decrease (inc by %r)" % (self.name, amount)
            )
        self.value += amount

    def rows(self) -> List[Row]:
        """This instrument's collected rows."""
        return [(self.name, self.value)]


class Gauge:
    """A named value that can go up and down, or track a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], object]] = None) -> None:
        self.name = name
        self._value: object = 0
        self._fn = fn

    def set(self, value: object) -> None:
        """Pin the gauge to an explicit value (clears any callback)."""
        self._fn = None
        self._value = value

    @property
    def value(self) -> object:
        """Current reading: the callback's return value, or the set value."""
        if self._fn is not None:
            return self._fn()
        return self._value

    def rows(self) -> List[Row]:
        """This instrument's collected rows."""
        return [(self.name, self.value)]


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    Buckets are cumulative-free (each observation lands in exactly one
    bucket: the first whose upper bound is >= the value; values beyond the
    last bound land in the overflow bucket).  ``collect()`` publishes three
    rows: ``<name>.count``, ``<name>.sum``, and ``<name>.buckets`` — the
    last a list of ``[upper_bound, count]`` pairs (``"inf"`` for overflow)
    so the whole distribution round-trips through the JSON-lines exporter.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ConfigurationError("histogram %r needs at least one bucket" % name)
        ordered = tuple(buckets)
        if list(ordered) != sorted(ordered):
            raise ConfigurationError(
                "histogram %r buckets must be ascending" % name
            )
        self.name = name
        self.buckets = ordered
        self.counts = [0] * len(ordered)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def bucket_rows(self) -> List[List[object]]:
        """``[upper_bound, count]`` pairs, overflow bound spelled ``"inf"``."""
        rows: List[List[object]] = [
            [bound, count] for bound, count in zip(self.buckets, self.counts)
        ]
        rows.append(["inf", self.overflow])
        return rows

    def rows(self) -> List[Row]:
        """This instrument's collected rows."""
        return [
            ("%s.count" % self.name, self.count),
            ("%s.sum" % self.name, self.total),
            ("%s.buckets" % self.name, self.bucket_rows()),
        ]


class MetricsRegistry:
    """Named instruments plus self-registering providers, one namespace.

    Collection order is deterministic: provider rows first (in registration
    order), then instrument rows (in creation order), then ad-hoc rows
    appended through the legacy :meth:`record` escape hatch.  That ordering
    is what keeps :func:`repro.harness.monitoring.take_snapshot` output
    byte-identical with its pre-registry incarnation.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._providers: List[Callable[[], Iterable[Row]]] = []
        self._adhoc: List[Row] = []

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        return self._instrument(name, Counter)

    def gauge(self, name: str, fn: Optional[Callable[[], object]] = None) -> Gauge:
        """Get or create the gauge under ``name`` (optionally callback-backed)."""
        gauge = self._instrument(name, Gauge)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the fixed-bucket histogram under ``name``."""
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ConfigurationError(
                    "metric %r already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        validate_metric_name(name)
        histogram = Histogram(name, buckets)
        self._instruments[name] = histogram
        return histogram

    def _instrument(self, name: str, klass):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, klass):
                raise ConfigurationError(
                    "metric %r already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        validate_metric_name(name)
        instrument = klass(name)
        self._instruments[name] = instrument
        return instrument

    # -- providers ----------------------------------------------------------

    def register_provider(self, provider) -> None:
        """Register a row source consulted on every :meth:`collect`.

        ``provider`` may be a callable returning ``(name, value)`` rows, or
        any object exposing ``metric_rows()`` (preferred) or the legacy
        ``snapshot_rows()``.
        """
        fn = self._resolve_provider(provider)
        self._providers.append(fn)

    @staticmethod
    def _resolve_provider(provider) -> Callable[[], Iterable[Row]]:
        rows_fn = getattr(provider, "metric_rows", None)
        if rows_fn is None:
            rows_fn = getattr(provider, "snapshot_rows", None)
        if rows_fn is not None:
            return rows_fn
        if callable(provider):
            return provider
        raise ConfigurationError(
            "provider %r has neither metric_rows()/snapshot_rows() nor is "
            "callable" % (provider,)
        )

    # -- legacy escape hatch -------------------------------------------------

    def record(self, name: str, value: object) -> None:
        """Append one raw ad-hoc row (no name validation, duplicates kept).

        Exists only for reconstructing registries from exported rows
        (:func:`repro.telemetry.export.registry_from_rows`); new code should
        register instruments or providers under canonical dotted names.
        """
        self._adhoc.append((name, value))

    # -- collection ----------------------------------------------------------

    def collect(self) -> List[Row]:
        """Every current ``(name, value)`` row, in deterministic order."""
        rows: List[Row] = []
        for provider in self._providers:
            rows.extend(provider())
        for instrument in self._instruments.values():
            rows.extend(instrument.rows())
        rows.extend(self._adhoc)
        return rows

    def names(self) -> List[str]:
        """All row names, in collection order."""
        return [name for name, _ in self.collect()]

    def get(self, name: str) -> object:
        """First row value under ``name``; raises KeyError if absent."""
        for row_name, value in self.collect():
            if row_name == name:
                return value
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.collect())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MetricsRegistry(%d instruments, %d providers, %d ad-hoc)" % (
            len(self._instruments), len(self._providers), len(self._adhoc)
        )
