"""Tests for sessions."""

import pytest

from repro.appserver.session import SessionManager
from repro.errors import SessionError
from repro.network.clock import SimulatedClock


@pytest.fixture
def manager(clock):
    return SessionManager(clock, idle_timeout_s=100.0)


class TestResolve:
    def test_creates_on_first_sight(self, manager):
        session = manager.resolve("s1")
        assert session.session_id == "s1"
        assert manager.created == 1

    def test_reuses_live_session(self, manager):
        first = manager.resolve("s1")
        first.put("cart_items", 3)
        again = manager.resolve("s1")
        assert again is first
        assert again.get("cart_items") == 3

    def test_none_id_generates_fresh(self, manager):
        a = manager.resolve(None)
        b = manager.resolve(None)
        assert a.session_id != b.session_id

    def test_login_binds_user(self, manager):
        manager.resolve("s1")
        session = manager.resolve("s1", user_id="bob")
        assert session.user_id == "bob"
        assert session.authenticated

    def test_idle_expiry_replaces_session(self, manager, clock):
        first = manager.resolve("s1")
        first.put("x", 1)
        clock.advance(101.0)
        fresh = manager.resolve("s1")
        assert fresh.get("x") is None
        assert manager.expired == 1

    def test_activity_keeps_session_alive(self, manager, clock):
        manager.resolve("s1")
        for _ in range(5):
            clock.advance(60.0)
            manager.resolve("s1")
        assert manager.created == 1


class TestManagement:
    def test_logout_clears_identity_and_data(self, manager):
        session = manager.resolve("s1", user_id="bob")
        session.put("x", 1)
        manager.logout("s1")
        assert not session.authenticated
        assert session.get("x") is None

    def test_logout_unknown_raises(self, manager):
        with pytest.raises(SessionError):
            manager.logout("zzz")

    def test_sweep(self, manager, clock):
        manager.resolve("s1")
        manager.resolve("s2")
        clock.advance(50.0)
        manager.resolve("s2")  # refresh s2 only
        clock.advance(60.0)    # s1 idle 110s, s2 idle 60s
        assert manager.sweep() == 1
        assert manager.active_count() == 1

    def test_invalid_timeout_rejected(self, clock):
        with pytest.raises(SessionError):
            SessionManager(clock, idle_timeout_s=0)
