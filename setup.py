"""Setup shim: keeps ``pip install -e .`` working on environments whose
setuptools predates PEP 660 editable wheels.  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
