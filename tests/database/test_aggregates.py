"""Tests for aggregate queries (COUNT/SUM/AVG/MIN/MAX, GROUP BY)."""

import pytest

from repro.database import Database, schema
from repro.database.sql import Aggregate, parse
from repro.errors import SchemaError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    table = database.create_table(
        schema(
            "reviews",
            [("rid", "str"), ("product", "str"), ("stars", "int")],
            nullable=["stars"],
        )
    )
    table.create_index("product")
    data = [
        ("r1", "a", 5), ("r2", "a", 3), ("r3", "a", None),
        ("r4", "b", 4), ("r5", "b", 2),
    ]
    for rid, product, stars in data:
        table.insert({"rid": rid, "product": product, "stars": stars})
    return database


class TestParsing:
    def test_count_star(self):
        statement = parse("SELECT COUNT(*) FROM reviews")
        assert statement.aggregates == (Aggregate("count", None),)
        assert statement.is_aggregate

    def test_mixed_aggregates(self):
        statement = parse("SELECT COUNT(*), AVG(stars), MAX(stars) FROM reviews")
        assert len(statement.aggregates) == 3

    def test_group_by_with_key_column(self):
        statement = parse(
            "SELECT product, COUNT(*) FROM reviews GROUP BY product"
        )
        assert statement.group_by == "product"
        assert statement.columns == ("product",)

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM reviews")

    def test_plain_column_without_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT product, COUNT(*) FROM reviews")

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT product FROM reviews GROUP BY product")


class TestExecution:
    def test_count_star(self, db):
        result = db.execute("SELECT COUNT(*) FROM reviews")
        assert result.rows == [{"count(*)": 5}]

    def test_count_column_skips_nulls(self, db):
        result = db.execute("SELECT COUNT(stars) FROM reviews")
        assert result.rows == [{"count(stars)": 4}]

    def test_sum_avg_min_max(self, db):
        result = db.execute(
            "SELECT SUM(stars), AVG(stars), MIN(stars), MAX(stars) FROM reviews"
        )
        row = result.rows[0]
        assert row["sum(stars)"] == 14
        assert row["avg(stars)"] == pytest.approx(3.5)
        assert row["min(stars)"] == 2
        assert row["max(stars)"] == 5

    def test_aggregate_with_where(self, db):
        result = db.execute(
            "SELECT AVG(stars) FROM reviews WHERE product = 'a'"
        )
        assert result.rows[0]["avg(stars)"] == pytest.approx(4.0)

    def test_group_by(self, db):
        result = db.execute(
            "SELECT product, COUNT(*), AVG(stars) FROM reviews GROUP BY product"
        )
        assert result.rows == [
            {"product": "a", "count(*)": 3, "avg(stars)": 4.0},
            {"product": "b", "count(*)": 2, "avg(stars)": 3.0},
        ]

    def test_group_by_with_limit(self, db):
        result = db.execute(
            "SELECT product, COUNT(*) FROM reviews GROUP BY product LIMIT 1"
        )
        assert result.rowcount == 1

    def test_empty_input_scalar_semantics(self, db):
        result = db.execute(
            "SELECT COUNT(*), SUM(stars) FROM reviews WHERE product = 'zzz'"
        )
        assert result.rows == [{"count(*)": 0, "sum(stars)": None}]

    def test_empty_input_grouped_yields_no_groups(self, db):
        result = db.execute(
            "SELECT product, COUNT(*) FROM reviews WHERE product = 'zzz' "
            "GROUP BY product"
        )
        assert result.rows == []

    def test_unknown_aggregate_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT SUM(nope) FROM reviews")

    def test_aggregate_uses_index_for_where(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM reviews WHERE product = 'b'"
        )
        assert result.rows_touched == 2  # index probe, not a scan
