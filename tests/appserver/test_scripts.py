"""Tests for ScriptContext: cost accounting and the intermediate memo."""

import pytest

from repro.appserver.http import HttpRequest
from repro.appserver.scripts import ScriptContext, SiteServices
from repro.appserver.session import Session
from repro.core.bem import BackEndMonitor
from repro.core.tagging import PageBuilder
from repro.database import Database, schema
from repro.errors import ScriptError
from repro.network.latency import GenerationCostModel


def make_ctx(bem=None, cost_model=None):
    db = Database()
    table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
    for i in range(20):
        table.insert({"k": i, "v": i})
    services = SiteServices(db=db)
    services.tags.tag("cached_block")
    builder = PageBuilder(services.tags, bem=bem)
    ctx = ScriptContext(
        request=HttpRequest("/x"),
        session=Session(session_id="s"),
        services=services,
        builder=builder,
        cost_model=cost_model or GenerationCostModel(),
        bem=bem,
    )
    return ctx, services


class TestCostAccounting:
    def test_dispatch_cost_charged_upfront(self):
        ctx, _ = make_ctx()
        assert ctx.generation_cost_s == pytest.approx(
            ctx.cost_model.request_dispatch_s
        )

    def test_block_requires_generator(self):
        ctx, _ = make_ctx()
        with pytest.raises(ScriptError):
            ctx.block("anything", {})

    def test_db_rows_raise_generation_cost(self):
        ctx, services = make_ctx()
        base = ctx.generation_cost_s
        ctx.block("light", {}, lambda: "x")
        light_cost = ctx.generation_cost_s - base

        ctx2, services2 = make_ctx()
        base2 = ctx2.generation_cost_s

        def heavy():
            list(services2.db.table("t").scan())  # touches 20 rows
            return "x"

        ctx2.block("heavy", {}, heavy)
        heavy_cost = ctx2.generation_cost_s - base2
        assert heavy_cost > light_cost

    def test_output_bytes_raise_generation_cost(self):
        ctx, _ = make_ctx()
        base = ctx.generation_cost_s
        ctx.block("small", {}, lambda: "x")
        small = ctx.generation_cost_s - base

        ctx2, _ = make_ctx()
        base2 = ctx2.generation_cost_s
        ctx2.block("big", {}, lambda: "x" * 50_000)
        big = ctx2.generation_cost_s - base2
        assert big > small * 5

    def test_hit_charged_probe_cost_only(self):
        bem = BackEndMonitor(capacity=8)
        ctx, _ = make_ctx(bem=bem)
        ctx.block("cached_block", {}, lambda: "content")
        miss_cost = ctx.generation_cost_s

        ctx2, _ = make_ctx(bem=bem)
        ctx2.services.tags  # same registry name; new services but same bem
        ctx2.block("cached_block", {}, lambda: "content")
        hit_total = ctx2.generation_cost_s
        expected = (
            ctx2.cost_model.request_dispatch_s
            + ctx2.cost_model.block_hit_cost()
        )
        assert hit_total == pytest.approx(expected)
        assert hit_total < miss_cost


class TestMemo:
    def test_memo_without_bem_recomputes(self):
        ctx, _ = make_ctx(bem=None)
        calls = []
        ctx.memo("k", lambda: calls.append(1) or "v")
        ctx.memo("k", lambda: calls.append(1) or "v")
        assert len(calls) == 2

    def test_memo_with_bem_computes_once(self):
        bem = BackEndMonitor(capacity=8)
        ctx, _ = make_ctx(bem=bem)
        calls = []
        first = ctx.memo("k", lambda: calls.append(1) or {"profile": 1})
        second = ctx.memo("k", lambda: calls.append(1) or {"profile": 2})
        assert first is second
        assert len(calls) == 1

    def test_memo_shared_across_requests_via_bem(self):
        bem = BackEndMonitor(capacity=8)
        ctx1, _ = make_ctx(bem=bem)
        ctx2, _ = make_ctx(bem=bem)
        calls = []
        ctx1.memo("profile:bob", lambda: calls.append(1) or "p")
        ctx2.memo("profile:bob", lambda: calls.append(1) or "p")
        assert len(calls) == 1  # the §3.2.2 shared-object win
