"""Failure injection: proxy restarts, desync, and capacity exhaustion.

The protocol's safety property is *fail-stop*: a desynchronized DPC (slots
lost while the BEM's directory still believes they are resident) must
raise — never silently serve a wrong or empty fragment.  Recovery is the
documented restart protocol: clear the DPC *and* flush the BEM directory.
"""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.errors import AssemblyError, DirectoryFullError
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books
from repro.sites.synthetic import SyntheticParams, build_server


def books_stack():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=256, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=256)
    return server, bem, dpc


class TestProxyRestart:
    def test_restart_without_flush_is_fail_stop(self):
        """DPC loses its slots; the BEM still emits GETs -> loud failure."""
        server, bem, dpc = books_stack()
        request = HttpRequest("/home.jsp", session_id="s")
        dpc.process_response(server.handle(request).body)

        dpc.clear()  # the proxy restarted; the BEM was not told

        with pytest.raises(AssemblyError):
            dpc.process_response(server.handle(request).body)

    def test_restart_protocol_recovers(self):
        """clear() + flush() together restore correct service."""
        server, bem, dpc = books_stack()
        request = HttpRequest("/home.jsp", session_id="s")
        dpc.process_response(server.handle(request).body)

        dpc.clear()
        bem.flush()  # the restart protocol's second half

        page = dpc.process_response(server.handle(request).body)
        assert page.html == server.render_reference_page(request)
        # And the very next request is warm again.
        warm = server.handle(request)
        assert warm.meta["hits"] > 0

    def test_fresh_dpc_instance_with_flushed_bem(self):
        server, bem, dpc = books_stack()
        request = HttpRequest("/home.jsp", session_id="s")
        dpc.process_response(server.handle(request).body)

        replacement = DynamicProxyCache(capacity=256)  # new box entirely
        bem.flush()
        page = replacement.process_response(server.handle(request).body)
        assert page.html == server.render_reference_page(request)


class TestCapacityExhaustion:
    def test_tiny_cache_still_correct_under_churn(self):
        """Capacity 2 against a site with dozens of fragments: constant
        eviction and key recycling, yet every page assembles correctly."""
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=2, clock=clock)
        server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=2)

        for i in range(12):
            request = HttpRequest(
                "/catalog.jsp",
                {"categoryID": ("Fiction", "Science", "History")[i % 3]},
                user_id="user%03d" % (i % 4),
                session_id="s%d" % (i % 4),
            )
            page = dpc.process_response(server.handle(request).body)
            assert page.html == server.render_reference_page(request)
        assert bem.directory.stats.evictions > 0

    def test_directory_full_with_no_evictable_entry(self):
        """A directory of valid entries with a policy that refuses to pick
        a victim (empty candidate set cannot happen; simulate by capacity 1
        and inserting through the normal path — the LRU always finds one,
        so the DirectoryFullError path is only reachable via the freeList).
        """
        from repro.core.cache_directory import FreeList

        free = FreeList(1)
        free.pop()
        with pytest.raises(DirectoryFullError):
            free.pop()


class TestClockSkewAndIdle:
    def test_long_idle_period_then_burst(self):
        """Hours of idle time expire every TTL'd fragment; the burst after
        must regenerate cleanly (no stale slot exposure)."""
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=64, clock=clock)
        params = SyntheticParams(cacheability=1.0)
        server = build_server(params, clock=clock, bem=bem, cost_model=FREE)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=64)

        request = HttpRequest("/page.jsp", {"pageID": "0"})
        dpc.process_response(server.handle(request).body)
        clock.advance(3600.0 * 24)
        page = dpc.process_response(server.handle(request).body)
        assert page.html == server.render_reference_page(request)
