"""Flash-crowd acceptance: the DPC sheds gracefully, the baseline collapses.

The ISSUE-level acceptance bar, as an executable test: under a 10x flash
crowd with end-to-end deadlines,

* the DPC-enabled site delivers every page correctly (oracle-checked),
  never sheds a predicted cache hit, keeps p99 under the deadline, and its
  post-burst throughput returns to within 5% of pre-burst;
* the same workload against the no-cache baseline saturates: queue-full
  rejections occur and a large fraction of requests time out.

Both runs replay the *identical* seeded workload, so the comparison is
paired.
"""

import pytest

from repro.harness.testbed import TestbedConfig
from repro.overload import (
    CircuitBreaker,
    CoDelPolicy,
    OverloadConfig,
    StaticThresholdPolicy,
    run_overload,
)
from repro.overload.admission import AdmissionPolicy
from repro.overload.harness import percentile
from repro.sites.synthetic import SyntheticParams
from repro.workload import FlashCrowdProcess

#: Shared scenario: a quiet 6 req/s site hit by a 10x burst.
PARAMS = SyntheticParams(
    num_pages=10, fragments_per_page=4, fragment_size=2048, cacheability=0.75
)
DEADLINE_S = 1.5
BASE_RATE = 6.0


def flash_arrivals():
    return FlashCrowdProcess(
        base_rate=BASE_RATE, multiplier=10.0, burst_at=20.0,
        hold_s=5.0, decay_s=2.0, deterministic=True,
    )


def make_testbed(mode):
    return TestbedConfig(
        mode=mode, synthetic=PARAMS, target_hit_ratio=0.9,
        requests=600, warmup_requests=100, arrivals=flash_arrivals(),
    )


def bucket_throughputs(result):
    """(bucket, completed-pages-per-virtual-second) for complete buckets."""
    rates = []
    for bucket, nxt in zip(result.buckets, result.buckets[1:]):
        duration = nxt.start_time - bucket.start_time
        if duration > 0:
            rates.append((bucket, bucket.completed / duration))
    return rates


@pytest.fixture(scope="module")
def dpc_run():
    config = OverloadConfig(
        testbed=make_testbed("dpc"),
        deadline_s=DEADLINE_S,
        policy=CoDelPolicy(target_s=0.05, interval_s=0.5),
        breaker=CircuitBreaker(failure_threshold=5, open_s=1.0),
        correctness_every=1,
    )
    return run_overload(config)


@pytest.fixture(scope="module")
def baseline_run():
    config = OverloadConfig(
        testbed=make_testbed("no_cache"),
        deadline_s=DEADLINE_S,
        correctness_every=0,
    )
    return run_overload(config)


class TestDpcShedsGracefully:
    def test_no_incorrect_pages(self, dpc_run):
        assert dpc_run.pages_checked > 0
        assert dpc_run.incorrect_pages == 0

    def test_cache_hits_never_shed(self, dpc_run):
        assert dpc_run.predicted_hits > 0
        assert dpc_run.hits_shed == 0

    def test_p99_bounded_by_deadline(self, dpc_run):
        assert dpc_run.response_times
        assert dpc_run.p99() <= DEADLINE_S

    def test_conservation(self, dpc_run):
        assert dpc_run.conserved
        assert dpc_run.offered == 700

    def test_post_burst_throughput_recovers(self, dpc_run):
        rates = bucket_throughputs(dpc_run)
        pre = [
            rate for bucket, rate in rates
            if bucket.index >= 1 and bucket.start_time < 20.0
            and rate <= BASE_RATE * 1.5
        ]
        assert pre, "no pre-burst buckets measured"
        tail = rates[-1][1]
        pre_rate = sum(pre) / len(pre)
        assert abs(tail - pre_rate) / pre_rate <= 0.05

    def test_every_drop_has_a_ledger_row(self, dpc_run):
        named = dpc_run.ledger.total - dpc_run.ledger.count("messages_dropped")
        assert named == dpc_run.shed + dpc_run.timed_out


class TestBaselineCollapses:
    def test_queue_full_rejections_occur(self, baseline_run):
        assert baseline_run.ledger.count("queue_full") > 0
        assert baseline_run.app_queue.rejected > 0

    def test_most_burst_traffic_fails(self, baseline_run):
        failed = baseline_run.shed + baseline_run.timed_out
        assert failed > baseline_run.offered * 0.3

    def test_conservation_still_holds(self, baseline_run):
        assert baseline_run.conserved

    def test_dpc_outperforms_baseline(self, dpc_run, baseline_run):
        assert dpc_run.completed > baseline_run.completed * 1.5


class TestBrownOut:
    """A harsher crowd against an undersized origin exercises the breaker,
    the stale-page brown-out path, and the fragment-level stale fallback."""

    @pytest.fixture(scope="class")
    def brownout_run(self):
        params = SyntheticParams(
            num_pages=10, fragments_per_page=4, fragment_size=4096,
            cacheability=0.5,
        )
        testbed = TestbedConfig(
            mode="dpc", synthetic=params, target_hit_ratio=0.5,
            requests=500, warmup_requests=100,
            arrivals=FlashCrowdProcess(
                base_rate=10.0, multiplier=40.0, burst_at=10.0,
                hold_s=10.0, decay_s=3.0, deterministic=True,
            ),
        )
        config = OverloadConfig(
            testbed=testbed, deadline_s=0.4,
            app_servers=1, app_queue_capacity=8,
            db_servers=1, db_queue_capacity=8,
            policy=StaticThresholdPolicy(threshold=4),
            breaker=CircuitBreaker(failure_threshold=3, open_s=2.0),
            grace_s=10.0, correctness_every=1,
        )
        return run_overload(config)

    def test_breaker_opens_and_stale_pages_flow(self, brownout_run):
        assert brownout_run.breaker_opens >= 1
        assert brownout_run.completed_stale > 0
        assert brownout_run.stale_cache.stale_serves > 0
        assert brownout_run.degradation.browned_out_requests > 0

    def test_stale_is_exposure_not_incorrectness(self, brownout_run):
        # Only fresh pages are oracle-checked; none may be wrong.
        assert brownout_run.incorrect_pages == 0
        assert brownout_run.degradation.stale_pages == (
            brownout_run.stale_cache.stale_serves
        )

    def test_conservation_under_brownout(self, brownout_run):
        assert brownout_run.conserved


class ShedAllPolicy(AdmissionPolicy):
    """Worst-case admission: every origin-bound request is shed."""

    name = "shed-all"

    def admit(self, now, depth, wait_s):
        return self._account(False)


class TestHarnessRegressions:
    def test_policy_shed_returns_half_open_probe_slot(self):
        """A probe granted by the half-open breaker but shed by the policy
        must be handed back — otherwise the breaker wedges on a phantom
        in-flight probe and refuses all origin work for the rest of the
        run."""
        breaker = CircuitBreaker(failure_threshold=1, open_s=0.5)
        breaker.record_failure(0.0)  # the run starts browned out
        config = OverloadConfig(
            testbed=TestbedConfig(
                mode="dpc", synthetic=PARAMS, target_hit_ratio=0.5,
                requests=100, warmup_requests=0,
            ),
            deadline_s=DEADLINE_S,
            policy=ShedAllPolicy(),
            breaker=breaker,
            serve_stale_pages=False,
            correctness_every=0,
        )
        result = run_overload(config)
        assert result.conserved
        # Every cool-down grants a fresh probe that the policy sheds; a
        # leaked probe would cap this at one.
        assert result.policy_shed >= 2
        # And the breaker can still half-open after the run.
        assert breaker.allow(1e9)

    def test_caller_testbed_config_is_not_mutated(self):
        testbed = make_testbed("dpc")
        assert testbed.deadline_s is None
        config = OverloadConfig(testbed=testbed, deadline_s=2.0)
        assert config.testbed.deadline_s == 2.0
        assert testbed.deadline_s is None

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0  # not the sample max
        assert percentile([1.0, 2.0], 0.50) == 1.0
        assert percentile([], 0.50) == 0.0
