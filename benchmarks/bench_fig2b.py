"""Figure 2(b): analytical savings-in-bytes-served % vs hit ratio.

Paper shape: negative at h=0 (tags are pure overhead), crosses zero at a
very small hit ratio (~2% with the printed formula; the paper narrates
1%), then rises monotonically to its maximum at h=1.
"""

from repro.analysis import TABLE2, breakeven_hit_ratio
from repro.harness.experiments import figure_2b_rows

HIT_RATIOS = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
              0.9, 1.0)


def test_figure_2b(benchmark, report):
    rows = benchmark(lambda: figure_2b_rows(hit_ratios=HIT_RATIOS))

    report(
        "Figure 2(b): Savings in Bytes Served (%) vs Hit Ratio (analytical)",
        ["hit ratio", "savings (%)"],
        [["%.2f" % row.hit_ratio, "%.2f" % row.analytical_savings_pct]
         for row in rows],
    )
    report(
        "Break-even hit ratio",
        ["quantity", "value"],
        [["h* = 2g/(s+g)", "%.4f" % breakeven_hit_ratio(TABLE2)]],
    )

    savings = [row.analytical_savings_pct for row in rows]
    assert savings[0] < 0                               # cost at h=0
    assert all(a <= b for a, b in zip(savings, savings[1:]))
    assert savings[-1] == max(savings)                  # peak at h=1
    # Break-even in the paper's "about 1%" neighbourhood.
    assert 0.005 < breakeven_hit_ratio(TABLE2) < 0.03
