"""repro: a reproduction of "Proxy-Based Acceleration of Dynamically
Generated Content on the World Wide Web" (Datta et al., SIGMOD 2002).

The package implements the paper's Dynamic Proxy Cache (DPC) and Back End
Monitor (BEM), every substrate their evaluation depends on (application
server, relational engine, CMS, simulated network with a Sniffer, workload
generation), the Section 3 baselines, the Section 5 analytical model, and
an experiment harness that regenerates every table and figure.

Quick taste::

    from repro.harness import TestbedConfig, run_testbed

    result = run_testbed(TestbedConfig(mode="dpc", requests=500))
    print(result.response_payload_bytes, result.measured_hit_ratio)

Observability (see :mod:`repro.telemetry` and docs/OBSERVABILITY.md)::

    from repro.harness.testbed import Testbed, TestbedConfig
    from repro.telemetry import render_span_tree

    testbed = Testbed(TestbedConfig(mode="dpc", tracing=True))
    timed = testbed.build_workload().materialize(1)[0]
    testbed.serve_once(timed.request)
    print(render_span_tree(testbed.tracer.last_root))

See README.md for the architecture tour and DESIGN.md for the module map.
"""

__version__ = "1.0.0"

from . import analysis, appserver, baselines, cms, core, database, faults
from . import harness, insight, network, overload, sites, telemetry, workload
from .errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DeliveryTimeoutError,
    FaultError,
    OverloadError,
    ProtocolError,
    ProxyUnavailableError,
    QueueFullError,
    RecoveryError,
    ReproError,
    RequestShedError,
)

__all__ = [
    "analysis",
    "appserver",
    "baselines",
    "cms",
    "core",
    "database",
    "faults",
    "harness",
    "insight",
    "network",
    "overload",
    "sites",
    "telemetry",
    "workload",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DeliveryTimeoutError",
    "FaultError",
    "OverloadError",
    "ProtocolError",
    "ProxyUnavailableError",
    "QueueFullError",
    "RecoveryError",
    "ReproError",
    "RequestShedError",
    "__version__",
]
