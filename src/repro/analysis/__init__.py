"""The Section 5 analytical model: expected bytes served and scan costs."""

from .heterogeneous import (
    Application,
    FragmentSpec,
    PageComposition,
    homogeneous_application,
)
from .model import (
    breakeven_hit_ratio,
    bytes_ratio,
    cacheability_series,
    expected_bytes_cached,
    expected_bytes_no_cache,
    figure_2a_series,
    figure_2b_series,
    fragment_bytes_cached,
    fragment_bytes_no_cache,
    page_access_counts,
    response_size_cached,
    response_size_no_cache,
    savings_percent,
    sweep,
)
from .params import TABLE2, AnalysisParams
from .serverside import ServerSideModel
from .scancost import (
    figure_3a_series,
    firewall_savings_percent,
    network_savings_percent,
    result1_holds,
    scan_breakeven_cacheability,
)

__all__ = [
    "AnalysisParams",
    "Application",
    "FragmentSpec",
    "PageComposition",
    "homogeneous_application",
    "TABLE2",
    "response_size_no_cache",
    "response_size_cached",
    "fragment_bytes_no_cache",
    "fragment_bytes_cached",
    "expected_bytes_no_cache",
    "expected_bytes_cached",
    "page_access_counts",
    "bytes_ratio",
    "savings_percent",
    "breakeven_hit_ratio",
    "sweep",
    "figure_2a_series",
    "figure_2b_series",
    "cacheability_series",
    "figure_3a_series",
    "firewall_savings_percent",
    "network_savings_percent",
    "result1_holds",
    "scan_breakeven_cacheability",
    "ServerSideModel",
]
