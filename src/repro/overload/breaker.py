"""Circuit breaker: the DPC's view of a saturated origin.

When origin-bound requests start failing (queue-full rejections, blown
deadlines), continuing to forward misses only deepens the collapse.  The
breaker trips **open** after ``failure_threshold`` consecutive failures:
origin-bound regeneration work is refused locally and the deployment
*browns out* — stale pages are served from the proxy where available.
After ``open_s`` of cool-down the breaker goes **half-open** and lets
single probe requests through; one success closes it, a failure re-opens.

Cache-hit traffic is never gated by the breaker: serving a hit costs the
origin a directory probe and a tag, which is exactly the load the paper's
architecture is designed to keep cheap.  The brown-out sheds only the
expensive work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerStats:
    """State-machine transitions and probe accounting."""

    opens: int = 0
    closes: int = 0
    probes: int = 0
    refused: int = 0  # allow() calls answered False while open

    def metric_rows(self) -> list:
        """Registry rows: transition counts under ``overload.breaker.*``."""
        return [
            ("overload.breaker.opens", self.opens),
            ("overload.breaker.closes", self.closes),
            ("overload.breaker.probes", self.probes),
            ("overload.breaker.refused", self.refused),
        ]


class CircuitBreaker:
    """Closed → open → half-open state machine on the virtual clock."""

    def __init__(
        self, failure_threshold: int = 5, open_s: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be positive")
        if open_s <= 0:
            raise ConfigurationError("open_s must be positive")
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self.state = CLOSED
        self.stats = BreakerStats()
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """Whether an origin-bound request may go out at ``now``.

        While open, returns ``False`` until the cool-down elapses; then the
        breaker half-opens and admits exactly one probe at a time.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.open_s:
                self.stats.refused += 1
                return False
            self.state = HALF_OPEN
            self._probe_in_flight = False
        # Half-open: one probe at a time.
        if self._probe_in_flight:
            self.stats.refused += 1
            return False
        self._probe_in_flight = True
        self.stats.probes += 1
        return True

    def record_success(self, now: float) -> None:
        """An origin trip completed in time: heal toward closed."""
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.stats.closes += 1
        self._probe_in_flight = False

    def release(self, now: float) -> None:
        """Return a granted slot whose request never reached the origin.

        A caller that passed :meth:`allow` may still be stopped by a later
        gate (e.g. the admission policy) before the trip happens.  That is
        no verdict on origin health — the half-open probe slot is simply
        handed back so the next origin-bound request can claim it.
        """
        if self._probe_in_flight:
            self._probe_in_flight = False
            self.stats.probes -= 1

    def record_failure(self, now: float) -> None:
        """An origin trip failed (queue full / deadline blown): trip if due."""
        self._consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self._opened_at = now
            self.stats.opens += 1
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CircuitBreaker(%s, %d consecutive failures)" % (
            self.state, self._consecutive_failures,
        )
