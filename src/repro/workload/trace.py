"""Workload traces: record a request stream, replay it anywhere.

Real evaluations replay access-log traces; this module gives the generator
the same affordance.  A trace is a list of plain dicts (JSON-serializable)
so it can be saved, diffed, hand-edited, or synthesized by other tools and
replayed byte-for-byte against any origin configuration.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Sequence

from ..appserver.http import HttpRequest
from ..errors import ConfigurationError
from .generator import TimedRequest


def to_records(trace: Iterable[TimedRequest]) -> List[dict]:
    """Flatten timed requests into JSON-ready dicts."""
    records = []
    for timed in trace:
        request = timed.request
        records.append(
            {
                "at": timed.at,
                "path": request.path,
                "params": dict(request.params),
                "user_id": request.user_id,
                "session_id": request.session_id,
                "page_rank": timed.page_rank,
            }
        )
    return records


def from_records(records: Sequence[dict]) -> List[TimedRequest]:
    """Rebuild timed requests from dicts, validating monotone timestamps."""
    trace: List[TimedRequest] = []
    last_at = float("-inf")
    for index, record in enumerate(records):
        try:
            at = float(record["at"])
            request = HttpRequest(
                path=record["path"],
                params=dict(record.get("params", {})),
                user_id=record.get("user_id"),
                session_id=record.get("session_id"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                "bad trace record %d: %s" % (index, exc)
            ) from exc
        if at < last_at:
            raise ConfigurationError(
                "trace record %d goes backwards in time (%.6f < %.6f)"
                % (index, at, last_at)
            )
        last_at = at
        trace.append(
            TimedRequest(
                at=at, request=request,
                page_rank=int(record.get("page_rank", 1)),
            )
        )
    return trace


def dump(trace: Iterable[TimedRequest], fp: IO[str]) -> None:
    """Write a trace as JSON lines (one record per line)."""
    for record in to_records(trace):
        fp.write(json.dumps(record, sort_keys=True))
        fp.write("\n")


def load(fp: IO[str]) -> List[TimedRequest]:
    """Read a JSON-lines trace written by :func:`dump`."""
    records = []
    for line in fp:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return from_records(records)
