"""Tests for the firewall scan-cost model and Result 1 helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.network.firewall import (
    Firewall,
    ScanCostMeter,
    dpc_is_preferable,
    scan_cost_no_cache,
    scan_cost_with_cache,
)
from repro.network.message import response_message


class TestFirewall:
    def test_scan_accumulates_bytes(self):
        firewall = Firewall()
        firewall.scan(response_message(1000))
        firewall.scan(response_message(500))
        assert firewall.bytes_scanned == 1500
        assert firewall.messages_scanned == 2

    def test_scan_returns_time(self):
        firewall = Firewall(scan_cost_per_byte=1e-6)
        assert firewall.scan(response_message(1000)) == pytest.approx(1e-3)

    def test_scan_bytes_raw(self):
        firewall = Firewall()
        firewall.scan_bytes(123)
        assert firewall.bytes_scanned == 123

    def test_scan_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Firewall().scan_bytes(-1)

    def test_total_scan_cost(self):
        firewall = Firewall(scan_cost_per_byte=2e-6)
        firewall.scan_bytes(500)
        assert firewall.total_scan_cost == pytest.approx(1e-3)

    def test_reset(self):
        firewall = Firewall()
        firewall.scan_bytes(100)
        firewall.reset()
        assert firewall.bytes_scanned == 0


class TestScanCostEquations:
    def test_equation_1(self):
        assert scan_cost_no_cache(1000.0, y=2.0) == 2000.0

    def test_equation_2_defaults_z_to_y(self):
        assert scan_cost_with_cache(1000.0, y=2.0) == 4000.0

    def test_equation_2_custom_z(self):
        assert scan_cost_with_cache(1000.0, y=2.0, z=1.0) == 3000.0

    def test_result_1_boundary(self):
        """Result 1: DPC preferable iff B_NC > 2 B_C."""
        assert dpc_is_preferable(2001.0, 1000.0)
        assert not dpc_is_preferable(2000.0, 1000.0)
        assert not dpc_is_preferable(1999.0, 1000.0)


class TestScanCostMeter:
    def test_total_cost_combines_both_scans(self):
        meter = ScanCostMeter(y_per_byte=1.0, z_per_byte=2.0)
        meter.charge_firewall(10)
        meter.charge_dpc_scan(5)
        assert meter.total_cost == pytest.approx(10 + 10)

    def test_reset(self):
        meter = ScanCostMeter()
        meter.charge_firewall(10)
        meter.reset()
        assert meter.total_cost == 0.0
