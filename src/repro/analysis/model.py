"""Section 5's closed-form expressions for expected bytes served.

Notation (Table 1): pages C = {c_1..c_n}, fragments E = {e_1..e_m},
s_e = average fragment size, g = tag size, f = header size, h = hit ratio,
R = requests in the interval, P(i) = Zipf page-access probability.

Response sizes:

* no cache:   ``S_NC(c_i) = sum_{e_j in c_i} s_ej + f``
* with cache: ``S_C(c_i)  = sum_{e_j in c_i} [ X_j (h g + (1-h)(s_ej + 2g))
  + (1 - X_j) s_ej ] + f``

where ``X_j`` indicates design-time cacheability.  A cache hit replaces the
fragment with a ``g``-byte GET tag; a miss ships the content wrapped in two
tags (``s + 2g``); non-cacheable fragments always ship whole.

Expected bytes over the interval: ``B = sum_i S(c_i) * n_i(t)`` with
``n_i(t) = P(i) * R``.  Because the Zipf weights sum to 1, homogeneous pages
make B equal ``S * R`` — but the per-page machinery is kept so heterogeneous
page compositions can be analyzed too.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..workload.zipf import ZipfDistribution
from .params import AnalysisParams


# ---------------------------------------------------------------------------
# Per-fragment and per-page response sizes
# ---------------------------------------------------------------------------


def fragment_bytes_no_cache(size: float) -> float:
    """A fragment's contribution to S_NC: just its content."""
    return size


def fragment_bytes_cached(
    size: float, hit_ratio: float, tag_size: float, cacheable: bool
) -> float:
    """A fragment's expected contribution to S_C."""
    if not cacheable:
        return size
    hit_cost = hit_ratio * tag_size
    miss_cost = (1.0 - hit_ratio) * (size + 2.0 * tag_size)
    return hit_cost + miss_cost


def response_size_no_cache(params: AnalysisParams) -> float:
    """S_NC for the homogeneous page of the baseline configuration."""
    return (
        params.fragments_per_page * fragment_bytes_no_cache(params.fragment_size)
        + params.header_bytes
    )


def response_size_cached(params: AnalysisParams) -> float:
    """S_C for the homogeneous page: the cacheability factor weights the
    cacheable vs non-cacheable fragment costs."""
    cacheable_part = params.cacheability * fragment_bytes_cached(
        params.fragment_size, params.hit_ratio, params.tag_size, cacheable=True
    )
    plain_part = (1.0 - params.cacheability) * params.fragment_size
    return (
        params.fragments_per_page * (cacheable_part + plain_part)
        + params.header_bytes
    )


# ---------------------------------------------------------------------------
# Expected bytes served over the interval
# ---------------------------------------------------------------------------


def page_access_counts(params: AnalysisParams) -> List[float]:
    """n_i(t) = P(i) * R for each page, P(i) Zipfian."""
    zipf = ZipfDistribution(params.num_pages, alpha=params.zipf_alpha)
    return [zipf.pmf(rank) * params.requests for rank in range(1, params.num_pages + 1)]


def expected_bytes_no_cache(params: AnalysisParams) -> float:
    """B_NC = sum_i S_NC(c_i) * n_i(t)."""
    size = response_size_no_cache(params)
    return sum(size * count for count in page_access_counts(params))


def expected_bytes_cached(params: AnalysisParams) -> float:
    """B_C = sum_i S_C(c_i) * n_i(t)."""
    size = response_size_cached(params)
    return sum(size * count for count in page_access_counts(params))


def bytes_ratio(params: AnalysisParams) -> float:
    """B_C / B_NC — the y-axis of Figures 2(a) and 3(b)."""
    return expected_bytes_cached(params) / expected_bytes_no_cache(params)


def savings_percent(params: AnalysisParams) -> float:
    """Percentage savings in expected bytes served — Figures 2(b) and 5."""
    return (1.0 - bytes_ratio(params)) * 100.0


def breakeven_hit_ratio(params: AnalysisParams) -> float:
    """The hit ratio at which the DPC stops costing bytes (savings = 0).

    Solving ``h g + (1-h)(s + 2g) = s`` gives ``h* = 2g / (s + g)``.
    With Table 2 values h* is about 0.019 — the paper's "as long as 1% or
    more fragments are served from cache" claim, to rounding.
    """
    return (2.0 * params.tag_size) / (params.fragment_size + params.tag_size)


# ---------------------------------------------------------------------------
# Sweeps (the analytical series behind each figure)
# ---------------------------------------------------------------------------


def sweep(
    params: AnalysisParams,
    field: str,
    values: Sequence[float],
    metric: Callable[[AnalysisParams], float],
) -> List[Tuple[float, float]]:
    """Generic one-dimensional sensitivity sweep."""
    return [(value, metric(params.with_(**{field: value}))) for value in values]


def figure_2a_series(
    params: AnalysisParams, sizes: Sequence[float]
) -> List[Tuple[float, float]]:
    """B_C/B_NC vs fragment size (bytes in, ratio out)."""
    return sweep(params, "fragment_size", sizes, bytes_ratio)


def figure_2b_series(
    params: AnalysisParams, hit_ratios: Sequence[float]
) -> List[Tuple[float, float]]:
    """Savings-in-bytes-served %% vs hit ratio."""
    return sweep(params, "hit_ratio", hit_ratios, savings_percent)


def cacheability_series(
    params: AnalysisParams, cacheabilities: Sequence[float]
) -> List[Tuple[float, float]]:
    """Savings-in-bytes-served %% vs cacheability (Fig 3(a) upper curve)."""
    return sweep(params, "cacheability", cacheabilities, savings_percent)
