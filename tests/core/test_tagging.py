"""Tests for the tagging API: TagRegistry and PageBuilder."""

import pytest

from repro.core.bem import BackEndMonitor
from repro.core.fragments import Dependency
from repro.core.tagging import PageBuilder, TagRegistry
from repro.core.template import GetInstruction, Literal, SetInstruction
from repro.errors import TaggingError


@pytest.fixture
def registry():
    reg = TagRegistry()
    reg.tag("navbar", ttl=60.0)
    reg.tag(
        "listing",
        dependencies=lambda params: (
            Dependency("products", where_column="category",
                       where_value=params["cat"]),
        ),
    )
    reg.tag("banner", cacheable=False)
    return reg


class TestTagRegistry:
    def test_duplicate_tag_rejected(self, registry):
        with pytest.raises(TaggingError):
            registry.tag("navbar")

    def test_lookup(self, registry):
        assert registry.lookup("navbar").ttl == 60.0
        assert registry.lookup("nothing") is None

    def test_cacheable_fraction(self, registry):
        assert registry.cacheable_fraction() == pytest.approx(2 / 3)

    def test_cacheable_fraction_empty(self):
        assert TagRegistry().cacheable_fraction() == 0.0

    def test_metadata_from_params(self, registry):
        meta = registry.lookup("listing").metadata_for({"cat": "books"})
        assert meta.dependencies[0].where_value == "books"

    def test_contains_and_names(self, registry):
        assert "navbar" in registry
        assert registry.names() == ["banner", "listing", "navbar"]
        assert len(registry) == 3


class TestPageBuilderNoCache:
    def test_everything_is_literal(self, registry):
        builder = PageBuilder(registry, bem=None)
        builder.literal("<html>")
        builder.block("navbar", {}, lambda: "NAV")
        builder.literal("</html>")
        template = builder.finish()
        assert template.instructions == [Literal("<html>NAV</html>")]

    def test_full_page_renders(self, registry):
        builder = PageBuilder(registry, bem=None)
        builder.block("navbar", {}, lambda: "NAV")
        assert builder.full_page() == "NAV"

    def test_stats_without_bem_count_as_generated(self, registry):
        builder = PageBuilder(registry, bem=None)
        builder.block("navbar", {}, lambda: "12345")
        assert builder.stats.generated_bytes == 5
        assert builder.stats.hits == 0


class TestPageBuilderWithBem:
    def test_miss_then_hit_instructions(self, registry):
        bem = BackEndMonitor(capacity=8)
        first = PageBuilder(registry, bem=bem)
        first.block("navbar", {}, lambda: "NAV")
        assert isinstance(first.finish().instructions[0], SetInstruction)

        second = PageBuilder(registry, bem=bem)
        second.block("navbar", {}, lambda: "NAV")
        assert isinstance(second.finish().instructions[0], GetInstruction)
        assert second.stats.hits == 1

    def test_untagged_block_never_cached(self):
        bem = BackEndMonitor(capacity=8)
        registry = TagRegistry()
        builder = PageBuilder(registry, bem=bem)
        builder.block("mystery", {}, lambda: "X")
        assert builder.finish().instructions == [Literal("X")]
        assert bem.stats.cacheable_blocks == 0

    def test_non_cacheable_tag_never_cached(self, registry):
        bem = BackEndMonitor(capacity=8)
        builder = PageBuilder(registry, bem=bem)
        builder.block("banner", {}, lambda: "B")
        assert builder.finish().instructions == [Literal("B")]

    def test_full_page_unavailable_in_cached_mode(self, registry):
        bem = BackEndMonitor(capacity=8)
        builder = PageBuilder(registry, bem=bem)
        builder.block("navbar", {}, lambda: "NAV")
        with pytest.raises(TaggingError):
            builder.full_page()

    def test_params_differentiate_fragments(self, registry):
        bem = BackEndMonitor(capacity=8)
        b1 = PageBuilder(registry, bem=bem)
        b1.block("listing", {"cat": "books"}, lambda: "BOOKS")
        b2 = PageBuilder(registry, bem=bem)
        b2.block("listing", {"cat": "toys"}, lambda: "TOYS")
        assert bem.stats.fragment_misses == 2  # no false sharing


class TestPageBuilderLifecycle:
    def test_block_requires_generator(self, registry):
        builder = PageBuilder(registry)
        with pytest.raises(TaggingError):
            builder.block("navbar", {})

    def test_write_after_finish_rejected(self, registry):
        builder = PageBuilder(registry)
        builder.finish()
        with pytest.raises(TaggingError):
            builder.literal("late")
        with pytest.raises(TaggingError):
            builder.block("navbar", {}, lambda: "x")

    def test_response_body_auto_finishes(self, registry):
        builder = PageBuilder(registry)
        builder.literal("page")
        assert builder.response_body() == "page"

    def test_empty_literal_skipped(self, registry):
        builder = PageBuilder(registry)
        builder.literal("")
        assert builder.finish().instructions == []
