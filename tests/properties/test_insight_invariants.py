"""Insight-layer properties (ISSUE acceptance): the miss-cause sum
invariant under random workloads with faults and overload, Mattson
exactness against a re-simulated LRU at every small slot count, and
no-alert on compliant-by-construction sample streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.core.fragments import Dependency, FragmentID
from repro.faults.recovery import ResyncProtocol
from repro.insight import InsightLayer, SloEngine, SloObjective, simulate_lru
from repro.insight.mattson import ReuseDistanceProfiler
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites.synthetic import (
    SYNTHETIC_TABLE,
    SyntheticParams,
    build_server,
    build_services,
    touch_fragment,
)

# ---------------------------------------------------------------------------
# 1. Miss-cause sum invariant: random interleavings of requests, data
#    churn, TTL lapses, proxy wipes (fault path), and shed notes
#    (overload path) against an undersized directory.
# ---------------------------------------------------------------------------

lifecycle_events = st.lists(
    st.one_of(
        st.tuples(st.just("request"), st.integers(0, 9)),
        st.tuples(st.just("touch"), st.integers(0, 39)),
        st.tuples(st.just("tick"), st.floats(0.1, 20.0)),
        st.tuples(st.just("wipe"), st.just(0)),
        st.tuples(st.just("shed"), st.integers(0, 39)),
    ),
    max_size=50,
)


@given(lifecycle_events)
@settings(max_examples=50, deadline=None)
def test_miss_causes_sum_to_misses_under_random_lifecycles(events):
    params = SyntheticParams(fragment_size=64)
    clock = SimulatedClock()
    # Capacity below the 40-fragment pool so evictions occur too.
    bem = BackEndMonitor(capacity=16, clock=clock)
    services = build_services(params)
    server = build_server(params, services=services, clock=clock, bem=bem,
                          cost_model=FREE)
    bem.attach_database(services.db.bus)
    # TTL on the block so expiry joins the mix (keep the data dependency).
    services.tags.retag(
        "frag", ttl=5.0,
        dependencies=lambda p: (Dependency(SYNTHETIC_TABLE, key=int(p["id"])),),
    )
    dpc = DynamicProxyCache(capacity=16)
    insight = InsightLayer().attach(bem=bem, dpc=dpc)

    for kind, value in events:
        if kind == "request":
            request = HttpRequest("/page.jsp", {"pageID": str(value)})
            dpc.process_response(server.handle(request).body)
        elif kind == "touch":
            touch_fragment(services, value)
        elif kind == "tick":
            clock.advance(value)
        elif kind == "wipe":
            dpc.clear()
            ResyncProtocol(bem, dpc).resync(dpc.epoch, clock.now())
        else:  # shed: overload protection declined a refill opportunity
            canonical = FragmentID.create(
                "frag", {"id": value}
            ).canonical()
            insight.note_shed(canonical)

    insight.check_invariants(bem.directory)
    assert insight.ledger.cause_total() == bem.directory.stats.misses


# ---------------------------------------------------------------------------
# 2. Mattson exactness: the single-pass prediction equals a re-simulated
#    fixed-size LRU for every num_slots in 1..8, on arbitrary
#    access/invalidate streams (stale-in-place semantics).
# ---------------------------------------------------------------------------

profiler_events = st.lists(
    st.tuples(
        st.sampled_from(["access", "invalidate"]),
        st.integers(0, 11),
    ),
    max_size=120,
)


@given(profiler_events)
@settings(max_examples=120, deadline=None)
def test_mattson_prediction_equals_resimulation(events):
    profiler = ReuseDistanceProfiler(keep_events=True)
    for kind, index in events:
        name = "f%d" % index
        if kind == "access":
            profiler.on_access(name)
        else:
            profiler.on_invalidate(name)
    for num_slots in range(1, 9):
        hits, accesses = simulate_lru(profiler.events, num_slots)
        assert hits == profiler.predicted_hits(num_slots), num_slots
        assert accesses == profiler.accesses


# ---------------------------------------------------------------------------
# 3. SLO quiescence: a run that is compliant by construction (every
#    sample good) never fires an alert, whatever the timing.
# ---------------------------------------------------------------------------

good_samples = st.lists(
    st.tuples(
        st.floats(0.0, 0.5),     # values, all within the <= 0.5 threshold
        st.floats(0.001, 2.0),   # inter-arrival gaps
    ),
    max_size=200,
)


@given(good_samples)
@settings(max_examples=80, deadline=None)
def test_no_alert_on_compliant_by_construction_run(samples):
    engine = SloEngine([SloObjective(
        name="slo.latency", metric="request.elapsed_s",
        comparator="<=", threshold=0.5, compliance_target=0.95,
        long_window_s=10.0, short_window_s=1.0,
        burn_threshold=2.0, min_samples=5,
    )])
    now = 0.0
    for value, gap in samples:
        now += gap
        engine.observe("request.elapsed_s", value, now=now)
    assert engine.alerts == []
    assert engine.active_alerts() == []
    assert engine.compliance("slo.latency") == 1.0
