"""A realistic-site run: BooksOnline behind the Figure 4 topology.

The synthetic testbed isolates the Table 2 parameters; this experiment
answers the practitioner's question instead: on a personalized e-commerce
site — dynamic layouts, registered/anonymous mix, Zipf-popular categories,
occasional catalog updates — what do the DPC's byte and latency savings
actually look like, and is every served page correct?

Used by ``benchmarks/bench_realistic_site.py`` and importable directly:

    from repro.harness.realistic import run_realistic_pair
    plain, dpc = run_realistic_pair(requests=500)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..errors import ConfigurationError
from ..network import (
    Channel,
    Firewall,
    LinkParameters,
    ProtocolOverheadModel,
    SimulatedClock,
    request_message,
    response_message,
)
from ..network.latency import GenerationCostModel
from ..sites import books
from ..workload import PageSpec, UserPopulation, WorkloadGenerator
from ..workload.arrivals import PoissonProcess


@dataclass
class RealisticConfig:
    cached: bool = True
    requests: int = 500
    warmup_requests: int = 100
    seed: int = 13
    registered_fraction: float = 0.6
    registered_users: int = 12
    arrival_rate: float = 50.0
    #: Probability that any given request is preceded by a catalog update
    #: (price change) — the data churn that drives real invalidations.
    update_probability: float = 0.05
    #: Sample every Nth page against the uncached oracle (0 = off).
    correctness_every: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_probability <= 1.0:
            raise ConfigurationError("update_probability must be in [0, 1]")


@dataclass
class RealisticResult:
    cached: bool
    requests: int
    origin_payload_bytes: int = 0
    origin_wire_bytes: int = 0
    measured_hit_ratio: float = 0.0
    response_times: List[float] = field(default_factory=list)
    pages_checked: int = 0
    pages_incorrect: int = 0
    catalog_updates: int = 0

    @property
    def mean_response_time(self) -> float:
        """Mean end-to-end response time over the measured window."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)


def _build_workload(config: RealisticConfig, services) -> WorkloadGenerator:
    categories = sorted(
        {str(row["category"]) for row in services.db.table(books.PRODUCTS_TABLE).scan()}
    )
    product_ids = [str(k) for k in services.db.table(books.PRODUCTS_TABLE).keys()]
    pages = [PageSpec.create("/home.jsp")]
    pages += [
        PageSpec.create("/catalog.jsp", {"categoryID": c}) for c in categories
    ]
    pages += [
        PageSpec.create("/product.jsp", {"productID": p})
        for p in product_ids[:10]
    ]
    population = UserPopulation(
        user_ids=["user%03d" % i for i in range(config.registered_users)],
        registered_fraction=config.registered_fraction,
    )
    return WorkloadGenerator(
        pages=pages,
        population=population,
        arrivals=PoissonProcess(rate=config.arrival_rate),
        page_alpha=1.0,
        seed=config.seed,
    )


def run_realistic(config: RealisticConfig) -> RealisticResult:
    """Run BooksOnline through the topology in one mode."""
    clock = SimulatedClock()
    services = books.build_services(seed=config.seed)
    bem = (
        BackEndMonitor(capacity=4096, clock=clock) if config.cached else None
    )
    server = books.build_server(
        services=services, clock=clock, bem=bem,
        cost_model=GenerationCostModel(),
    )
    if bem is not None:
        bem.attach_database(services.db.bus)
    dpc = DynamicProxyCache(capacity=4096) if config.cached else None
    firewall = Firewall()
    link = Channel(
        "origin-link", "external", "origin",
        link=LinkParameters(), overhead=ProtocolOverheadModel(), clock=clock,
    )
    sniffer = link.attach_sniffer()
    update_rng = random.Random(config.seed + 99)
    product_ids = [str(k) for k in services.db.table(books.PRODUCTS_TABLE).keys()]

    workload = _build_workload(config, services).materialize(
        config.warmup_requests + config.requests
    )
    result = RealisticResult(cached=config.cached, requests=config.requests)
    hits_at_cut = misses_at_cut = 0

    for index, timed in enumerate(workload):
        if index == config.warmup_requests:
            sniffer.reset()
            if bem is not None:
                hits_at_cut = bem.stats.fragment_hits
                misses_at_cut = bem.stats.fragment_misses
        clock.advance_to(timed.at)

        # Background catalog churn (same rng in both modes -> paired runs).
        if update_rng.random() < config.update_probability:
            product = update_rng.choice(product_ids)
            services.db.table(books.PRODUCTS_TABLE).update(
                {"price": round(update_rng.uniform(3.0, 80.0), 2)},
                key=product,
            )
            if index >= config.warmup_requests:
                result.catalog_updates += 1

        start = clock.now()
        clock.advance(firewall.scan_bytes(timed.request.payload_bytes))
        link.send(
            request_message(timed.request.payload_bytes, "external", "origin")
        )
        response = server.handle(timed.request)
        link.send(
            response_message(response.payload_bytes, "origin", "external")
        )
        clock.advance(firewall.scan_bytes(response.payload_bytes))
        if dpc is not None:
            page = dpc.process_response(response.body)
            html = page.html
        else:
            html = response.body
        elapsed = clock.now() - start

        if index >= config.warmup_requests:
            result.response_times.append(elapsed)
            if (
                config.correctness_every
                and (index - config.warmup_requests) % config.correctness_every
                == 0
            ):
                result.pages_checked += 1
                oracle = server.render_reference_page(timed.request)
                if html != oracle:
                    result.pages_incorrect += 1

    responses = sniffer.counters("response")
    result.origin_payload_bytes = responses.payload_bytes
    result.origin_wire_bytes = responses.wire_bytes
    if bem is not None:
        hits = bem.stats.fragment_hits - hits_at_cut
        misses = bem.stats.fragment_misses - misses_at_cut
        if hits + misses:
            result.measured_hit_ratio = hits / (hits + misses)
    return result


def run_realistic_pair(
    requests: int = 500, warmup: int = 100, seed: int = 13
) -> Tuple[RealisticResult, RealisticResult]:
    """No-cache and DPC runs over the identical workload and churn."""
    plain = run_realistic(
        RealisticConfig(cached=False, requests=requests,
                        warmup_requests=warmup, seed=seed)
    )
    dpc = run_realistic(
        RealisticConfig(cached=True, requests=requests,
                        warmup_requests=warmup, seed=seed)
    )
    return plain, dpc
