"""Property: KMP agrees with the built-in string search (invariant 3)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scanner import failure_function, kmp_find, kmp_find_all

small_alphabet = st.text(alphabet="ab<~", max_size=60)
patterns = st.text(alphabet="ab<~", min_size=1, max_size=6)


def naive_find_all(text, pattern):
    positions = []
    start = 0
    while True:
        index = text.find(pattern, start)
        if index == -1:
            return positions
        positions.append(index)
        start = index + 1  # overlapping occurrences included


@given(small_alphabet, patterns)
@settings(max_examples=400)
def test_kmp_matches_naive(text, pattern):
    assert kmp_find_all(text, pattern) == naive_find_all(text, pattern)


@given(small_alphabet, patterns, st.integers(0, 60))
def test_kmp_find_matches_str_find(text, pattern, start):
    assert kmp_find(text, pattern, start) == text.find(pattern, start)


@given(patterns)
def test_failure_function_invariants(pattern):
    table = failure_function(pattern)
    assert len(table) == len(pattern)
    assert table[0] == 0
    for i, value in enumerate(table):
        # A failure value is a proper prefix length of the prefix ending at i.
        assert 0 <= value <= i
        if value:
            assert pattern[:value] == pattern[i - value + 1 : i + 1]


@given(st.text(alphabet=string.printable, max_size=200))
def test_sentinel_scan_agrees_with_find(text):
    assert kmp_find_all(text, "<~") == naive_find_all(text, "<~")
