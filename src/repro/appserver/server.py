"""The application server: request dispatch, script execution, response build.

Plays the role of IIS + the ASP engine in the paper's testbed.  One server
instance runs in exactly one of two modes:

* **no-cache** (``bem=None``) — every block executes; the response body is
  the full page.  This is the paper's baseline configuration.
* **DPC** (``bem`` set) — tagged blocks run the §4.3.2 protocol; the
  response body is the serialized page template.

Either way, ``handle()`` returns an :class:`HttpResponse` whose ``meta``
records what happened (mode, hit/miss counts, virtual generation time), so
the harness can account bytes and latency without reaching into internals.
"""

from __future__ import annotations

from typing import Optional

from ..core.bem import BackEndMonitor
from ..core.tagging import PageBuilder
from ..core.template import DEFAULT_CONFIG, TemplateConfig
from ..errors import DeadlineExceededError, OverloadError, ScriptError
from ..network.clock import SimulatedClock
from ..network.latency import GenerationCostModel
from ..telemetry.tracing import NULL_TRACER
from .http import DEFAULT_RESPONSE_HEADER_BYTES, HttpRequest, HttpResponse
from .scripts import DynamicScript, ScriptContext, ScriptRegistry, SiteServices
from .session import SessionManager


class ApplicationServer:
    """Executes dynamic scripts against site services."""

    def __init__(
        self,
        services: SiteServices,
        clock: Optional[SimulatedClock] = None,
        bem: Optional[BackEndMonitor] = None,
        cost_model: Optional[GenerationCostModel] = None,
        response_header_bytes: int = DEFAULT_RESPONSE_HEADER_BYTES,
        template_config: TemplateConfig = DEFAULT_CONFIG,
        queue=None,
        db_queue=None,
    ) -> None:
        self.services = services
        #: Optional :class:`repro.overload.queues.BoundedQueue` in front of
        #: request dispatch (duck-typed to avoid an import cycle).  ``None``
        #: keeps the paper's infinite-capacity origin.
        self.queue = queue
        #: Optional bounded queue modeling the DBMS connection pool; its
        #: service demand is the request's database share of generation.
        self.db_queue = db_queue
        self.clock = clock if clock is not None else (
            bem.clock if bem is not None else SimulatedClock()
        )
        if bem is not None and bem.clock is not self.clock:
            raise ScriptError("BEM and application server must share one clock")
        self.bem = bem
        self.cost_model = cost_model if cost_model is not None else GenerationCostModel()
        self.response_header_bytes = response_header_bytes
        self.template_config = template_config
        self.scripts = ScriptRegistry()
        self.sessions = SessionManager(self.clock)
        self.requests_served = 0
        self.total_generation_s = 0.0
        #: Tracer breaking origin-side work into ``bem.process`` →
        #: ``script.exec`` → ``script.compute``/``db.query`` spans.  When
        #: left disabled the generation advance stays one combined call,
        #: preserving the exact float arithmetic of untraced runs.
        self.tracer = NULL_TRACER
        #: Only a real BEM emits GET/SET tags; other monitors (e.g. the
        #: back-end fragment cache baseline) produce client-ready pages
        #: that must ship raw, without template escaping.
        self.emit_templates = isinstance(bem, BackEndMonitor)

    @property
    def caching_enabled(self) -> bool:
        """Whether a cache monitor (BEM or baseline) is attached."""
        return self.bem is not None

    def register(self, script: DynamicScript) -> DynamicScript:
        """Register a dynamic script with this server."""
        return self.scripts.register(script)

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request end-to-end at the origin.

        Advances the shared clock by the generation time (plus any modeled
        queueing delay), so TTLs expire under load exactly as they would on
        a busy real server.  With bounded queues attached, arrivals that
        find a full waiting room raise
        :class:`~repro.errors.QueueFullError`, and arrivals whose scheduled
        service start already misses their deadline raise
        :class:`~repro.errors.DeadlineExceededError` — both *before* any
        script work runs, so rejections have no side effects.

        With tracing enabled the same work is reported as a ``bem.process``
        span containing ``script.exec`` (itself split into
        ``script.compute`` and ``db.query`` leaves, plus any ``queue.wait``
        the connection pool injected mid-script) and origin-side
        ``queue.wait`` spans — every clock advance lands in a leaf, so the
        tree tiles exactly.
        """
        with self.tracer.span("bem.process", path=request.path) as process_span:
            response = self._handle_inner(request)
            process_span.annotate(
                mode=response.meta["mode"],
                hits=response.meta["hits"],
                misses=response.meta["misses"],
            )
            return response

    def _handle_inner(self, request: HttpRequest) -> HttpResponse:
        script = self.scripts.resolve(request.path)
        arrival = (
            request.arrived_at if request.arrived_at is not None
            else self.clock.now()
        )
        self._screen_admission(arrival, request.deadline_at, request.priority)
        session = self.sessions.resolve(request.session_id, request.user_id)
        builder = PageBuilder(
            self.services.tags, bem=self.bem, template_config=self.template_config
        )
        ctx = ScriptContext(
            request=request,
            session=session,
            services=self.services,
            builder=builder,
            cost_model=self.cost_model,
            bem=self.bem,
        )
        rows_before = self.services.db.total_rows_read()
        with self.tracer.span("script.exec"):
            if self.bem is not None:
                self.bem.deadline_at = request.deadline_at
            try:
                script.run(ctx)
            except Exception as exc:
                if isinstance(exc, (ScriptError, OverloadError)):
                    raise
                raise ScriptError(
                    "script %r failed: %s" % (request.path, exc)
                ) from exc
            finally:
                if self.bem is not None:
                    self.bem.deadline_at = None

            template = builder.finish()
            if self.emit_templates:
                body = template.serialize()
            else:
                body = builder.full_page()
            if self.tracer.enabled:
                with self.tracer.span("script.compute"):
                    self.clock.advance(ctx.generation_cost_s - ctx.db_cost_s)
                with self.tracer.span("db.query", rows=ctx.db_rows):
                    self.clock.advance(ctx.db_cost_s)
        app_wait_s = db_wait_s = 0.0
        if self.queue is not None:
            app_wait_s = self.queue.offer(
                arrival, ctx.generation_cost_s, request.priority
            ).wait_s
        if self.db_queue is not None:
            db_rows = self.services.db.total_rows_read() - rows_before
            db_service_s = (
                self.cost_model.db_connection_wait_s
                + db_rows * self.cost_model.db_row_cost_s
            )
            db_wait_s = self.db_queue.offer(
                arrival, db_service_s, request.priority
            ).wait_s
        if self.tracer.enabled:
            if app_wait_s > 0:
                with self.tracer.span("queue.wait", queue="appserver"):
                    self.clock.advance(app_wait_s)
            if db_wait_s > 0:
                with self.tracer.span("queue.wait", queue="db_pool"):
                    self.clock.advance(db_wait_s)
        else:
            self.clock.advance(ctx.generation_cost_s + app_wait_s + db_wait_s)
        self.requests_served += 1
        self.total_generation_s += ctx.generation_cost_s

        return HttpResponse(
            body=body,
            header_bytes=self.response_header_bytes,
            meta={
                "app_wait_s": app_wait_s,
                "db_wait_s": db_wait_s,
                "mode": (
                    "dpc"
                    if self.emit_templates
                    else ("backend" if self.caching_enabled else "plain")
                ),
                "path": request.path,
                "url": request.url,
                "blocks": builder.stats.blocks,
                "hits": builder.stats.hits,
                "misses": builder.stats.misses,
                "generated_bytes": builder.stats.generated_bytes,
                "generation_s": ctx.generation_cost_s,
                "get_count": template.get_count,
                "set_count": template.set_count,
            },
        )

    def _screen_admission(
        self, arrival: float, deadline_at: Optional[float], priority: int = 0
    ) -> None:
        """Reject doomed arrivals before any script work runs.

        Queue-full and already-hopeless-deadline arrivals are turned away
        at the door: no script executes, no directory entry is inserted,
        no SET is emitted — so a rejection can never desynchronize the
        BEM and DPC.
        """
        latest_start = arrival
        for queue in (self.queue, self.db_queue):
            if queue is None:
                continue
            if queue.full(arrival, priority):
                queue.reject(arrival)
            latest_start = max(latest_start, queue.next_start(arrival))
        if deadline_at is not None and latest_start >= deadline_at:
            raise DeadlineExceededError(
                "service would start at %.6f, past the %.6f deadline"
                % (latest_start, deadline_at)
            )

    def render_reference_page(self, request: HttpRequest) -> str:
        """Oracle: the page this request *should* produce, uncached.

        Runs the script with caching disabled against the same services and
        session state, without advancing the clock or counters — used by the
        correctness invariants and the baseline-incorrectness benches.
        """
        script = self.scripts.resolve(request.path)
        session = self.sessions.resolve(request.session_id, request.user_id)
        builder = PageBuilder(self.services.tags, bem=None)
        ctx = ScriptContext(
            request=request,
            session=session,
            services=self.services,
            builder=builder,
            cost_model=self.cost_model,
            bem=None,
        )
        script.run(ctx)
        builder.finish()
        return builder.full_page()
