"""Reuse-distance profiler: exactness, laziness, and the Fenwick tree."""

import random

import pytest

from repro.insight.mattson import (
    ReuseDistanceProfiler,
    _FenwickTree,
    simulate_lru,
)


class TestFenwick:
    def test_matches_naive_prefix_sums(self):
        rng = random.Random(11)
        tree = _FenwickTree()
        naive = [0] * 2001
        for _ in range(3000):
            position = rng.randint(1, 2000)
            delta = rng.choice((-1, 1))
            tree.add(position, delta)
            naive[position] += delta
            probe = rng.randint(0, 2000)
            assert tree.prefix(probe) == sum(naive[: probe + 1])

    def test_prefix_beyond_size_clamps(self):
        tree = _FenwickTree()
        tree.add(3, 5)
        assert tree.prefix(10_000) == 5


class TestProfiler:
    def test_cold_misses(self):
        profiler = ReuseDistanceProfiler()
        for name in "abc":
            profiler.on_access(name)
        assert profiler.cold_misses == 3
        assert profiler.predicted_hits(100) == 0

    def test_distance_zero_reuse_hits_everywhere(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access("a")
        profiler.on_access("a")
        assert profiler.histogram == {0: 1}
        assert profiler.predicted_hits(1) == 1

    def test_interleaved_distances(self):
        profiler = ReuseDistanceProfiler()
        for name in ("a", "b", "a"):   # a reused across one distinct frag
            profiler.on_access(name)
        assert profiler.histogram == {1: 1}
        assert profiler.predicted_hits(1) == 0
        assert profiler.predicted_hits(2) == 1

    def test_stale_in_place_misses_at_every_size(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access("a")
        profiler.on_invalidate("a")
        profiler.on_access("a")
        assert profiler.stale_misses == 1
        assert profiler.predicted_hits(10) == 0
        # The next (valid) reuse still sees its stack position.
        profiler.on_access("a")
        assert profiler.predicted_hits(1) == 1

    def test_invalidate_of_unknown_fragment_ignored(self):
        profiler = ReuseDistanceProfiler(keep_events=True)
        profiler.on_invalidate("ghost")
        profiler.on_access("a")
        assert profiler.events == [("access", "a")]
        assert profiler.stale_misses == 0

    def test_curve_is_monotone_nondecreasing(self):
        rng = random.Random(5)
        profiler = ReuseDistanceProfiler()
        for _ in range(500):
            profiler.on_access("f%d" % rng.randint(0, 30))
            if rng.random() < 0.2:
                profiler.on_invalidate("f%d" % rng.randint(0, 30))
        curve = profiler.curve(range(1, 40))
        ratios = [ratio for _, ratio in curve]
        assert ratios == sorted(ratios)
        assert ratios[-1] == pytest.approx(profiler.asymptotic_hit_ratio())

    def test_recommend_slots_reaches_fraction_of_asymptote(self):
        rng = random.Random(6)
        profiler = ReuseDistanceProfiler()
        for _ in range(800):
            profiler.on_access("f%d" % rng.randint(0, 40))
        recommended = profiler.recommend_slots(fraction=0.95)
        target = profiler.asymptotic_hit_ratio() * 0.95
        assert profiler.predicted_hit_ratio(recommended) >= target
        if recommended > 1:
            assert profiler.predicted_hit_ratio(recommended - 1) < target

    def test_lazy_folding_interleaves_with_feeding(self):
        """Reads mid-stream fold only the prefix; resuming stays exact."""
        eager = ReuseDistanceProfiler()
        lazy = ReuseDistanceProfiler()
        rng = random.Random(7)
        stream = ["f%d" % rng.randint(0, 8) for _ in range(200)]
        for index, name in enumerate(stream):
            eager.on_access(name)
            lazy.on_access(name)
            if index % 17 == 0:
                lazy.predicted_hits(4)  # force a mid-stream fold
        assert lazy.histogram == eager.histogram
        assert lazy.cold_misses == eager.cold_misses
        assert lazy.accesses == eager.accesses

    def test_events_none_unless_kept(self):
        assert ReuseDistanceProfiler().events is None
        assert ReuseDistanceProfiler(keep_events=True).events == []

    def test_metric_rows_are_canonical(self):
        from repro.telemetry.naming import METRIC_NAMES

        profiler = ReuseDistanceProfiler()
        for name, _ in profiler.metric_rows():
            assert name in METRIC_NAMES, name


class TestSimulateLru:
    def test_matches_profiler_on_random_streams(self):
        rng = random.Random(3)
        profiler = ReuseDistanceProfiler(keep_events=True)
        for _ in range(600):
            if rng.random() < 0.75:
                profiler.on_access("f%d" % rng.randint(0, 12))
            else:
                profiler.on_invalidate("f%d" % rng.randint(0, 12))
        for num_slots in range(1, 16):
            hits, accesses = simulate_lru(profiler.events, num_slots)
            assert hits == profiler.predicted_hits(num_slots), num_slots
            assert accesses == profiler.accesses

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            simulate_lru([], 0)

    def test_rejects_unknown_event_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            simulate_lru([("explode", "f")], 4)
