"""Cache warming: prime the DPC before exposing it to live traffic.

Section 7's cache-management discussion implies an operational need the
paper's reverse-proxy deployment faced on every restart: a cold DPC makes
the first wave of users pay full generation and transfer costs.  The
warmer replays a curated request set — typically the most popular pages
per the site's own Zipf profile — through the origin/DPC pair before the
proxy is put in rotation, and reports what it pre-loaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..appserver.http import HttpRequest
from ..appserver.server import ApplicationServer
from ..core.dpc import DynamicProxyCache
from ..errors import ConfigurationError
from ..workload.generator import PageSpec
from ..workload.users import Visitor


@dataclass
class WarmupReport:
    """What a warming pass accomplished."""

    requests_replayed: int = 0
    fragments_loaded: int = 0
    fragments_already_warm: int = 0
    bytes_generated: int = 0
    slots_occupied: int = 0

    @property
    def was_effective(self) -> bool:
        """Whether the pass actually loaded anything new."""
        return self.fragments_loaded > 0


class CacheWarmer:
    """Replays request sets through an origin/DPC pair."""

    def __init__(self, server: ApplicationServer, dpc: DynamicProxyCache) -> None:
        if not server.caching_enabled:
            raise ConfigurationError(
                "warming needs a cache-enabled origin (a BEM is attached)"
            )
        self.server = server
        self.dpc = dpc

    def warm_requests(self, requests: Iterable[HttpRequest]) -> WarmupReport:
        """Replay explicit requests; returns the warming report."""
        report = WarmupReport()
        for request in requests:
            response = self.server.handle(request)
            page = self.dpc.process_response(response.body)
            report.requests_replayed += 1
            report.fragments_loaded += page.fragments_set
            report.fragments_already_warm += page.fragments_get
            report.bytes_generated += int(response.meta.get("generated_bytes", 0))
        report.slots_occupied = self.dpc.occupied_slots()
        return report

    def warm_pages(
        self,
        pages: Sequence[PageSpec],
        user_ids: Sequence[Optional[str]] = (None,),
    ) -> WarmupReport:
        """Replay a page list for each identity in ``user_ids``.

        Warming anonymous traffic loads the shared fragments; adding the
        heaviest registered users also pre-loads their personalized ones.
        """
        requests: List[HttpRequest] = []
        for user_id in user_ids:
            visitor = Visitor(
                user_id=user_id,
                session_id="warmup-%s" % (user_id or "anon"),
            )
            for page in pages:
                requests.append(page.to_request(visitor))
        return self.warm_requests(requests)
