"""Tests for the bounded c-server queues."""

import pytest

from repro.errors import ConfigurationError, QueueFullError
from repro.overload.queues import BoundedQueue, QueuePlacement


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue("q", capacity=0)
        with pytest.raises(ConfigurationError):
            BoundedQueue("q", capacity=4, servers=0)
        with pytest.raises(ConfigurationError):
            BoundedQueue("q", capacity=4, discipline="lifo")
        with pytest.raises(ConfigurationError):
            BoundedQueue("q", capacity=4, reserve_fraction=1.0)


class TestScheduling:
    def test_idle_server_serves_immediately(self):
        queue = BoundedQueue("q", capacity=4, servers=1)
        placement = queue.offer(0.0, 1.0)
        assert placement == QueuePlacement(
            wait_s=0.0, start_at=0.0, finish_at=1.0, depth=0
        )

    def test_busy_server_queues_the_next_arrival(self):
        queue = BoundedQueue("q", capacity=4, servers=1)
        queue.offer(0.0, 1.0)
        placement = queue.offer(0.5, 1.0)
        assert placement.wait_s == pytest.approx(0.5)
        assert placement.start_at == pytest.approx(1.0)

    def test_c_servers_run_in_parallel(self):
        queue = BoundedQueue("q", capacity=8, servers=2)
        assert queue.offer(0.0, 1.0).wait_s == 0.0
        assert queue.offer(0.0, 1.0).wait_s == 0.0   # second server
        assert queue.offer(0.0, 1.0).wait_s == pytest.approx(1.0)

    def test_waiting_room_overflow_raises(self):
        queue = BoundedQueue("q", capacity=2, servers=1)
        queue.offer(0.0, 10.0)             # in service
        queue.offer(0.0, 10.0)             # waiting (1)
        queue.offer(0.0, 10.0)             # waiting (2) == capacity
        with pytest.raises(QueueFullError):
            queue.offer(0.0, 10.0)
        assert queue.stats.rejected == 1
        assert queue.stats.admitted == 3

    def test_depth_drains_as_time_passes(self):
        queue = BoundedQueue("q", capacity=8, servers=1)
        for _ in range(4):
            queue.offer(0.0, 1.0)
        assert queue.depth(0.0) == 3
        assert queue.depth(1.5) == 2
        assert queue.depth(10.0) == 0

    def test_out_of_order_offers_rejected(self):
        queue = BoundedQueue("q", capacity=4)
        queue.offer(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            queue.offer(4.0, 1.0)

    def test_expected_wait_matches_next_placement(self):
        queue = BoundedQueue("q", capacity=8, servers=1)
        queue.offer(0.0, 2.0)
        assert queue.expected_wait(0.5) == pytest.approx(1.5)
        assert queue.offer(0.5, 1.0).wait_s == pytest.approx(1.5)

    def test_screened_reject_counts_and_raises(self):
        queue = BoundedQueue("q", capacity=4)
        with pytest.raises(QueueFullError):
            queue.reject(0.0)
        assert queue.stats.offered == 1
        assert queue.stats.rejected == 1

    def test_reset_forgets_schedule_and_stats(self):
        queue = BoundedQueue("q", capacity=4, servers=1)
        queue.offer(0.0, 5.0)
        queue.offer(0.0, 5.0)
        queue.reset()
        assert queue.depth(0.0) == 0
        assert queue.stats.offered == 0
        assert queue.offer(0.0, 1.0).wait_s == 0.0


class TestPriorityDiscipline:
    def test_best_effort_hits_the_unreserved_limit_first(self):
        queue = BoundedQueue(
            "q", capacity=4, servers=1, discipline="priority",
            reserve_fraction=0.5,
        )
        queue.offer(0.0, 10.0)                      # in service
        queue.offer(0.0, 10.0, priority=0)          # waiting 1
        queue.offer(0.0, 10.0, priority=0)          # waiting 2 == limit
        with pytest.raises(QueueFullError):
            queue.offer(0.0, 10.0, priority=0)      # best effort refused
        queue.offer(0.0, 10.0, priority=1)          # reserved room remains
        queue.offer(0.0, 10.0, priority=1)
        with pytest.raises(QueueFullError):
            queue.offer(0.0, 10.0, priority=1)      # full outright

    def test_full_is_priority_aware(self):
        queue = BoundedQueue(
            "q", capacity=4, servers=1, discipline="priority",
            reserve_fraction=0.5,
        )
        queue.offer(0.0, 10.0)
        queue.offer(0.0, 10.0)
        queue.offer(0.0, 10.0)
        assert queue.full(0.0, priority=0)
        assert not queue.full(0.0, priority=1)


class TestStats:
    def test_mean_wait_over_admitted(self):
        queue = BoundedQueue("q", capacity=8, servers=1)
        queue.offer(0.0, 1.0)
        queue.offer(0.0, 1.0)   # waits 1.0
        queue.offer(0.0, 1.0)   # waits 2.0
        assert queue.stats.mean_wait_s == pytest.approx(1.0)
        assert queue.stats.busy_s == pytest.approx(3.0)
        assert queue.stats.max_depth == 2
