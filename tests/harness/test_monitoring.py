"""Tests for the deployment snapshot."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.harness.monitoring import DeploymentSnapshot, take_snapshot
from repro.network import Firewall, Sniffer, response_message
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


@pytest.fixture
def active_deployment():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=256, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=256)
    for i in range(4):
        request = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                              session_id="s%d" % i)
        dpc.process_response(server.handle(request).body)
    return bem, dpc


class TestSnapshot:
    def test_empty_components_give_empty_snapshot(self):
        assert take_snapshot().rows == []

    def test_bem_metrics_present(self, active_deployment):
        bem, dpc = active_deployment
        snapshot = take_snapshot(bem=bem)
        assert snapshot.get("bem.fragment_hits") > 0
        assert 0 < snapshot.get("bem.hit_ratio") <= 1
        assert snapshot.get("directory.capacity") == 256
        assert snapshot.get("directory.valid_entries") > 0

    def test_dpc_metrics_present(self, active_deployment):
        bem, dpc = active_deployment
        snapshot = take_snapshot(dpc=dpc)
        assert snapshot.get("dpc.responses_processed") == 4
        assert snapshot.get("dpc.bytes_saved") > 0
        assert snapshot.get("dpc.slots_occupied") > 0

    def test_firewall_and_sniffer_sections(self):
        firewall = Firewall()
        firewall.scan_bytes(500)
        sniffer = Sniffer()
        sniffer.observe(response_message(1000))
        snapshot = take_snapshot(firewall=firewall, sniffer=sniffer)
        assert snapshot.get("firewall.bytes_scanned") == 500
        assert snapshot.get("link.response_payload_bytes") == 1000

    def test_render_is_a_table(self, active_deployment):
        bem, dpc = active_deployment
        text = take_snapshot(bem=bem, dpc=dpc).render()
        assert "metric" in text
        assert "bem.hit_ratio" in text
        assert "dpc.bytes_saved" in text

    def test_names_and_missing_lookup(self):
        snapshot = DeploymentSnapshot()
        snapshot.registry.register_provider(lambda: [("demo.a", 1)])
        assert snapshot.names() == ["demo.a"]
        with pytest.raises(KeyError):
            snapshot.get("zzz")

    def test_utilization_bounded(self, active_deployment):
        bem, dpc = active_deployment
        snapshot = take_snapshot(bem=bem)
        assert 0.0 <= snapshot.get("directory.utilization") <= 1.0


class TestRemovedShim:
    """The deprecation cycle is over: the legacy surface is gone."""

    def test_add_is_gone(self):
        snapshot = DeploymentSnapshot()
        assert not hasattr(snapshot, "add")

    def test_renamed_metric_no_longer_resolves(self, active_deployment):
        bem, dpc = active_deployment
        snapshot = take_snapshot(bem=bem)
        assert snapshot.get("bem.objects.memoized") >= 0
        with pytest.raises(KeyError):
            snapshot.get("objects.memoized")

    def test_snapshot_is_a_view_over_a_registry(self, active_deployment):
        from repro.telemetry import MetricsRegistry

        bem, dpc = active_deployment
        registry = MetricsRegistry()
        snapshot = take_snapshot(bem=bem, registry=registry)
        assert snapshot.registry is registry
        assert snapshot.rows == registry.collect()

    def test_snapshot_rows_are_live(self, active_deployment):
        bem, dpc = active_deployment
        snapshot = take_snapshot(bem=bem)
        before = snapshot.get("bem.fragment_hits")
        bem.stats.fragment_hits += 5
        assert snapshot.get("bem.fragment_hits") == before + 5


class TestNewSections:
    def test_database_rows_surface(self):
        from repro.database import Database

        snapshot = take_snapshot(db=Database())
        assert snapshot.get("db.statements_executed") == 0
        assert snapshot.get("db.tables") == 0

    def test_breaker_rows_surface(self):
        from repro.overload import CircuitBreaker

        snapshot = take_snapshot(breaker=CircuitBreaker())
        assert snapshot.get("overload.breaker.opens") == 0
        assert snapshot.get("overload.breaker.refused") == 0

    def test_tracer_rows_surface(self):
        from repro.telemetry import Tracer

        clock = SimulatedClock()
        tracer = Tracer(clock, enabled=True)
        with tracer.span("request"), tracer.span("bem.process"):
            clock.advance(0.01)
        snapshot = take_snapshot(tracer=tracer)
        assert snapshot.get("trace.traces_completed") == 1
        assert snapshot.get("trace.spans_opened") == 2


class TestInsightSection:
    def test_insight_rows_surface(self):
        from repro.insight import InsightLayer

        insight = InsightLayer()
        insight.record_access("frag?id=1", hit=False)
        insight.record_access("frag?id=1", hit=True)
        snapshot = take_snapshot(insight=insight)
        assert snapshot.get("insight.miss.cold") == 1
        assert snapshot.get("insight.hits") == 1
        assert snapshot.get("insight.mattson.accesses") == 2

    def test_slo_rows_surface(self):
        from repro.insight import SloEngine, SloObjective

        engine = SloEngine([SloObjective(
            name="slo.demo", metric="demo.metric",
            comparator="<=", threshold=1.0, min_samples=1,
        )])
        engine.observe("demo.metric", 0.5, now=1.0)
        snapshot = take_snapshot(slo=engine)
        assert snapshot.get("slo.objectives") == 1
        assert snapshot.get("slo.samples") == 1
        assert snapshot.get("slo.alerts_fired") == 0


class TestOverloadSection:
    def test_drop_ledger_rows_surface(self):
        from repro.overload import DROP_REASONS, DropLedger

        ledger = DropLedger()
        ledger.record("queue_full", 4)
        ledger.record("policy_shed")
        snapshot = take_snapshot(overload=ledger)
        for reason in DROP_REASONS:
            assert snapshot.get("overload.drops.%s" % reason) >= 0
        assert snapshot.get("overload.drops.queue_full") == 4
        assert snapshot.get("overload.drops.total") == 5

    def test_channel_rows_surface(self):
        from repro.network import Channel

        channel = Channel("origin", endpoint_a="dpc", endpoint_b="appserver")
        channel.messages_sent = 12
        channel.messages_dropped = 2
        snapshot = take_snapshot(channel=channel)
        assert snapshot.get("channel.messages_sent") == 12
        assert snapshot.get("channel.messages_dropped") == 2
