"""The page-template instruction language exchanged between BEM and DPC.

At run time the BEM writes a *page template* instead of a full page: literal
layout HTML interleaved with instructions (§4.3.2):

* ``SET`` — "insert the fragment into the DPC": carries the dpcKey and the
  freshly generated fragment content (a directory miss).
* ``GET`` — "retrieve the fragment from the DPC": carries only the dpcKey
  (a directory hit).  This is the tiny tag whose size is the ``g`` of the
  Section 5 analysis.

Wire format
-----------

Tags are framed by the sentinel ``<~``::

    GET       <~G:0042~>
    SET open  <~S:0042~>...fragment content...<~E:0042~>
    escape    <~Q~>          (a literal occurrence of "<~" in content)

With the default ``key_width=4`` a GET tag is exactly **10 bytes** — the
paper's baseline tag size ``g`` (Table 2) — and a SET costs two tags, giving
the analysis' miss cost of ``s + 2g``.  dpcKeys are zero-padded integers,
which is precisely why the paper introduces the integer key: "it reduces the
tag size" versus embedding the long fragmentID (§4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from ..errors import ConfigurationError, OversizedFragmentError, TemplateError
from .scanner import TagScanner

SENTINEL = "<~"
TAG_CLOSE = "~>"
ESCAPE_TAG = "<~Q~>"


@dataclass(frozen=True)
class TemplateConfig:
    """Framing parameters shared by a BEM/DPC pair.

    ``key_width`` fixes the zero-padded dpcKey width, hence the exact tag
    size ``g = key_width + 6`` bytes and the maximum representable key.
    Both sides of a deployment must agree on it, like any wire protocol.

    ``max_fragment_bytes`` bounds one SET payload.  A proxy that accepts
    arbitrarily large fragments can be wedged by a single malformed (or
    hostile) response; anything over the limit is rejected with a typed
    :class:`~repro.errors.OversizedFragmentError` before it touches a slot.
    """

    key_width: int = 4
    max_fragment_bytes: int = 1 << 20  # 1 MiB: far above any real fragment

    def __post_init__(self) -> None:
        if self.key_width < 1:
            raise ConfigurationError("key_width must be at least 1")
        if self.max_fragment_bytes < 1:
            raise ConfigurationError("max_fragment_bytes must be positive")

    @property
    def tag_size(self) -> int:
        """Bytes per tag: ``<~`` + kind + ``:`` + key + ``~>``."""
        return self.key_width + 6

    @property
    def max_key(self) -> int:
        """Largest dpcKey representable at this key width."""
        return 10 ** self.key_width - 1

    def format_key(self, key: int) -> str:
        """Zero-padded decimal rendering of a dpcKey."""
        if not 0 <= key <= self.max_key:
            raise ConfigurationError(
                "dpcKey %d out of range for key_width=%d" % (key, self.key_width)
            )
        return "%0*d" % (self.key_width, key)


DEFAULT_CONFIG = TemplateConfig()


@dataclass(frozen=True)
class Literal:
    """Non-cacheable bytes shipped verbatim (layout markup, X_j=0 content)."""

    text: str


@dataclass(frozen=True)
class GetInstruction:
    """Splice the DPC slot ``key``'s content here (directory hit)."""

    key: int


@dataclass(frozen=True)
class SetInstruction:
    """Store ``content`` in slot ``key``, and splice it here (miss)."""

    key: int
    content: str


Instruction = Union[Literal, GetInstruction, SetInstruction]


class Template:
    """An ordered instruction stream plus its serialization/parsing."""

    def __init__(
        self,
        instructions: Iterable[Instruction] = (),
        config: TemplateConfig = DEFAULT_CONFIG,
    ) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self.config = config

    # -- construction -----------------------------------------------------------

    def add(self, instruction: Instruction) -> "Template":
        """Append one instruction (chainable)."""
        self.instructions.append(instruction)
        return self

    def literal(self, text: str) -> "Template":
        """Append literal page text (chainable)."""
        return self.add(Literal(text))

    def get(self, key: int) -> "Template":
        """Append a GET instruction (chainable)."""
        return self.add(GetInstruction(key))

    def set(self, key: int, content: str) -> "Template":
        """Append a SET instruction with content (chainable)."""
        return self.add(SetInstruction(key, content))

    # -- inspection --------------------------------------------------------------

    @property
    def get_count(self) -> int:
        """Number of GET instructions."""
        return sum(1 for i in self.instructions if isinstance(i, GetInstruction))

    @property
    def set_count(self) -> int:
        """Number of SET instructions."""
        return sum(1 for i in self.instructions if isinstance(i, SetInstruction))

    @property
    def literal_bytes(self) -> int:
        """Total UTF-8 bytes of literal text."""
        return sum(
            len(i.text.encode("utf-8"))
            for i in self.instructions
            if isinstance(i, Literal)
        )

    def normalized(self) -> "Template":
        """Merge adjacent literals and drop empty ones.

        Serialization implicitly concatenates adjacent literal text, so the
        normalized form is the canonical one: ``parse(serialize(t))`` equals
        ``t.normalized()``.
        """
        merged: List[Instruction] = []
        for instruction in self.instructions:
            if isinstance(instruction, Literal):
                if not instruction.text:
                    continue
                if merged and isinstance(merged[-1], Literal):
                    merged[-1] = Literal(merged[-1].text + instruction.text)
                    continue
            merged.append(instruction)
        return Template(merged, self.config)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Template):
            return NotImplemented
        return (
            self.instructions == other.instructions and self.config == other.config
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Template(%d instructions, %d GET, %d SET)" % (
            len(self.instructions),
            self.get_count,
            self.set_count,
        )

    # -- serialization --------------------------------------------------------------

    def serialize(self) -> str:
        """Render the wire form sent from the BEM to the DPC."""
        parts: List[str] = []
        for instruction in self.normalized().instructions:
            if isinstance(instruction, Literal):
                parts.append(_escape(instruction.text))
            elif isinstance(instruction, GetInstruction):
                parts.append(_tag(self.config, "G", instruction.key))
            elif isinstance(instruction, SetInstruction):
                parts.append(_tag(self.config, "S", instruction.key))
                parts.append(_escape(instruction.content))
                parts.append(_tag(self.config, "E", instruction.key))
            else:  # pragma: no cover - exhaustive over Instruction
                raise TemplateError("unknown instruction %r" % (instruction,))
        return "".join(parts)

    def wire_bytes(self) -> int:
        """Size of the serialized template in bytes."""
        return len(self.serialize().encode("utf-8"))


def _tag(config: TemplateConfig, kind: str, key: int) -> str:
    return "%s%s:%s%s" % (SENTINEL, kind, config.format_key(key), TAG_CLOSE)


def _escape(text: str) -> str:
    return text.replace(SENTINEL, ESCAPE_TAG)


def parse_template(
    wire: str,
    config: TemplateConfig = DEFAULT_CONFIG,
    scanner: TagScanner = None,
) -> Template:
    """Parse a serialized template back into an instruction stream.

    The scan for tags is a single linear KMP pass (the cost the Section 5
    analysis charges at ``z`` per byte).  Passing a shared
    :class:`TagScanner` lets a DPC accumulate scanned-byte counts across
    responses.
    """
    if scanner is None:
        scanner = TagScanner(SENTINEL)
    elif scanner.sentinel != SENTINEL:
        raise ConfigurationError("scanner sentinel must be %r" % SENTINEL)

    positions = scanner.positions(wire)
    template = Template(config=config)
    buffer: List[str] = []          # accumulates literal or SET content text
    open_set: Tuple[int, ...] = ()  # (key,) while inside a SET body
    cursor = 0

    def flush_literal() -> None:
        if buffer:
            template.literal("".join(buffer))
            buffer.clear()

    for position in positions:
        if position < cursor:
            # Sentinel inside a tag we already consumed (cannot happen with
            # the current grammar, but guards against malformed overlap).
            continue
        buffer.append(wire[cursor:position])
        kind, key, end = _read_tag(wire, position, config)
        cursor = end
        if kind == "Q":
            buffer.append(SENTINEL)
            continue
        if open_set:
            if kind == "E" and key == open_set[0]:
                content = "".join(buffer)
                if len(content.encode("utf-8")) > config.max_fragment_bytes:
                    raise OversizedFragmentError(
                        "SET body for key %d is %d bytes (max %d)"
                        % (
                            open_set[0],
                            len(content.encode("utf-8")),
                            config.max_fragment_bytes,
                        )
                    )
                template.set(open_set[0], content)
                buffer.clear()
                open_set = ()
                continue
            raise TemplateError(
                "unexpected %s tag inside SET body for key %d at offset %d"
                % (kind, open_set[0], position)
            )
        if kind == "G":
            flush_literal()
            template.get(key)
        elif kind == "S":
            flush_literal()
            open_set = (key,)
        elif kind == "E":
            raise TemplateError(
                "END tag for key %d without a matching SET at offset %d"
                % (key, position)
            )
    if open_set:
        raise TemplateError("unterminated SET body for key %d" % open_set[0])
    buffer.append(wire[cursor:])
    if "".join(buffer):
        template.literal("".join(buffer))
    return template.normalized()


def _read_tag(wire: str, position: int, config: TemplateConfig) -> Tuple[str, int, int]:
    """Decode one tag at ``position``; returns (kind, key, end_offset)."""
    after = position + len(SENTINEL)
    if wire.startswith("Q" + TAG_CLOSE, after):
        return "Q", -1, after + 1 + len(TAG_CLOSE)
    kind = wire[after : after + 1]
    if kind not in ("G", "S", "E"):
        raise TemplateError(
            "unknown tag kind %r at offset %d" % (wire[after : after + 1], position)
        )
    if wire[after + 1 : after + 2] != ":":
        raise TemplateError("malformed tag at offset %d (missing ':')" % position)
    key_start = after + 2
    key_end = key_start + config.key_width
    key_text = wire[key_start:key_end]
    if len(key_text) != config.key_width or not key_text.isdigit():
        raise TemplateError(
            "malformed dpcKey %r at offset %d" % (key_text, position)
        )
    if wire[key_end : key_end + len(TAG_CLOSE)] != TAG_CLOSE:
        raise TemplateError("unterminated tag at offset %d" % position)
    return kind, int(key_text), key_end + len(TAG_CLOSE)
