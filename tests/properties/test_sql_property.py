"""Properties of the SQL layer: parse/execute consistency on random data."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database, schema

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
prices = st.floats(min_value=0, max_value=1000, allow_nan=False,
                   allow_infinity=False)

rows = st.lists(
    st.tuples(names, st.sampled_from(["books", "toys", "games"]), prices),
    max_size=25,
)


def build_db(data):
    db = Database()
    table = db.create_table(
        schema("items", [("k", "str"), ("cat", "str"), ("price", "float")])
    )
    table.create_index("cat")
    seen = set()
    stored = []
    for key, cat, price in data:
        if key in seen:
            continue
        seen.add(key)
        table.insert({"k": key, "cat": cat, "price": price})
        stored.append((key, cat, price))
    return db, stored


@given(rows, st.sampled_from(["books", "toys", "games"]))
@settings(max_examples=150)
def test_indexed_select_matches_python_filter(data, category):
    db, stored = build_db(data)
    result = db.execute("SELECT k FROM items WHERE cat = ?", (category,))
    expected = sorted(key for key, cat, _ in stored if cat == category)
    assert sorted(row["k"] for row in result.rows) == expected


@given(rows, prices)
def test_range_select_matches_python_filter(data, threshold):
    db, stored = build_db(data)
    result = db.execute("SELECT k FROM items WHERE price >= ?", (threshold,))
    expected = sorted(key for key, _, price in stored if price >= threshold)
    assert sorted(row["k"] for row in result.rows) == expected


@given(rows)
def test_order_by_is_sorted(data):
    db, stored = build_db(data)
    result = db.execute("SELECT price FROM items ORDER BY price")
    values = [row["price"] for row in result.rows]
    assert values == sorted(values)


@given(rows, st.integers(0, 5))
def test_limit_truncates(data, limit):
    db, stored = build_db(data)
    result = db.execute("SELECT * FROM items LIMIT ?" .replace("?", str(limit)))
    assert result.rowcount == min(limit, len(stored))


@given(rows, st.sampled_from(["books", "toys", "games"]))
def test_delete_then_select_empty(data, category):
    db, stored = build_db(data)
    db.execute("DELETE FROM items WHERE cat = ?", (category,))
    result = db.execute("SELECT * FROM items WHERE cat = ?", (category,))
    assert result.rowcount == 0


@given(rows)
def test_update_reaches_every_row(data):
    db, stored = build_db(data)
    db.execute("UPDATE items SET price = 1.5")
    result = db.execute("SELECT price FROM items")
    assert all(row["price"] == 1.5 for row in result.rows)
