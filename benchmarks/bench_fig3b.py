"""Figure 3(b): B_C/B_NC vs fragment size — analytical AND experimental.

The experimental curve comes from the simulated Figure 4 testbed (Sniffer
on the origin link).  Paper shape: the experimental curve tracks the
analytical one closely but sits ABOVE it, with the gap largest at small
fragment sizes — network protocol headers, which the Sniffer counts and
the model does not.
"""

from repro.harness.experiments import figure_3b_rows

SIZES = (128, 256, 512, 1024, 2048, 4096)
REQUESTS = 1200
WARMUP = 300


def test_figure_3b(benchmark, report):
    rows = benchmark.pedantic(
        lambda: figure_3b_rows(sizes=SIZES, requests=REQUESTS, warmup=WARMUP),
        rounds=1,
        iterations=1,
    )

    report(
        "Figure 3(b): Bytes Served Cache/No Cache vs Fragment Size",
        [
            "fragment size (B)",
            "analytical",
            "experimental (payload)",
            "experimental (wire)",
            "measured h",
        ],
        [
            [
                row.fragment_size,
                "%.4f" % row.analytical_ratio,
                "%.4f" % row.experimental_payload_ratio,
                "%.4f" % row.experimental_wire_ratio,
                "%.3f" % row.measured_hit_ratio,
            ]
            for row in rows
        ],
    )

    for row in rows:
        # Experimental tracks analytical...
        assert abs(row.experimental_payload_ratio - row.analytical_ratio) < 0.15
        # ...and the wire curve (what the Sniffer sees) sits above payload.
        assert row.experimental_wire_ratio > row.experimental_payload_ratio
    # The wire-over-payload gap shrinks as fragments grow (paper's note).
    gaps = [
        row.experimental_wire_ratio - row.experimental_payload_ratio
        for row in rows
    ]
    assert gaps[0] > gaps[-1]
