"""Tests for the ESI-style dynamic page assembly baseline."""

import pytest

from repro.appserver import HttpRequest
from repro.baselines.esi import EsiAssembler
from repro.core.bem import BackEndMonitor
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books, financial
from repro.sites.synthetic import SyntheticParams, build_server


def make_synthetic_esi(cacheability=1.0):
    params = SyntheticParams(cacheability=cacheability, fragment_size=512)
    server = build_server(params, cost_model=FREE)
    return EsiAssembler(server), server


class TestHappyPath:
    def test_static_layout_site_assembles_correctly(self):
        """Where ESI's preconditions hold, it works — and wins on bytes."""
        esi, server = make_synthetic_esi()
        request = HttpRequest("/page.jsp", {"pageID": "0"})
        html1, cached1 = esi.serve(request)
        html2, cached2 = esi.serve(request)
        assert not cached1
        assert cached2
        assert html1 == html2 == server.render_reference_page(request)

    def test_warm_requests_ship_zero_origin_bytes(self):
        esi, server = make_synthetic_esi()
        request = HttpRequest("/page.jsp", {"pageID": "0"})
        esi.serve(request)
        bytes_after_cold = esi.stats.origin_payload_bytes
        esi.serve(request)
        esi.serve(request)
        assert esi.stats.origin_payload_bytes == bytes_after_cold

    def test_template_cached_per_url(self):
        esi, server = make_synthetic_esi()
        esi.serve(HttpRequest("/page.jsp", {"pageID": "0"}))
        esi.serve(HttpRequest("/page.jsp", {"pageID": "1"}))
        assert esi.template_count() == 2

    def test_fragment_cache_shared_across_urls(self):
        params = SyntheticParams(cacheability=1.0, pool_size=4)
        server = build_server(params, cost_model=FREE)
        esi = EsiAssembler(server)
        esi.serve(HttpRequest("/page.jsp", {"pageID": "0"}))
        before = esi.stats.fragments_fetched
        esi.serve(HttpRequest("/page.jsp", {"pageID": "1"}))  # same pool frags
        assert esi.stats.fragments_fetched == before

    def test_requires_plain_origin(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        params = SyntheticParams()
        server = build_server(params, clock=clock, bem=bem, cost_model=FREE)
        with pytest.raises(ValueError):
            EsiAssembler(server)


class TestPaperFlaws:
    def test_first_users_template_served_to_everyone(self):
        """§3.2.2: the cached template fixes layout AND personalization."""
        server = books.build_server(cost_model=FREE)
        esi = EsiAssembler(server)

        bob = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                          user_id="user000", session_id="bob")
        alice = HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                            session_id="alice")

        esi.serve(bob)                      # Bob's layout becomes the template
        html, from_template = esi.serve(alice)
        assert from_template
        assert "Hello, User 000" in html    # Alice sees Bob's greeting
        assert html != server.render_reference_page(alice)

    def test_dynamic_layout_user_gets_wrong_structure(self):
        server = books.build_server(cost_model=FREE)
        services = server.services
        services.profiles.set_layout(
            "user001",
            ["main", "navigation", "greeting", "recommendations", "promos"],
        )
        esi = EsiAssembler(server)
        anon = HttpRequest("/catalog.jsp", {"categoryID": "Science"},
                           session_id="anon")
        user = HttpRequest("/catalog.jsp", {"categoryID": "Science"},
                           user_id="user001", session_id="u1")
        esi.serve(anon)                     # anonymous layout cached
        html, _ = esi.serve(user)
        oracle = server.render_reference_page(user)
        assert html != oracle               # wrong slot order for this user

    def test_ttl_refresh_fetches_fragment(self):
        clock = SimulatedClock()
        server = financial.build_server(clock=clock, cost_model=FREE)
        esi = EsiAssembler(server)
        request = HttpRequest("/quote.jsp", {"symbol": "ACME"}, session_id="s")
        esi.serve(request)
        clock.advance(financial.QUOTE_TTL_S + 1)
        before = esi.stats.fragments_fetched
        esi.serve(request)
        assert esi.stats.fragments_fetched > before  # quote refreshed

    def test_data_update_not_seen_until_ttl(self):
        """ESI coherence is TTL-only: a tick inside the TTL window is
        invisible — the DPC's trigger path has no ESI equivalent."""
        clock = SimulatedClock()
        server = financial.build_server(clock=clock, cost_model=FREE)
        esi = EsiAssembler(server)
        request = HttpRequest("/quote.jsp", {"symbol": "ACME"}, session_id="s")
        first, _ = esi.serve(request)
        financial.tick_quote(server.services, "ACME", 999.99, clock.now())
        stale, _ = esi.serve(request)
        assert "999.99" not in stale
        assert stale == first
