"""Figure 2(a): analytical B_C/B_NC vs fragment size (0-5 KB).

Paper shape: ratio > 1 as s_e -> 0, steep drop below 1 KB, flattening
toward an asymptote of X(1-h) + (1-X) for large fragments.
"""

from repro.harness.experiments import figure_2a_rows

SIZES = (64, 128, 256, 512, 1024, 1536, 2048, 3072, 4096, 5120)


def test_figure_2a(benchmark, report):
    rows = benchmark(lambda: figure_2a_rows(sizes=SIZES))

    report(
        "Figure 2(a): Bytes Served Cache/No Cache vs Fragment Size (analytical)",
        ["fragment size (B)", "B_C/B_NC"],
        [[row.fragment_size, "%.4f" % row.analytical_ratio] for row in rows],
    )

    ratios = [row.analytical_ratio for row in rows]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))  # monotone drop
    assert ratios[-1] < 0.65
    # Steep early drop: the first halving of the curve happens below 1 KB.
    assert ratios[0] - ratios[4] > 0.5 * (ratios[0] - ratios[-1])
