"""Zipfian popularity, the paper's page-access model.

"We assume that P(i) is governed by the Zipfian distribution, which has
been shown to describe Web page requests with reasonable accuracy [2, 12]."
(§5)

``P(i) proportional to 1 / rank(i)^alpha`` with ``alpha = 1`` as the classic
Zipf law; ``alpha = 0`` degenerates to uniform, larger alpha means more
skew.  Implemented with an explicit CDF table plus binary search so
sampling is O(log n) and exactly matches :meth:`pmf`.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence

from ..errors import ConfigurationError


class ZipfDistribution:
    """Zipf(alpha) over ranks ``1..n`` (rank 1 is the most popular)."""

    def __init__(self, n: int, alpha: float = 1.0) -> None:
        if n <= 0:
            raise ConfigurationError("n must be positive")
        if alpha < 0:
            raise ConfigurationError("alpha cannot be negative")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
        total = sum(weights)
        self._pmf = [w / total for w in weights]
        self._cdf: List[float] = []
        acc = 0.0
        for p in self._pmf:
            acc += p
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def pmf(self, rank: int) -> float:
        """P(rank), 1-indexed."""
        if not 1 <= rank <= self.n:
            raise ConfigurationError("rank %d out of range [1, %d]" % (rank, self.n))
        return self._pmf[rank - 1]

    def cdf(self, rank: int) -> float:
        """Cumulative probability through ``rank`` (1-indexed)."""
        if not 1 <= rank <= self.n:
            raise ConfigurationError("rank %d out of range [1, %d]" % (rank, self.n))
        return self._cdf[rank - 1]

    def sample(self, rng: random.Random) -> int:
        """Draw one rank (1-indexed)."""
        u = rng.random()
        return bisect.bisect_left(self._cdf, u) + 1

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` ranks."""
        return [self.sample(rng) for _ in range(count)]

    def expected_counts(self, total: int) -> List[float]:
        """Expected access counts per rank over ``total`` requests."""
        return [p * total for p in self._pmf]


def zipf_over(items: Sequence[object], alpha: float = 1.0) -> "ZipfChooser":
    """Convenience: a Zipf sampler returning the items themselves."""
    return ZipfChooser(list(items), alpha=alpha)


class ZipfChooser:
    """Zipf-weighted choice over an explicit item list (index = rank-1)."""

    def __init__(self, items: List[object], alpha: float = 1.0) -> None:
        if not items:
            raise ConfigurationError("items cannot be empty")
        self.items = items
        self.distribution = ZipfDistribution(len(items), alpha=alpha)

    def choose(self, rng: random.Random) -> object:
        """Zipf-weighted choice of one item."""
        return self.items[self.distribution.sample(rng) - 1]

    def probability_of(self, item: object) -> float:
        """The Zipf probability assigned to ``item``."""
        return self.distribution.pmf(self.items.index(item) + 1)
