"""The drop ledger: no request vanishes without a row.

Every rejection path in the overload-protected pipeline — queue full,
deadline exceeded, breaker open, policy shed, messages dropped in flight —
increments a *named* counter here.  The ledger pre-registers every known
reason at zero so reports always show the full set of ways a request can
die, and a conservation check proves the outcome classes tile the admitted
traffic exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError

#: Every rejection reason the pipeline can produce.  Pre-registered so a
#: report table always carries one row per path, zeros included.
DROP_REASONS = (
    "queue_full",          # bounded queue at capacity
    "deadline_exceeded",   # deadline blown, no stale fallback
    "breaker_open",        # brown-out, no stale page available
    "policy_shed",         # admission control refused, no stale fallback
    "messages_dropped",    # lost in flight on a channel
)


class DropLedger:
    """Named counters for every way a request can fail to get a page."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {reason: 0 for reason in DROP_REASONS}

    def record(self, reason: str, count: int = 1) -> None:
        """Count ``count`` drops under ``reason`` (must be pre-registered)."""
        if reason not in self._counts:
            raise ConfigurationError(
                "unknown drop reason %r (have %s)" % (reason, sorted(self._counts))
            )
        if count < 0:
            raise ConfigurationError("drop count cannot be negative")
        self._counts[reason] += count

    def count(self, reason: str) -> int:
        """Drops recorded under one reason."""
        if reason not in self._counts:
            raise ConfigurationError("unknown drop reason %r" % reason)
        return self._counts[reason]

    def sync_channel(self, channel) -> None:
        """Adopt a channel's ``messages_dropped`` as the in-flight count.

        Idempotent: the ledger mirrors the channel's counter rather than
        accumulating it, so it can be called once per snapshot.
        """
        self._counts["messages_dropped"] = channel.messages_dropped

    @property
    def total(self) -> int:
        """All drops, across every reason."""
        return sum(self._counts.values())

    def rows(self) -> List[Tuple[str, int]]:
        """(reason, count) rows in registration order — zeros included."""
        return [(reason, self._counts[reason]) for reason in DROP_REASONS]

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows: one ``overload.drops.*`` counter per reason."""
        rows: List[Tuple[str, object]] = [
            ("overload.drops.%s" % reason, count) for reason, count in self.rows()
        ]
        rows.append(("overload.drops.total", self.total))
        return rows

    #: Backwards-compatible alias for pre-registry snapshot callers.
    snapshot_rows = metric_rows
