"""Tests for the seeded retry/backoff discipline."""

import random

import pytest

from repro.errors import ChannelClosed, ConfigurationError, DeliveryTimeoutError
from repro.faults.retry import DeliveryStats, ReliableDelivery, RetryPolicy
from repro.network.clock import SimulatedClock


class TestRetryPolicy:
    def test_delays_grow_exponentially(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_for(k, rng) for k in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=3.0, jitter=0.0
        )
        assert policy.delay_for(5, random.Random(0)) == pytest.approx(3.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(42)
        for _ in range(200):
            delay = policy.delay_for(0, rng)
            assert 0.75 <= delay <= 1.25

    def test_same_seed_same_delays(self):
        policy = RetryPolicy(jitter=0.3)
        a = [policy.delay_for(k, random.Random(7)) for k in range(3)]
        b = [policy.delay_for(k, random.Random(7)) for k in range(3)]
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_for(-1, random.Random(0))


class FlakySend:
    """A send thunk that fails the first ``failures`` times."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ChannelClosed("flaky")
        return "delivered"


class TestReliableDelivery:
    def test_first_try_success_needs_no_backoff(self):
        delivery = ReliableDelivery()
        assert delivery.deliver(FlakySend(0)) == "delivered"
        assert delivery.stats.attempts == 1
        assert delivery.stats.retries == 0
        assert delivery.stats.total_backoff_s == 0.0

    def test_transient_failure_is_retried(self):
        delivery = ReliableDelivery(RetryPolicy(max_attempts=4))
        send = FlakySend(2)
        assert delivery.deliver(send) == "delivered"
        assert send.calls == 3
        assert delivery.stats.retries == 2
        assert delivery.stats.deliveries == 1

    def test_exhausted_attempts_dead_letter(self):
        delivery = ReliableDelivery(RetryPolicy(max_attempts=3))
        send = FlakySend(99)
        with pytest.raises(DeliveryTimeoutError) as excinfo:
            delivery.deliver(send)
        assert send.calls == 3
        assert delivery.stats.dead_letters == 1
        assert isinstance(excinfo.value.__cause__, ChannelClosed)

    def test_backoff_advances_the_virtual_clock(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
        delivery = ReliableDelivery(policy, clock=clock)
        delivery.deliver(FlakySend(2))
        # Two backoffs: 0.1 then 0.2.
        assert clock.now() == pytest.approx(0.3)
        assert delivery.stats.total_backoff_s == pytest.approx(0.3)

    def test_no_backoff_after_the_final_attempt(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0)
        delivery = ReliableDelivery(policy, clock=clock)
        with pytest.raises(DeliveryTimeoutError):
            delivery.deliver(FlakySend(99))
        assert clock.now() == pytest.approx(0.1)

    def test_seeded_delivery_is_deterministic(self):
        def run(seed):
            delivery = ReliableDelivery(
                RetryPolicy(max_attempts=4, jitter=0.5), seed=seed
            )
            delivery.deliver(FlakySend(3))
            return delivery.stats.total_backoff_s

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_first_try_ratio(self):
        stats = DeliveryStats(deliveries=4, retries=1)
        assert stats.first_try_ratio == pytest.approx(0.75)
        assert DeliveryStats().first_try_ratio == 0.0
