"""Ablation: sensitivity of savings to tag size g.

§4.3.3 motivates the integer dpcKey with "it reduces the tag size" — the
alternative is embedding the full fragmentID (tens of bytes) in every tag.
This bench quantifies the decision: savings as a function of g, analytically
and on the wire (via template key-width, which sets the real tag size).
"""

from repro.analysis import TABLE2, savings_percent
from repro.core.template import Template, TemplateConfig

#: Tag sizes to sweep: the dpcKey design (10 B) vs fragmentID-ish tags.
TAG_SIZES = (4, 10, 20, 40, 80, 160)


def test_tag_size_sensitivity(benchmark, report):
    def compute():
        rows = []
        for g in TAG_SIZES:
            params = TABLE2.with_(tag_size=float(g))
            small_frag = params.with_(fragment_size=256.0)
            rows.append(
                (g, savings_percent(params), savings_percent(small_frag))
            )
        return rows

    rows = benchmark(compute)

    report(
        "Ablation: savings (%) vs tag size g",
        ["tag size (B)", "savings @ s=1KB (%)", "savings @ s=256B (%)"],
        [[g, "%.2f" % big, "%.2f" % small] for g, big, small in rows],
    )

    big = [row[1] for row in rows]
    small = [row[2] for row in rows]
    assert all(a >= b for a, b in zip(big, big[1:]))    # bigger tags hurt
    # Small fragments are hurt much more by fat tags.
    assert (small[0] - small[-1]) > (big[0] - big[-1])


def test_key_width_sets_real_wire_tag_size(benchmark, report):
    """The template layer's actual bytes agree with the analytical g."""

    def measure():
        rows = []
        for width in (2, 4, 6, 8):
            config = TemplateConfig(key_width=width)
            get_bytes = Template(config=config).get(1).wire_bytes()
            set_overhead = (
                Template(config=config).set(1, "x" * 100).wire_bytes() - 100
            )
            rows.append((width, config.tag_size, get_bytes, set_overhead))
        return rows

    rows = benchmark(measure)

    report(
        "Ablation: key width -> measured tag bytes",
        ["key width", "configured g", "GET bytes", "SET overhead (2g)"],
        rows,
    )
    for width, g, get_bytes, set_overhead in rows:
        assert get_bytes == g
        assert set_overhead == 2 * g
