"""Operational monitoring: one snapshot across a whole deployment.

Production caches live or die by their observability.  This module
gathers the counters every component already keeps — BEM directory stats,
DPC slot/byte stats, firewall scan work, Sniffer traffic — into a single
structured snapshot with derived health indicators (hit ratio, byte
savings, slot utilization), renderable as the same ASCII tables the bench
harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..network.firewall import Firewall
from ..network.sniffer import Sniffer
from .reporting import format_table


@dataclass
class DeploymentSnapshot:
    """Point-in-time health view of one BEM/DPC deployment."""

    rows: List[Tuple[str, object]] = field(default_factory=list)

    def add(self, name: str, value: object) -> None:
        """Append one metric row."""
        self.rows.append((name, value))

    def get(self, name: str) -> object:
        """Look up a metric by name; raises KeyError if absent."""
        for row_name, value in self.rows:
            if row_name == name:
                return value
        raise KeyError(name)

    def names(self) -> List[str]:
        """All metric names, in collection order."""
        return [name for name, _ in self.rows]

    def render(self) -> str:
        """ASCII table of every collected metric."""
        return format_table(["metric", "value"], self.rows)


def take_snapshot(
    bem: Optional[BackEndMonitor] = None,
    dpc: Optional[DynamicProxyCache] = None,
    firewall: Optional[Firewall] = None,
    sniffer: Optional[Sniffer] = None,
    recovery=None,
    overload=None,
    channel=None,
) -> DeploymentSnapshot:
    """Collect the current counters of whichever components are given.

    ``recovery`` and ``overload`` are duck-typed (anything exposing
    ``snapshot_rows()``, e.g. :class:`repro.faults.recovery.ResyncProtocol`
    and :class:`repro.overload.accounting.DropLedger`) so that this module
    stays import-independent of those subsystems.  ``channel`` is a
    :class:`repro.network.channel.Channel`; its send/drop counters surface
    so in-flight message loss is never silent.
    """
    snapshot = DeploymentSnapshot()
    if bem is not None:
        stats = bem.stats
        snapshot.add("bem.epoch", bem.epoch)
        snapshot.add("bem.blocks_processed", stats.blocks_processed)
        snapshot.add("bem.fragment_hits", stats.fragment_hits)
        snapshot.add("bem.fragment_misses", stats.fragment_misses)
        snapshot.add("bem.hit_ratio", round(stats.fragment_hit_ratio, 4))
        snapshot.add("bem.bytes_generated", stats.bytes_generated)
        snapshot.add("bem.bytes_served_from_dpc", stats.bytes_served_from_dpc)
        directory = bem.directory.stats
        snapshot.add("directory.valid_entries", bem.directory.valid_count())
        snapshot.add("directory.capacity", bem.directory.capacity)
        snapshot.add(
            "directory.utilization",
            round(bem.directory.valid_count() / bem.directory.capacity, 4),
        )
        snapshot.add("directory.evictions", directory.evictions)
        snapshot.add("directory.invalidations", directory.invalidations)
        snapshot.add("directory.ttl_expirations", directory.ttl_expirations)
        snapshot.add(
            "invalidation.fragments_invalidated",
            bem.invalidation.fragments_invalidated,
        )
        snapshot.add("objects.memoized", len(bem.objects))
    if dpc is not None:
        stats = dpc.stats
        snapshot.add("dpc.epoch", dpc.epoch)
        snapshot.add("dpc.responses_processed", stats.responses_processed)
        snapshot.add("dpc.template_bytes_in", stats.template_bytes_in)
        snapshot.add("dpc.page_bytes_out", stats.page_bytes_out)
        snapshot.add("dpc.bytes_saved", stats.bytes_saved)
        if stats.page_bytes_out:
            snapshot.add(
                "dpc.byte_savings_ratio",
                round(stats.bytes_saved / stats.page_bytes_out, 4),
            )
        snapshot.add("dpc.fragments_set", stats.fragments_set)
        snapshot.add("dpc.fragments_get", stats.fragments_get)
        snapshot.add("dpc.slots_occupied", dpc.occupied_slots())
        snapshot.add("dpc.capacity", dpc.capacity)
        snapshot.add("dpc.bytes_scanned", dpc.bytes_scanned)
    if firewall is not None:
        snapshot.add("firewall.bytes_scanned", firewall.bytes_scanned)
        snapshot.add("firewall.messages_scanned", firewall.messages_scanned)
    if sniffer is not None:
        snapshot.add("link.request_payload_bytes",
                     sniffer.counters("request").payload_bytes)
        snapshot.add("link.response_payload_bytes",
                     sniffer.counters("response").payload_bytes)
        snapshot.add("link.total_wire_bytes", sniffer.total_wire_bytes)
    if recovery is not None:
        for name, value in recovery.snapshot_rows():
            snapshot.add(name, value)
    if overload is not None:
        for name, value in overload.snapshot_rows():
            snapshot.add(name, value)
    if channel is not None:
        snapshot.add("channel.messages_sent", channel.messages_sent)
        snapshot.add("channel.messages_dropped", channel.messages_dropped)
    return snapshot
