"""Tests for transactions: atomic trigger delivery and rollback."""

import pytest

from repro.core.bem import BackEndMonitor
from repro.core.fragments import Dependency, FragmentID, FragmentMetadata
from repro.core.template import GetInstruction, SetInstruction
from repro.database import Database, schema
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    table = database.create_table(
        schema("accounts", [("k", "str"), ("balance", "float")])
    )
    table.create_index("balance")
    table.insert({"k": "a", "balance": 100.0})
    table.insert({"k": "b", "balance": 50.0})
    return database


class TestEventBuffering:
    def test_events_held_until_commit(self, db):
        events = []
        db.bus.subscribe(events.append)
        db.begin()
        db.table("accounts").update({"balance": 90.0}, key="a")
        db.table("accounts").update({"balance": 60.0}, key="b")
        assert events == []  # nothing delivered yet
        assert db.commit() == 2
        assert [e.key for e in events] == ["a", "b"]  # in order

    def test_autocommit_delivers_immediately(self, db):
        events = []
        db.bus.subscribe(events.append)
        db.table("accounts").update({"balance": 90.0}, key="a")
        assert len(events) == 1

    def test_context_manager_commits(self, db):
        events = []
        db.bus.subscribe(events.append)
        with db.transaction():
            db.table("accounts").update({"balance": 90.0}, key="a")
            assert events == []
        assert len(events) == 1
        assert not db.in_transaction

    def test_context_manager_rolls_back_on_error(self, db):
        events = []
        db.bus.subscribe(events.append)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("accounts").update({"balance": 0.0}, key="a")
                raise RuntimeError("boom")
        assert events == []
        assert db.table("accounts").get("a")["balance"] == 100.0
        assert not db.in_transaction


class TestRollback:
    def test_update_restored(self, db):
        db.begin()
        db.table("accounts").update({"balance": 1.0}, key="a")
        db.rollback()
        assert db.table("accounts").get("a")["balance"] == 100.0

    def test_insert_removed(self, db):
        db.begin()
        db.table("accounts").insert({"k": "c", "balance": 5.0})
        db.rollback()
        assert db.table("accounts").get("c") is None
        assert len(db.table("accounts")) == 2

    def test_delete_restored(self, db):
        db.begin()
        db.table("accounts").delete(key="b")
        db.rollback()
        assert db.table("accounts").get("b")["balance"] == 50.0

    def test_indexes_restored(self, db):
        table = db.table("accounts")
        db.begin()
        table.update({"balance": 999.0}, key="a")
        table.delete(key="b")
        db.rollback()
        assert [r["k"] for r in table.lookup("balance", 100.0)] == ["a"]
        assert [r["k"] for r in table.lookup("balance", 50.0)] == ["b"]
        assert table.lookup("balance", 999.0) == []

    def test_multi_step_rollback_in_reverse_order(self, db):
        table = db.table("accounts")
        db.begin()
        table.insert({"k": "c", "balance": 1.0})
        table.update({"balance": 2.0}, key="c")
        table.update({"balance": 3.0}, key="c")
        table.delete(key="c")
        db.rollback()
        assert table.get("c") is None  # net effect fully undone

    def test_pk_reusable_after_rolled_back_insert(self, db):
        db.begin()
        db.table("accounts").insert({"k": "c", "balance": 5.0})
        db.rollback()
        db.table("accounts").insert({"k": "c", "balance": 7.0})  # no conflict
        assert db.table("accounts").get("c")["balance"] == 7.0


class TestLifecycleErrors:
    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(DatabaseError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(DatabaseError):
            db.commit()

    def test_rollback_without_begin(self, db):
        with pytest.raises(DatabaseError):
            db.rollback()

    def test_counters(self, db):
        db.begin()
        db.commit()
        db.begin()
        db.rollback()
        assert db.transactions.commits == 1
        assert db.transactions.rollbacks == 1


class TestInvalidationSemantics:
    """The point of it all: the BEM sees committed states only."""

    def _cached_fragment(self, db):
        bem = BackEndMonitor(capacity=8)
        bem.attach_database(db.bus)
        meta = FragmentMetadata(dependencies=(Dependency("accounts", key="a"),))
        fragment_id = FragmentID.create("summary", {"k": "a"})
        bem.process_block(fragment_id, meta, lambda: "v0")
        return bem, fragment_id, meta

    def test_no_invalidation_before_commit(self, db):
        bem, fragment_id, meta = self._cached_fragment(db)
        db.begin()
        db.table("accounts").update({"balance": 1.0}, key="a")
        # Mid-transaction: fragment still valid.
        assert isinstance(
            bem.process_block(fragment_id, meta, lambda: "X"), GetInstruction
        )
        db.commit()
        assert isinstance(
            bem.process_block(fragment_id, meta, lambda: "v1"), SetInstruction
        )

    def test_rolled_back_update_invalidates_nothing(self, db):
        bem, fragment_id, meta = self._cached_fragment(db)
        db.begin()
        db.table("accounts").update({"balance": 1.0}, key="a")
        db.rollback()
        assert isinstance(
            bem.process_block(fragment_id, meta, lambda: "X"), GetInstruction
        )
        assert bem.invalidation.fragments_invalidated == 0
