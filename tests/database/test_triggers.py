"""Tests for the trigger bus."""

import pytest

from repro.database.triggers import INSERT, ChangeEvent, TriggerBus


def make_event(table="t", op=INSERT, key=1):
    return ChangeEvent(table=table, operation=op, key=key, row={"k": key})


class TestChangeEvent:
    def test_invalid_operation_rejected(self):
        with pytest.raises(ValueError):
            ChangeEvent(table="t", operation="upsert", key=1)


class TestTriggerBus:
    def test_table_scoped_subscription(self):
        bus = TriggerBus()
        seen = []
        bus.subscribe(seen.append, table="a")
        bus.publish(make_event(table="a"))
        bus.publish(make_event(table="b"))
        assert len(seen) == 1

    def test_global_subscription_sees_everything(self):
        bus = TriggerBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(make_event(table="a"))
        bus.publish(make_event(table="b"))
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = TriggerBus()
        seen = []
        bus.subscribe(seen.append, table="a")
        bus.unsubscribe(seen.append, table="a")
        bus.publish(make_event(table="a"))
        assert seen == []

    def test_unsubscribe_global(self):
        bus = TriggerBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish(make_event())
        assert seen == []

    def test_dispatch_order_table_then_global(self):
        bus = TriggerBus()
        order = []
        bus.subscribe(lambda e: order.append("table"), table="t")
        bus.subscribe(lambda e: order.append("global"))
        bus.publish(make_event())
        assert order == ["table", "global"]

    def test_listener_count(self):
        bus = TriggerBus()
        bus.subscribe(lambda e: None, table="a")
        bus.subscribe(lambda e: None)
        assert bus.listener_count("a") == 1
        assert bus.listener_count() == 2

    def test_events_dispatched_counter(self):
        bus = TriggerBus()
        bus.publish(make_event())
        bus.publish(make_event())
        assert bus.events_dispatched == 2
