"""Tests for the MVC layering helpers."""

import pytest

from repro.appserver.mvc import (
    BusinessComponent,
    ComponentRegistry,
    DataAccessor,
    TierAccounting,
    View,
)
from repro.errors import AppServerError


class TestTierAccounting:
    def test_hops_count_non_presentation_calls(self):
        accounting = TierAccounting()
        view = View(lambda **model: "html")
        component = BusinessComponent("logic", lambda **inputs: 1)
        accessor = DataAccessor("fetch", lambda **inputs: [])

        view.render(accounting)
        component.invoke(accounting)
        accessor.fetch(accounting)
        accessor.fetch(accounting)

        assert accounting.presentation_calls == 1
        assert accounting.business_calls == 1
        assert accounting.data_access_calls == 2
        assert accounting.cross_tier_hops == 3

    def test_reset(self):
        accounting = TierAccounting()
        BusinessComponent("x", lambda: 1).invoke(accounting)
        accounting.reset()
        assert accounting.cross_tier_hops == 0


class TestComponents:
    def test_view_renders_model(self):
        view = View(lambda name: "<b>%s</b>" % name)
        assert view.render(TierAccounting(), name="x") == "<b>x</b>"

    def test_component_passes_inputs(self):
        component = BusinessComponent("adder", lambda a, b: a + b)
        assert component.invoke(TierAccounting(), a=1, b=2) == 3
        assert component.invocations == 1

    def test_accessor_counts_invocations(self):
        accessor = DataAccessor("rows", lambda: [1, 2])
        accessor.fetch(TierAccounting())
        accessor.fetch(TierAccounting())
        assert accessor.invocations == 2


class TestComponentRegistry:
    def test_register_and_get(self):
        registry = ComponentRegistry()
        registry.component("logic", lambda: 1)
        registry.accessor("rows", lambda: [])
        assert registry.get_component("logic").name == "logic"
        assert registry.get_accessor("rows").name == "rows"

    def test_duplicates_rejected(self):
        registry = ComponentRegistry()
        registry.component("logic", lambda: 1)
        with pytest.raises(AppServerError):
            registry.component("logic", lambda: 2)
        registry.accessor("rows", lambda: [])
        with pytest.raises(AppServerError):
            registry.accessor("rows", lambda: [])

    def test_missing_lookups_raise(self):
        registry = ComponentRegistry()
        with pytest.raises(AppServerError):
            registry.get_component("zzz")
        with pytest.raises(AppServerError):
            registry.get_accessor("zzz")

    def test_names(self):
        registry = ComponentRegistry()
        registry.component("b_logic", lambda: 1)
        registry.accessor("a_rows", lambda: [])
        assert registry.names() == ["b_logic", "a_rows"]
