"""Simulated clock shared by all components of a testbed.

The paper's experiments run in real time on a LAN; ours run in virtual time
so they are deterministic and fast.  Every component that needs "now" (TTL
expiry in the BEM, latency accounting, arrival processes) holds a reference
to one :class:`SimulatedClock` and never consults the wall clock.

Time is a float in seconds since the start of the simulation.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class SimulatedClock:
    """A monotonically non-decreasing virtual clock.

    >>> clock = SimulatedClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    1.5
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before time 0")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        Advancing by a negative amount is a programming error: simulated
        time, like real time, only moves forward.
        """
        if seconds < 0:
            raise ConfigurationError(
                "cannot advance the clock by a negative amount (%r)" % seconds
            )
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Moving to a timestamp in the past is ignored (the clock stays put);
        this makes it safe to merge event streams that are already sorted.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self) -> None:
        """Rewind to time zero.  Only intended for test fixtures."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimulatedClock(t=%.6f)" % self._now
