"""The doctor CLI: scenario coverage, report rendering, exit codes."""

import json

import pytest

from repro.insight.doctor import (
    DoctorScenario,
    diagnosis_to_dict,
    latency_attribution,
    main,
    render_report,
    run_diagnosis,
    smoke_scenario,
)
from repro.insight.ledger import MISS_CAUSES


@pytest.fixture(scope="module")
def diagnosis():
    return run_diagnosis(smoke_scenario())


class TestScenario:
    def test_every_miss_cause_occurs(self, diagnosis):
        """The pathological deployment exercises the full taxonomy."""
        for cause in MISS_CAUSES:
            assert diagnosis.insight.ledger.counts[cause] > 0, cause

    def test_all_checks_pass(self, diagnosis):
        for name, ok, detail in diagnosis.checks():
            assert ok, "%s: %s" % (name, detail)

    def test_profiler_matches_brute_force(self, diagnosis):
        assert diagnosis.profiler_exact()
        assert len(diagnosis.validation) == 8

    def test_slo_alerts_fire_under_the_crowd(self, diagnosis):
        assert len(diagnosis.slo.alerts) >= 1
        names = {alert.objective for alert in diagnosis.slo.alerts}
        assert names <= {"slo.availability", "slo.latency_p95", "slo.hit_rate"}

    def test_wipe_hook_fired_exactly_once(self, diagnosis):
        assert diagnosis.insight.dpc_wipes == 1

    def test_latency_attribution_covers_span_kinds(self, diagnosis):
        rows = latency_attribution(diagnosis.harness.testbed.tracer)
        names = [name for name, _, _ in rows]
        assert "request" in names
        seconds = [value for _, value, _ in rows]
        assert seconds == sorted(seconds, reverse=True)
        assert all(value >= 0.0 for value in seconds)

    def test_wipe_index_defaults_to_midrun(self):
        scenario = DoctorScenario(requests=100, warmup=20, wipe_at=None)
        assert scenario.wipe_index() == 70
        assert DoctorScenario(wipe_at=5).wipe_index() == 5


class TestRendering:
    def test_report_has_every_section(self, diagnosis):
        report = render_report(diagnosis)
        for heading in ("== Run ==", "== Miss causes ==",
                        "== Counterfactual capacity (Mattson) ==",
                        "== SLOs ==", "== Checks =="):
            assert heading in report
        assert "recommended slots" in report
        assert "sum(causes)" in report

    def test_json_document_is_serializable_and_complete(self, diagnosis):
        document = diagnosis_to_dict(diagnosis)
        text = json.dumps(document)  # must not raise
        parsed = json.loads(text)
        assert set(parsed["miss_causes"]) == set(MISS_CAUSES)
        assert parsed["misses"] == sum(parsed["miss_causes"].values())
        assert all(v["exact"] for v in parsed["mattson"]["validation"])
        assert parsed["slo"]["alerts"]


class TestMain:
    def test_smoke_without_bench_exits_zero(self, capsys):
        assert main(["--smoke", "--no-bench"]) == 0
        out = capsys.readouterr().out
        assert "repro doctor" in out

    def test_json_flag_emits_json(self, capsys):
        assert main(["--smoke", "--no-bench", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["failed_checks"] == []

    def test_cli_routes_doctor(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["doctor", "--smoke", "--no-bench"]) == 0
        assert "Miss causes" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["--smoke", "--no-bench", "--seed", "11"]) == 0
