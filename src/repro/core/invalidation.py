"""The BEM's cache invalidation manager (§4.3.3).

"A cache invalidation manager monitors fragments to determine when they
become invalid.  Fragments may become invalid due to, for instance,
expiration of the ttl or updates to the underlying data sources."

TTL expiry is handled lazily inside the cache directory; this module covers
the *data-source* half: it subscribes to a database's trigger bus, keeps a
reverse index from tables to the fragments that depend on them, and
invalidates directory entries when a matching change commits.

The fine granularity here — per-row, per-column dependencies — is what lets
the brokerage example invalidate only the price-quote fragment when a quote
ticks, leaving headlines and historical data cached (the §3.2.1 critique of
page-level invalidation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..database.triggers import ChangeEvent, TriggerBus
from .cache_directory import CacheDirectory
from .fragments import Dependency, FragmentID


class InvalidationManager:
    """Maps committed database changes to fragment invalidations."""

    def __init__(self, directory: CacheDirectory) -> None:
        self.directory = directory
        #: table -> canonical fragmentID -> (FragmentID, dependencies on that table)
        self._watchers: Dict[str, Dict[str, Tuple[FragmentID, Tuple[Dependency, ...]]]] = {}
        self._buses: List[TriggerBus] = []
        self.events_seen = 0
        self.fragments_invalidated = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, bus: TriggerBus) -> None:
        """Subscribe to every table of a database's trigger bus."""
        bus.subscribe(self.on_change)
        self._buses.append(bus)

    def detach_all(self) -> None:
        """Unsubscribe from every attached trigger bus."""
        for bus in self._buses:
            bus.unsubscribe(self.on_change)
        self._buses.clear()

    # -- registration -----------------------------------------------------------

    def watch(self, fragment_id: FragmentID, dependencies: Tuple[Dependency, ...]) -> None:
        """Start watching a freshly cached fragment's dependencies.

        Called by the BEM whenever it inserts a directory entry.  Fragments
        with no dependencies are never registered (nothing to watch).
        """
        canonical = fragment_id.canonical()
        for dependency in dependencies:
            table_watchers = self._watchers.setdefault(dependency.table, {})
            existing = table_watchers.get(canonical)
            if existing is None:
                table_watchers[canonical] = (fragment_id, (dependency,))
            else:
                table_watchers[canonical] = (fragment_id, existing[1] + (dependency,))

    def unwatch(self, fragment_id: FragmentID) -> None:
        """Stop watching one fragment's dependencies."""
        canonical = fragment_id.canonical()
        for table_watchers in self._watchers.values():
            table_watchers.pop(canonical, None)

    def watched_count(self) -> int:
        """Distinct fragments currently being watched."""
        seen = set()
        for table_watchers in self._watchers.values():
            seen.update(table_watchers)
        return len(seen)

    # -- event handling ------------------------------------------------------------

    def on_change(self, event: ChangeEvent) -> None:
        """Trigger-bus callback: invalidate fragments hit by this change."""
        self.events_seen += 1
        table_watchers = self._watchers.get(event.table)
        if not table_watchers:
            return
        doomed: List[FragmentID] = []
        for canonical, (fragment_id, dependencies) in table_watchers.items():
            entry = self.directory.peek(fragment_id)
            if entry is None or not entry.is_valid:
                doomed.append(fragment_id)  # stale watcher; clean it up
                continue
            if any(
                dep.matches(
                    event.table,
                    event.key,
                    event.changed_columns,
                    row=event.row,
                    old_row=event.old_row,
                )
                for dep in dependencies
            ):
                if self.directory.invalidate(fragment_id):
                    self.fragments_invalidated += 1
                doomed.append(fragment_id)
        for fragment_id in doomed:
            table_watchers.pop(fragment_id.canonical(), None)
