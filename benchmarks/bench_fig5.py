"""Figure 5: savings in bytes served (%) vs hit ratio — analytical AND
experimental.

Paper shape: the experimental curve tracks the analytical one from below,
with the gap growing as h rises — "as more content is served from cache,
response size decreases, yet the network protocol message size remains
constant", so the constant per-message overhead looms larger.
"""

from repro.harness.experiments import figure_5_rows

HIT_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
REQUESTS = 1200
WARMUP = 300


def test_figure_5(benchmark, report):
    rows = benchmark.pedantic(
        lambda: figure_5_rows(
            hit_ratios=HIT_RATIOS, requests=REQUESTS, warmup=WARMUP
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "Figure 5: Savings in Bytes Served (%) vs Hit Ratio",
        [
            "target h",
            "measured h",
            "analytical (%)",
            "experimental payload (%)",
            "experimental wire (%)",
        ],
        [
            [
                "%.1f" % row.hit_ratio,
                "%.3f" % row.measured_hit_ratio,
                "%.2f" % row.analytical_savings_pct,
                "%.2f" % row.experimental_savings_pct,
                "%.2f" % row.experimental_wire_savings_pct,
            ]
            for row in rows
        ],
    )

    wire = [row.experimental_wire_savings_pct for row in rows]
    analytical = [row.analytical_savings_pct for row in rows]
    # Savings increase with hit ratio in both views.
    assert all(a <= b + 2.0 for a, b in zip(wire, wire[1:]))
    # The experimental (wire) curve sits below the analytical curve once
    # caching starts paying off, and the gap grows with h.
    assert wire[-1] < analytical[-1]
    gap_mid = analytical[2] - wire[2]
    gap_end = analytical[-1] - wire[-1]
    assert gap_end > gap_mid - 0.5
