"""Fragment identity, metadata, and data dependencies.

The tagging process (§4.3.1) "assigns a unique identifier to each cacheable
fragment, along with the appropriate metadata (e.g., time-to-live)".  The
cache directory keys entries by ``fragmentID``, which the paper defines as
``name + parameterList``: the block name identifies the tagged code block,
and the parameter list captures every input that changes the block's output
(query string parameters, the user id for personalized blocks, ...).

Getting the parameter list right is what makes the DPC *correct* where
URL-keyed proxies are not: Bob's greeting block has fragmentID
``greeting?user=bob`` while Alice's (anonymous) has ``greeting?user=``, so
they can never collide in the directory even though their request URL is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True, order=True)
class FragmentID:
    """Unique fragment identifier: block name plus canonicalized parameters.

    Parameters are sorted by name so that logically identical invocations
    map to the same identifier regardless of call-site argument order.
    """

    name: str
    params: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def create(name: str, params: Optional[Mapping[str, object]] = None) -> "FragmentID":
        """Build a FragmentID from a name and a parameter mapping."""
        if not name:
            raise ConfigurationError("fragment name cannot be empty")
        items: Tuple[Tuple[str, str], ...] = ()
        if params:
            items = tuple(sorted((str(k), str(v)) for k, v in params.items()))
        return FragmentID(name=name, params=items)

    def canonical(self) -> str:
        """The string form stored in the cache directory.

        ``name?k1=v1&k2=v2`` — this is also (deliberately) the quantity
        whose byte length motivates the integer dpcKey: fragmentIDs "are
        typically quite long, especially those that include a list of
        parameters" (§4.3.3).  The rendering is memoized on the (frozen)
        instance: identity is immutable, and the canonical form is
        recomputed on every directory probe otherwise.
        """
        cached = self.__dict__.get("_canonical")
        if cached is not None:
            return cached
        if not self.params:
            canonical = self.name
        else:
            query = "&".join("%s=%s" % (k, v) for k, v in self.params)
            canonical = "%s?%s" % (self.name, query)
        object.__setattr__(self, "_canonical", canonical)
        return canonical

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class Dependency:
    """A data-source dependency of a fragment.

    A fragment depends on a ``table``, optionally narrowed along three
    independent axes:

    * ``key`` — one specific row (by primary key);
    * ``column`` — only changes that touch this column matter;
    * ``where_column``/``where_value`` — only rows whose value in
      ``where_column`` equals ``where_value`` matter (e.g. a category
      listing depends on ``products`` rows *in that category*).

    A database :class:`ChangeEvent` matches when the table matches and every
    given narrowing also matches.
    """

    table: str
    key: Optional[object] = None
    column: Optional[str] = None
    where_column: Optional[str] = None
    where_value: Optional[object] = None

    def matches(
        self,
        table: str,
        key: object,
        changed_columns: Iterable[str],
        row: Optional[Dict[str, object]] = None,
        old_row: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Whether a change event falls within this dependency."""
        if table != self.table:
            return False
        if self.key is not None and key != self.key:
            return False
        if self.column is not None:
            changed = tuple(changed_columns)
            # Inserts/deletes report no changed columns: treat them as
            # touching every column of the row.
            if changed and self.column not in changed:
                return False
        if self.where_column is not None:
            # Match against either image: an update that moves a row into
            # OR out of the watched set invalidates fragments built on it.
            images = [img for img in (row, old_row) if img is not None]
            if images and not any(
                img.get(self.where_column) == self.where_value for img in images
            ):
                return False
        return True


@dataclass(frozen=True)
class FragmentMetadata:
    """Cacheability settings attached to a tagged code block.

    ``ttl`` is in (virtual) seconds; ``None`` means no time-based expiry.
    ``dependencies`` drive update-based invalidation.  ``cacheable=False``
    marks a block that was deliberately left untagged — it always executes
    and ships with the page (the ``X_j = 0`` case of the analysis).
    """

    ttl: Optional[float] = None
    dependencies: Tuple[Dependency, ...] = ()
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl <= 0:
            raise ConfigurationError("ttl must be positive when given")


@dataclass
class Fragment:
    """A generated fragment: identity, content, metadata, birth time."""

    fragment_id: FragmentID
    content: str
    metadata: FragmentMetadata = field(default_factory=FragmentMetadata)
    created_at: float = 0.0

    @property
    def size_bytes(self) -> int:
        """UTF-8 byte length of the fragment content."""
        return len(self.content.encode("utf-8"))

    def expired(self, now: float) -> bool:
        """Whether the TTL has elapsed at virtual time ``now``."""
        if self.metadata.ttl is None:
            return False
        return now >= self.created_at + self.metadata.ttl
