"""Tests for the brown-out page cache and the drop ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.network import Channel
from repro.overload.accounting import DROP_REASONS, DropLedger
from repro.overload.stale import StalePageCache


class TestStalePageCache:
    def test_serves_last_known_good(self):
        cache = StalePageCache(capacity=4)
        cache.put("/a", "<page A v1>", now=0.0)
        cache.put("/a", "<page A v2>", now=1.0)
        assert cache.serve_stale("/a", now=5.0) == "<page A v2>"
        assert cache.stats.stale_serves == 1
        assert cache.stats.stale_bytes == len("<page A v2>")

    def test_miss_is_counted(self):
        cache = StalePageCache()
        assert cache.serve_stale("/nope", now=0.0) is None
        assert cache.stats.misses == 1

    def test_max_age_expires_entries(self):
        cache = StalePageCache(max_age_s=10.0)
        cache.put("/a", "html", now=0.0)
        assert cache.has("/a", now=5.0)
        assert not cache.has("/a", now=20.0)
        assert cache.serve_stale("/a", now=20.0) is None
        assert cache.stats.expired_skips == 1

    def test_lru_eviction_spares_leaned_on_pages(self):
        cache = StalePageCache(capacity=2)
        cache.put("/a", "A", now=0.0)
        cache.put("/b", "B", now=0.0)
        cache.serve_stale("/a", now=1.0)     # /a is being leaned on
        cache.put("/c", "C", now=2.0)        # evicts /b, not /a
        assert cache.serve_stale("/a", now=3.0) == "A"
        assert cache.serve_stale("/b", now=3.0) is None

    def test_clear_and_len(self):
        cache = StalePageCache()
        cache.put("/a", "A", now=0.0)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StalePageCache(capacity=0)
        with pytest.raises(ConfigurationError):
            StalePageCache(max_age_s=0)


class TestDropLedger:
    def test_every_reason_pre_registered_at_zero(self):
        ledger = DropLedger()
        assert [reason for reason, _ in ledger.rows()] == list(DROP_REASONS)
        assert all(count == 0 for _, count in ledger.rows())
        assert ledger.total == 0

    def test_record_and_count(self):
        ledger = DropLedger()
        ledger.record("queue_full")
        ledger.record("queue_full", 2)
        ledger.record("breaker_open")
        assert ledger.count("queue_full") == 3
        assert ledger.total == 4

    def test_unknown_reason_rejected(self):
        ledger = DropLedger()
        with pytest.raises(ConfigurationError):
            ledger.record("gremlins")
        with pytest.raises(ConfigurationError):
            ledger.count("gremlins")
        with pytest.raises(ConfigurationError):
            ledger.record("queue_full", -1)

    def test_sync_channel_is_idempotent(self):
        ledger = DropLedger()
        channel = Channel("link", endpoint_a="a", endpoint_b="b")
        channel.messages_dropped = 3
        ledger.sync_channel(channel)
        ledger.sync_channel(channel)
        assert ledger.count("messages_dropped") == 3

    def test_snapshot_rows_cover_every_reason(self):
        ledger = DropLedger()
        ledger.record("policy_shed", 5)
        rows = dict(ledger.snapshot_rows())
        for reason in DROP_REASONS:
            assert "overload.drops.%s" % reason in rows
        assert rows["overload.drops.policy_shed"] == 5
        assert rows["overload.drops.total"] == 5
