"""Differential properties: the fast lanes are byte-identical to reference.

The wire-path optimizations (:mod:`repro.core.fastpath`) promise that the
``str.find`` scanner, the template parse cache, memoized serialization, and
the compiled assembly plan change *constant factors only*.  These tests pin
that promise on randomized inputs: every observable — match positions,
parsed instruction streams, assembled pages, DPC stats, and the scanned-byte
counter behind Result 1 — must be equal under both lanes, including escaped
sentinels, adjacent tags, and oversized fragments.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.dpc import DynamicProxyCache
from repro.core.scanner import TagScanner, find_positions, kmp_find_all
from repro.core.template import (
    SENTINEL,
    GetInstruction,
    Literal,
    SetInstruction,
    Template,
    TemplateConfig,
    parse_template,
)
from repro.errors import OversizedFragmentError

# Sentinel-heavy alphabet so escaping and near-miss prefixes get exercised.
text = st.text(
    alphabet=string.ascii_letters + string.digits + "<>~:QSEG \n",
    max_size=80,
)
keys = st.integers(min_value=0, max_value=255)

instructions = st.one_of(
    text.map(Literal),
    keys.map(GetInstruction),
    st.tuples(keys, text).map(lambda kv: SetInstruction(*kv)),
)


# -- scanner ------------------------------------------------------------------


@given(text)
@settings(max_examples=300)
def test_find_scan_matches_kmp_on_sentinel(body):
    """Both scan lanes report identical sentinel positions."""
    assert find_positions(body, SENTINEL) == kmp_find_all(body, SENTINEL)


@given(
    st.text(alphabet="ab~<", max_size=120),
    st.text(alphabet="ab~<", min_size=1, max_size=5),
)
@settings(max_examples=300)
def test_find_scan_matches_kmp_on_arbitrary_patterns(body, pattern):
    """Overlapping-match semantics agree for any nonempty pattern."""
    assert find_positions(body, pattern) == kmp_find_all(body, pattern)


@given(text)
def test_scanner_lanes_charge_identical_bytes(body):
    """Result 1 accounting: both lanes charge len(text) per scan."""
    fast_scanner = TagScanner(SENTINEL)
    reference_scanner = TagScanner(SENTINEL)
    with fastpath.fast_lanes():
        fast_positions = fast_scanner.positions(body)
    with fastpath.reference_lanes():
        reference_positions = reference_scanner.positions(body)
    assert fast_positions == reference_positions
    assert fast_scanner.bytes_scanned == reference_scanner.bytes_scanned


# -- parsing ------------------------------------------------------------------


@given(st.lists(instructions, max_size=16))
@settings(max_examples=200)
def test_parse_identical_across_lanes(instruction_list):
    """Fast-lane parsing yields the same template and scan charge.

    The generated streams include adjacent tags (consecutive GET/SET with
    no literal between them) and literals containing the raw sentinel,
    which serialization escapes.
    """
    with fastpath.reference_lanes():
        wire = Template(instruction_list).serialize()
    fast_scanner = TagScanner(SENTINEL)
    reference_scanner = TagScanner(SENTINEL)
    with fastpath.fast_lanes():
        fast_parse = parse_template(wire, scanner=fast_scanner)
    with fastpath.reference_lanes():
        reference_parse = parse_template(wire, scanner=reference_scanner)
    assert fast_parse == reference_parse
    assert fast_scanner.bytes_scanned == reference_scanner.bytes_scanned


@given(st.lists(instructions, max_size=16))
@settings(max_examples=200)
def test_serialize_identical_across_lanes_and_after_mutation(instruction_list):
    """Memoized serialization never drifts from the uncached render."""
    fast_template = Template(list(instruction_list))
    reference_template = Template(list(instruction_list))
    with fastpath.fast_lanes():
        first = fast_template.serialize()
        again = fast_template.serialize()  # memoized path
        fast_template.get(7)               # mutation invalidates the memo
        mutated = fast_template.serialize()
        fast_wire_bytes = fast_template.wire_bytes()
    with fastpath.reference_lanes():
        assert first == reference_template.serialize()
        assert again == first
        reference_template.get(7)
        assert mutated == reference_template.serialize()
        assert fast_wire_bytes == reference_template.wire_bytes()


# -- assembly -----------------------------------------------------------------


def _serve_all(wires, fast):
    """Assemble a wire sequence on a fresh DPC under one lane."""
    lane = fastpath.fast_lanes() if fast else fastpath.reference_lanes()
    dpc = DynamicProxyCache(capacity=256)
    pages = []
    with lane:
        for wire in wires:
            page = dpc.process_response(wire)
            pages.append((page.html, page.template_bytes, page.page_bytes,
                          page.fragments_set, page.fragments_get))
    return pages, dpc


@given(st.lists(st.tuples(keys, text), min_size=1, max_size=8), st.data())
@settings(max_examples=150)
def test_assembly_identical_across_lanes(fragments, data):
    """SET-then-GET exchanges produce identical pages, stats, and counters.

    The GET-only wire is served twice so the fast lane's parse cache takes
    a hit — the lane where :meth:`TagScanner.charge` must keep the Result 1
    counter in lockstep with the reference lane's physical re-scan.
    """
    seen = {}
    for key, content in fragments:
        seen[key] = content
    set_template = Template()
    get_template = Template()
    for key, content in seen.items():
        set_template.literal(data.draw(text)).set(key, content)
        get_template.literal(data.draw(text)).get(key)
    with fastpath.reference_lanes():
        wires = [set_template.serialize()] + [get_template.serialize()] * 2
    fast_pages, fast_dpc = _serve_all(wires, fast=True)
    reference_pages, reference_dpc = _serve_all(wires, fast=False)
    assert fast_pages == reference_pages
    assert fast_dpc.bytes_scanned == reference_dpc.bytes_scanned
    assert fast_dpc.stats == reference_dpc.stats


def test_oversized_fragment_rejected_identically():
    """Both lanes raise the same typed error on an oversized SET body."""
    config = TemplateConfig(max_fragment_bytes=64)
    wire = Template(config=config).set(3, "x" * 65)
    with fastpath.reference_lanes():
        oversized = wire.serialize()
    for lane in (fastpath.fast_lanes, fastpath.reference_lanes):
        with lane():
            with pytest.raises(OversizedFragmentError):
                parse_template(oversized, config)


@given(text, text)
@settings(max_examples=100)
def test_escaped_sentinel_content_identical(prefix, suffix):
    """Content containing the raw sentinel survives both lanes unchanged."""
    content = prefix + SENTINEL + suffix + SENTINEL
    with fastpath.reference_lanes():
        wires = [Template().set(1, content).serialize(),
                 Template().get(1).serialize()]
    fast_pages, _ = _serve_all(wires, fast=True)
    reference_pages, _ = _serve_all(wires, fast=False)
    assert fast_pages == reference_pages
    assert fast_pages[1][0] == content
