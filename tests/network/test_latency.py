"""Tests for the generation-delay model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.latency import FREE, GenerationCostModel


class TestGenerationCostModel:
    def test_free_model_costs_nothing(self):
        assert FREE.block_generation_cost(10_000, db_rows=100) == 0.0
        assert FREE.block_hit_cost() == 0.0
        assert FREE.assembly_cost(50) == 0.0

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            GenerationCostModel(compute_per_byte_s=-1.0)

    def test_generation_cost_scales_with_bytes(self):
        model = GenerationCostModel()
        small = model.block_generation_cost(100)
        large = model.block_generation_cost(10_000)
        assert large > small

    def test_generation_cost_scales_with_rows(self):
        model = GenerationCostModel()
        no_rows = model.block_generation_cost(100, db_rows=0)
        many_rows = model.block_generation_cost(100, db_rows=1000)
        assert many_rows > no_rows

    def test_db_connection_wait_charged_only_when_needed(self):
        model = GenerationCostModel()
        with_db = model.block_generation_cost(100, needs_db_connection=True)
        without_db = model.block_generation_cost(100, needs_db_connection=False)
        assert with_db - without_db == pytest.approx(model.db_connection_wait_s)

    def test_hit_is_vastly_cheaper_than_generation(self):
        """The server-side win: a directory probe vs running the block."""
        model = GenerationCostModel()
        hit = model.block_hit_cost()
        miss = model.block_generation_cost(1024, db_rows=10)
        assert miss / hit > 100

    def test_cross_tier_hops_priced(self):
        model = GenerationCostModel()
        two = model.block_generation_cost(0, cross_tier_hops=2,
                                          needs_db_connection=False)
        five = model.block_generation_cost(0, cross_tier_hops=5,
                                           needs_db_connection=False)
        assert five - two == pytest.approx(3 * model.cross_tier_hop_s)

    def test_assembly_cost_linear_in_fragments(self):
        model = GenerationCostModel()
        assert model.assembly_cost(10) == pytest.approx(10 * model.dpc_slot_op_s)
