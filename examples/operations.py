#!/usr/bin/env python
"""Operating a DPC deployment: warming, monitoring, restart recovery.

Shows the operational surface around the caching machinery:

1. warm a cold proxy with the site's hottest pages before rotation;
2. take a deployment snapshot under live traffic;
3. recover from a proxy restart with the documented protocol
   (clear the DPC *and* flush the BEM — half-measures fail loudly);
4. trace a cold miss and a warm hit span by span in virtual time
   (docs/OBSERVABILITY.md).

Run:  python examples/operations.py
"""

from repro.appserver import HttpRequest
from repro.core import BackEndMonitor, DynamicProxyCache
from repro.errors import AssemblyError
from repro.harness.monitoring import take_snapshot
from repro.harness.testbed import Testbed, TestbedConfig
from repro.harness.warming import CacheWarmer
from repro.network import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books
from repro.sites.synthetic import SyntheticParams
from repro.telemetry import render_span_tree
from repro.workload import PageSpec


def main():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=1024)

    print("=== 1. warming a cold proxy ===")
    hot_pages = [
        PageSpec.create("/catalog.jsp", {"categoryID": c})
        for c in ("Fiction", "Science", "History")
    ] + [PageSpec.create("/home.jsp")]
    report = CacheWarmer(server, dpc).warm_pages(
        hot_pages, user_ids=[None, "user000", "user001"]
    )
    print("  replayed %d requests, loaded %d fragments into %d slots"
          % (report.requests_replayed, report.fragments_loaded,
             report.slots_occupied))

    first = server.handle(
        HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                    session_id="first-live-user")
    )
    print("  first live request after warmup: %d misses, %d hits"
          % (first.meta["misses"], first.meta["hits"]))
    dpc.process_response(first.body)

    print("\n=== 2. live traffic, then a snapshot ===")
    for i in range(20):
        request = HttpRequest(
            "/catalog.jsp",
            {"categoryID": ("Fiction", "Science")[i % 2]},
            user_id="user%03d" % (i % 5),
            session_id="s%d" % (i % 5),
        )
        dpc.process_response(server.handle(request).body)
    print(take_snapshot(bem=bem, dpc=dpc).render())

    print("\n=== 3. proxy restart ===")
    dpc.clear()
    print("  proxy restarted; BEM not yet told...")
    try:
        dpc.process_response(
            server.handle(
                HttpRequest("/home.jsp", session_id="unlucky")
            ).body
        )
    except AssemblyError as exc:
        print("  fail-stop as designed: %s" % exc)
    print("  running the restart protocol: bem.flush()")
    bem.flush()
    page = dpc.process_response(
        server.handle(HttpRequest("/home.jsp", session_id="unlucky")).body
    )
    oracle = server.render_reference_page(
        HttpRequest("/home.jsp", session_id="unlucky")
    )
    print("  recovered; page correct:", page.html == oracle)

    print("\n=== 4. tracing a miss and a hit (virtual time) ===")
    testbed = Testbed(
        TestbedConfig(
            mode="dpc",
            synthetic=SyntheticParams(num_pages=4, fragments_per_page=4,
                                      fragment_size=1024, cacheability=1.0),
            tracing=True,
        )
    )
    request = testbed.build_workload().materialize(1)[0].request
    for label in ("cold miss", "warm hit"):
        testbed.serve_once(request)
        print("  -- %s --" % label)
        print(render_span_tree(testbed.tracer.last_root, indent="    "))


if __name__ == "__main__":
    main()
