"""Tests for the reconstructed server-side performance analysis."""

import pytest

from repro.analysis.params import TABLE2
from repro.analysis.serverside import ServerSideModel
from repro.network.latency import GenerationCostModel


@pytest.fixture
def model():
    return ServerSideModel(params=TABLE2)


class TestPrimitives:
    def test_probe_vastly_cheaper_than_generation(self, model):
        assert model.generation_time() / model.probe_time() > 100

    def test_request_time_ordering(self, model):
        assert model.request_time_cached() < model.request_time_no_cache()

    def test_h0_x0_degenerates_to_no_cache(self):
        model = ServerSideModel(params=TABLE2.with_(cacheability=0.0))
        assert model.request_time_cached() == pytest.approx(
            model.request_time_no_cache()
        )
        assert model.speedup() == pytest.approx(1.0)

    def test_zero_hits_no_speedup(self, model):
        assert model.speedup(0.0) == pytest.approx(1.0, abs=1e-9)


class TestDerived:
    def test_speedup_monotone_in_hit_ratio(self, model):
        speedups = [model.speedup(h) for h in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a <= b for a, b in zip(speedups, speedups[1:]))

    def test_capacity_multiplier_equals_speedup(self, model):
        assert model.capacity_multiplier(0.8) == pytest.approx(
            model.speedup(0.8)
        )

    def test_capacities_are_inverses(self, model):
        assert model.capacity_no_cache() == pytest.approx(
            1.0 / model.request_time_no_cache()
        )

    def test_amdahl_saturation(self):
        """With X < 1 the speedup is bounded; with X = 1 it is far larger."""
        partial = ServerSideModel(params=TABLE2)             # X = 0.6
        full = ServerSideModel(params=TABLE2.with_(cacheability=1.0))
        assert partial.asymptotic_speedup() < 3.0
        assert full.asymptotic_speedup() > 10.0

    def test_series_shape(self, model):
        series = model.speedup_series((0.0, 0.5, 1.0))
        assert len(series) == 3
        times = [t for _, t, _ in series]
        assert all(a >= b for a, b in zip(times, times[1:]))


class TestAgainstTestbed:
    def test_measured_generation_times_match_model(self):
        """The closed form must predict the testbed's measured origin
        times (same cost model, same parameters)."""
        from repro.harness.testbed import TestbedConfig, run_testbed
        from repro.sites.synthetic import SyntheticParams

        synthetic = SyntheticParams(cacheability=1.0)
        model = ServerSideModel(
            params=TABLE2.with_(cacheability=1.0),
            db_rows_per_fragment=1,   # the synthetic generator reads 1 row
            cross_tier_hops=1,
        )
        result = run_testbed(
            TestbedConfig(
                mode="dpc",
                synthetic=synthetic,
                target_hit_ratio=1.0,
                requests=150,
                warmup_requests=50,
            )
        )
        # At h=1 the origin time is dispatch + 4 probes; the measured
        # response time also includes network transfer and scanning, so
        # the model must be a LOWER bound that sits within the same
        # order of magnitude.
        predicted = model.request_time_cached(1.0)
        measured = result.mean_response_time
        assert predicted < measured < predicted * 50

    def test_speedup_direction_matches_testbed(self):
        from repro.harness.testbed import TestbedConfig, run_testbed
        from repro.sites.synthetic import SyntheticParams

        synthetic = SyntheticParams(cacheability=1.0)
        common = dict(synthetic=synthetic, target_hit_ratio=0.95,
                      requests=150, warmup_requests=50)
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        cached = run_testbed(TestbedConfig(mode="dpc", **common))
        measured_speedup = plain.mean_response_time / cached.mean_response_time
        model = ServerSideModel(
            params=TABLE2.with_(cacheability=1.0),
            db_rows_per_fragment=1,
            cross_tier_hops=1,
        )
        # Both large; the measured one includes transfer-time savings too.
        assert measured_speedup > 3.0
        assert model.speedup(0.95) > 3.0
