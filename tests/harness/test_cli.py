"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_accepts_known_artifacts(self):
        args = build_parser().parse_args(["fig2a", "table2"])
        assert args.artifacts == ["fig2a", "table2"]

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_requires_at_least_one(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_request_options(self):
        args = build_parser().parse_args(["fig3b", "--requests", "50",
                                          "--warmup", "10"])
        assert args.requests == 50
        assert args.warmup == 10


class TestAnalyticalCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Baseline Parameter Settings" in out
        assert "hit ratio (h)" in out

    def test_fig2a(self, capsys):
        main(["fig2a"])
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        assert "1024" in out

    def test_fig2b_and_fig3a_together(self, capsys):
        main(["fig2b", "fig3a"])
        out = capsys.readouterr().out
        assert "Figure 2(b)" in out
        assert "Figure 3(a)" in out

    def test_duplicates_run_once(self, capsys):
        main(["table2", "table2"])
        out = capsys.readouterr().out
        assert out.count("Baseline Parameter Settings") == 1


class TestTestbedCommands:
    def test_fig3b_small(self, capsys):
        assert main(["fig3b", "--requests", "120", "--warmup", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert "exp payload" in out

    def test_case_study_small(self, capsys):
        main(["case-study", "--requests", "150", "--warmup", "40"])
        out = capsys.readouterr().out
        assert "order-of-magnitude" in out

    def test_edge_small(self, capsys):
        main(["edge", "--requests", "100", "--warmup", "25"])
        out = capsys.readouterr().out
        assert "forward_proxy" in out
        assert "reverse_proxy" in out


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table2"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0
        assert "Baseline Parameter Settings" in completed.stdout
