"""Workload substrate (stands in for the WebLoad client cluster).

Zipf page popularity, Poisson/deterministic/bursty arrivals, and a
registered/anonymous visitor population, combined by a seedable generator
so paired experiment runs replay identical request streams.
"""

from .arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DeterministicProcess,
    FlashCrowdProcess,
    PoissonProcess,
)
from .generator import PageSpec, TimedRequest, WorkloadGenerator, synthetic_pages
from .trace import dump as dump_trace
from .trace import from_records, load as load_trace, to_records
from .users import UserPopulation, Visitor, split_counts
from .zipf import ZipfChooser, ZipfDistribution, zipf_over

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "DeterministicProcess",
    "BurstyProcess",
    "FlashCrowdProcess",
    "PageSpec",
    "TimedRequest",
    "WorkloadGenerator",
    "synthetic_pages",
    "to_records",
    "from_records",
    "dump_trace",
    "load_trace",
    "UserPopulation",
    "Visitor",
    "split_counts",
    "ZipfDistribution",
    "ZipfChooser",
    "zipf_over",
]
