"""Property: traced runs produce rooted, gap-free, fully-accounted trees.

The tracer's load-bearing guarantee (docs/OBSERVABILITY.md): every clock
advance on the request path happens inside a leaf span, so each span's
children tile it exactly and the root's duration equals the measured
virtual response time.  These tests drive the three request pipelines —
plain testbed, overload (shed/stale/timed-out outcomes), and chaos
(faults, retries, recovery epochs) — with tracing on and check every
retained trace against :func:`repro.telemetry.assert_gap_free`.
"""

import pytest

from repro.faults.chaos import ChaosConfig, ChaosHarness
from repro.faults.injectors import (
    ChannelPartition,
    DirectoryCorruption,
    DpcCrash,
    MessageLoss,
)
from repro.harness.testbed import Testbed, TestbedConfig
from repro.overload import CircuitBreaker, CoDelPolicy, OverloadConfig, OverloadHarness
from repro.telemetry import assert_gap_free
from repro.telemetry.tracing import EPSILON
from repro.workload import FlashCrowdProcess

#: Every span name the instrumented pipelines may open.
KNOWN_SPAN_NAMES = {
    "request", "firewall.scan", "channel.transfer", "bem.process",
    "script.exec", "script.compute", "db.query", "queue.wait",
    "dpc.assemble", "dpc.lookup", "retry.backoff", "faults.recover",
}


def check_traces(tracer, require_elapsed=False, exact_elapsed=True):
    """Every retained trace is rooted, gap-free, and fully accounted.

    ``exact_elapsed=True`` (plain testbed) demands the root duration equal
    the recorded virtual response time; the overload harness measures
    latency from arrival (``timed.at``), which includes pre-serve fragment
    churn, so there the root span only bounds ``elapsed_s`` from below.
    """
    assert tracer.traces, "no traces retained"
    for root in tracer.traces:
        assert root.name == "request"
        assert_gap_free(root)
        names = {span.name for span in root.walk()}
        assert names <= KNOWN_SPAN_NAMES, names - KNOWN_SPAN_NAMES
        if "elapsed_s" in root.meta:
            if exact_elapsed:
                assert abs(root.duration - root.meta["elapsed_s"]) <= EPSILON * 16
            else:
                assert root.duration <= root.meta["elapsed_s"] + EPSILON * 16
        elif require_elapsed:
            pytest.fail("root %r missing elapsed_s" % root.meta)


class TestTestbedTraces:
    def test_every_trace_rooted_gap_free_and_accounted(self):
        testbed = Testbed(
            TestbedConfig(mode="dpc", requests=120, warmup_requests=30,
                          tracing=True)
        )
        testbed.run()
        assert testbed.tracer.traces_completed == 150
        check_traces(testbed.tracer, require_elapsed=True)

    def test_untraced_run_is_bit_identical_in_virtual_time(self):
        results = {}
        for tracing in (False, True):
            testbed = Testbed(
                TestbedConfig(mode="dpc", requests=80, warmup_requests=20,
                              tracing=tracing)
            )
            testbed.run()
            results[tracing] = testbed.clock.now()
        assert results[False] == pytest.approx(results[True], abs=1e-9)


class TestOverloadTraces:
    def test_flash_crowd_traces_cover_every_outcome(self):
        config = OverloadConfig(
            testbed=TestbedConfig(
                mode="dpc", requests=250, warmup_requests=50, seed=11,
                tracing=True,
                arrivals=FlashCrowdProcess(
                    base_rate=6.0, multiplier=10.0, burst_at=10.0,
                    hold_s=5.0, decay_s=2.0, deterministic=True,
                ),
            ),
            deadline_s=0.5,
            policy=CoDelPolicy(target_s=0.05, interval_s=0.5),
            breaker=CircuitBreaker(failure_threshold=5, open_s=1.0),
        )
        harness = OverloadHarness(config)
        result = harness.run()
        tracer = harness.testbed.tracer
        assert tracer.traces_completed == 300
        check_traces(tracer, exact_elapsed=False)
        outcomes = {root.meta.get("outcome") for root in tracer.traces}
        assert "fresh" in outcomes
        # The flash crowd is sized to force at least one non-fresh outcome.
        assert result.shed + result.timed_out + result.completed_stale > 0
        assert outcomes - {"fresh", "stale", "shed", "timed_out"} == set()


class TestChaosTraces:
    def test_fault_scenarios_keep_trees_gap_free(self):
        config = ChaosConfig(
            testbed=TestbedConfig(
                mode="dpc", requests=300, warmup_requests=100, seed=11,
                tracing=True,
            ),
            faults=[
                DpcCrash(at=5.0, downtime=0.2),
                ChannelPartition(at=6.0, duration=0.5),
                MessageLoss(at=6.5, duration=0.8, drop_probability=0.3, seed=5),
                DirectoryCorruption(at=7.5, mode="drop_slot", count=4, seed=5),
            ],
            bucket_requests=50,
        )
        harness = ChaosHarness(config)
        harness.run()
        tracer = harness.testbed.tracer
        assert tracer.traces_completed == 400
        check_traces(tracer)
        epochs = {root.meta.get("epoch") for root in tracer.traces}
        assert len(epochs) >= 1  # recovery epochs are annotated on roots
        kinds = {root.meta.get("kind") for root in tracer.traces}
        assert kinds <= {"assembled", "bypass", None}
