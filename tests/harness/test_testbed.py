"""Tests for the Figure 4 testbed."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.testbed import Testbed, TestbedConfig, run_testbed
from repro.network.message import ProtocolOverheadModel
from repro.sites.synthetic import SyntheticParams

FAST = dict(requests=200, warmup_requests=50)


class TestConfig:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(mode="magic")

    def test_invalid_hit_ratio(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(target_hit_ratio=1.5)

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(requests=0)


class TestNoCacheMode:
    def test_bytes_match_page_size_exactly(self):
        """Every response ships 4 x s_e + f payload bytes."""
        config = TestbedConfig(
            mode="no_cache",
            synthetic=SyntheticParams(fragment_size=512),
            **FAST,
        )
        result = run_testbed(config)
        per_page = 4 * 512 + 500
        assert result.response_payload_bytes == per_page * config.requests

    def test_wire_bytes_exceed_payload(self):
        result = run_testbed(TestbedConfig(mode="no_cache", **FAST))
        assert result.response_wire_bytes > result.response_payload_bytes

    def test_requests_also_measured(self):
        result = run_testbed(TestbedConfig(mode="no_cache", **FAST))
        assert result.request_payload_bytes > 0

    def test_overhead_disabled_equalizes(self):
        config = TestbedConfig(
            mode="no_cache",
            overhead=ProtocolOverheadModel(enabled=False),
            **FAST,
        )
        result = run_testbed(config)
        assert result.response_wire_bytes == result.response_payload_bytes


class TestDpcMode:
    def test_hit_ratio_tracks_target(self):
        for target in (0.5, 0.8):
            result = run_testbed(
                TestbedConfig(mode="dpc", target_hit_ratio=target,
                              requests=600, warmup_requests=150)
            )
            assert result.measured_hit_ratio == pytest.approx(target, abs=0.08)

    def test_h1_means_no_invalidations(self):
        result = run_testbed(
            TestbedConfig(mode="dpc", target_hit_ratio=1.0, **FAST)
        )
        assert result.measured_hit_ratio == 1.0
        assert result.fragments_invalidated == 0

    def test_h0_means_all_misses(self):
        result = run_testbed(
            TestbedConfig(mode="dpc", target_hit_ratio=0.0, **FAST)
        )
        assert result.measured_hit_ratio == 0.0

    def test_dpc_saves_bytes_vs_no_cache(self):
        common = dict(target_hit_ratio=0.8, **FAST)
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        assert dpc.response_payload_bytes < plain.response_payload_bytes

    def test_assembled_pages_always_correct(self):
        result = run_testbed(
            TestbedConfig(mode="dpc", correctness_every=5, **FAST)
        )
        assert result.pages_checked > 0
        assert result.pages_incorrect == 0

    def test_dpc_scan_bytes_counted(self):
        result = run_testbed(TestbedConfig(mode="dpc", **FAST))
        assert result.dpc_scanned_bytes > 0
        assert result.firewall_bytes > 0

    def test_response_times_faster_with_dpc(self):
        common = dict(target_hit_ratio=0.9, **FAST)
        dpc = run_testbed(TestbedConfig(mode="dpc", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        assert dpc.mean_response_time < plain.mean_response_time

    def test_percentiles_ordered(self):
        result = run_testbed(TestbedConfig(mode="dpc", **FAST))
        assert (
            result.percentile_response_time(0.5)
            <= result.percentile_response_time(0.95)
        )


class TestBackendMode:
    def test_backend_saves_no_bytes(self):
        common = dict(target_hit_ratio=0.9, **FAST)
        backend = run_testbed(TestbedConfig(mode="backend", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        assert backend.response_payload_bytes == plain.response_payload_bytes

    def test_backend_still_saves_time(self):
        common = dict(target_hit_ratio=0.9, **FAST)
        backend = run_testbed(TestbedConfig(mode="backend", **common))
        plain = run_testbed(TestbedConfig(mode="no_cache", **common))
        assert backend.mean_response_time < plain.mean_response_time

    def test_backend_pages_correct(self):
        result = run_testbed(
            TestbedConfig(mode="backend", correctness_every=5, **FAST)
        )
        assert result.pages_incorrect == 0


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = TestbedConfig(mode="dpc", seed=99, **FAST)
        a = run_testbed(config)
        b = run_testbed(TestbedConfig(mode="dpc", seed=99, **FAST))
        assert a.response_payload_bytes == b.response_payload_bytes
        assert a.measured_hit_ratio == b.measured_hit_ratio

    def test_workload_identical_across_modes(self):
        """The paired-run property: both modes see the same stream."""
        dpc_bed = Testbed(TestbedConfig(mode="dpc", seed=5, **FAST))
        plain_bed = Testbed(TestbedConfig(mode="no_cache", seed=5, **FAST))
        dpc_stream = [t.request.url for t in dpc_bed.build_workload().stream(100)]
        plain_stream = [t.request.url for t in plain_bed.build_workload().stream(100)]
        assert dpc_stream == plain_stream
