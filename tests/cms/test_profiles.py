"""Tests for user profiles."""

import pytest

from repro.cms.profiles import ANONYMOUS, DEFAULT_LAYOUT, ProfileStore
from repro.database import Database
from repro.errors import UnknownUserError


@pytest.fixture
def store():
    profiles = ProfileStore(Database())
    profiles.register(
        "bob",
        "Bob",
        preferred_categories=["Fiction"],
        layout_order=["greeting", "navigation", "main", "recommendations", "promos"],
        show_promos=False,
    )
    return profiles


class TestRegistration:
    def test_registered_profile(self, store):
        profile = store.get("bob")
        assert profile.registered
        assert profile.display_name == "Bob"
        assert profile.preferred_categories == ("Fiction",)
        assert profile.layout_order[0] == "greeting"
        assert not profile.show_promos

    def test_defaults(self, store):
        store.register("carol", "Carol")
        profile = store.get("carol")
        assert profile.layout_order == DEFAULT_LAYOUT
        assert profile.show_promos

    def test_invalid_layout_slot_rejected(self, store):
        with pytest.raises(UnknownUserError):
            store.register("dave", "Dave", layout_order=["sidebar"])

    def test_get_unknown_raises(self, store):
        with pytest.raises(UnknownUserError):
            store.get("nobody")


class TestLookup:
    def test_lookup_registered(self, store):
        assert store.lookup("bob").registered

    def test_lookup_none_is_anonymous(self, store):
        assert store.lookup(None) is ANONYMOUS
        assert store.lookup("") is ANONYMOUS

    def test_lookup_unknown_is_anonymous(self, store):
        """Unknown cookie falls back to the default experience silently."""
        assert not store.lookup("stranger").registered

    def test_anonymous_has_default_layout_and_no_greeting_name(self):
        assert ANONYMOUS.layout_order == DEFAULT_LAYOUT
        assert ANONYMOUS.display_name == ""
        assert not ANONYMOUS.registered


class TestUpdates:
    def test_set_layout(self, store):
        store.set_layout("bob", ["main", "navigation"])
        assert store.get("bob").layout_order == ("main", "navigation")

    def test_set_layout_validates_slots(self, store):
        with pytest.raises(UnknownUserError):
            store.set_layout("bob", ["nonsense"])

    def test_set_layout_unknown_user(self, store):
        with pytest.raises(UnknownUserError):
            store.set_layout("nobody", ["main"])

    def test_set_preferences(self, store):
        store.set_preferences("bob", ["Science", "History"])
        assert store.get("bob").preferred_categories == ("Science", "History")

    def test_profile_edits_emit_triggers(self, store):
        events = []
        store.db.bus.subscribe(events.append, table="user_profiles")
        store.set_layout("bob", ["main"])
        assert len(events) == 1
        assert events[0].changed_columns == ("layout_order",)

    def test_user_ids_and_len(self, store):
        store.register("carol", "Carol")
        assert sorted(store.user_ids()) == ["bob", "carol"]
        assert len(store) == 2
