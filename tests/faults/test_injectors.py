"""Tests for clock-scheduled fault injectors and the schedule driver."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.errors import ConfigurationError, MessageDropped
from repro.faults.injectors import (
    CORRUPTION_MODES,
    ChannelDegradation,
    ChannelPartition,
    DirectoryCorruption,
    DpcCrash,
    FaultContext,
    FaultInjector,
    FaultSchedule,
    MessageLoss,
)
from repro.network.channel import Channel
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.network.message import response_message
from repro.sites import books


def books_context(capacity=64, with_channel=True):
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=capacity, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=capacity)
    channel = (
        Channel("origin-link", endpoint_a="origin", endpoint_b="client")
        if with_channel
        else None
    )
    ctx = FaultContext(clock=clock, bem=bem, dpc=dpc, channel=channel)
    return server, ctx


def warm(server, ctx, pages=3):
    for i in range(pages):
        request = HttpRequest(
            "/catalog.jsp",
            {"categoryID": ("Fiction", "Science", "History")[i % 3]},
            session_id="s",
        )
        ctx.dpc.process_response(server.handle(request).body)


class TestFaultInjectorBase:
    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(at=-1.0)
        with pytest.raises(ConfigurationError):
            FaultInjector(at=0.0, duration=-1.0)

    def test_activation_window_is_half_open(self):
        fault = FaultInjector(at=2.0, duration=1.0)
        assert not fault.active(1.99)
        assert fault.active(2.0)
        assert fault.active(2.99)
        assert not fault.active(3.0)

    def test_channel_faults_need_a_channel(self):
        _, ctx = books_context(with_channel=False)
        with pytest.raises(ConfigurationError):
            ChannelPartition(at=0.0, duration=1.0).start(ctx)


class TestFaultSchedule:
    def test_transitions_fire_exactly_once(self):
        class Counting(FaultInjector):
            """Counts its own start/stop transitions."""

            starts = 0
            stops = 0

            def start(self, ctx):
                """Count a start."""
                type(self).starts += 1

            def stop(self, ctx):
                """Count a stop."""
                type(self).stops += 1

        _, ctx = books_context()
        schedule = FaultSchedule([Counting(at=1.0, duration=1.0)])
        for now in (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
            schedule.tick(ctx, now)
        assert Counting.starts == 1
        assert Counting.stops == 1

    def test_reset_rearms_injectors(self):
        _, ctx = books_context()
        crash = DpcCrash(at=1.0, downtime=0.5)
        schedule = FaultSchedule([crash])
        schedule.tick(ctx, 2.0)
        assert crash.started and crash.stopped
        schedule.reset()
        assert not crash.started and not crash.stopped
        # The re-armed transition heap fires the full cycle again.
        schedule.tick(ctx, 2.0)
        assert crash.started and crash.stopped

    def test_quiet_tick_pops_nothing(self):
        _, ctx = books_context()
        schedule = FaultSchedule([DpcCrash(at=5.0, downtime=1.0)])
        schedule.tick(ctx, 1.0)
        assert len(schedule._pending) == 1  # start still queued
        schedule.tick(ctx, 5.0)
        schedule.tick(ctx, 7.0)
        assert len(schedule._pending) == 0  # both transitions drained

    def test_proxy_down_reflects_crash_window(self):
        schedule = FaultSchedule([DpcCrash(at=1.0, downtime=0.5)])
        assert not schedule.proxy_down(0.9)
        assert schedule.proxy_down(1.2)
        assert not schedule.proxy_down(1.5)


class TestDpcCrash:
    def test_crash_wipes_slots_and_bumps_epoch(self):
        server, ctx = books_context()
        warm(server, ctx)
        assert any(ctx.dpc.slot_in_use(k) for k in range(ctx.dpc.capacity))
        DpcCrash(at=0.0, downtime=1.0).start(ctx)
        assert not any(ctx.dpc.slot_in_use(k) for k in range(ctx.dpc.capacity))
        assert ctx.dpc.epoch == 1


class TestChannelFaults:
    def test_partition_closes_then_reopens(self):
        _, ctx = books_context()
        fault = ChannelPartition(at=0.0, duration=1.0)
        fault.start(ctx)
        assert ctx.channel.closed
        fault.stop(ctx)
        assert not ctx.channel.closed

    def test_degradation_adds_delay_only_while_active(self):
        _, ctx = books_context()
        fault = ChannelDegradation(at=0.0, duration=1.0, extra_delay_s=0.2)
        message = response_message(10)
        baseline = ctx.channel.send(message)
        fault.start(ctx)
        degraded = ctx.channel.send(message)
        fault.stop(ctx)
        healed = ctx.channel.send(message)
        assert degraded == pytest.approx(baseline + 0.2)
        assert healed == pytest.approx(baseline)

    def test_degradation_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            ChannelDegradation(at=0.0, duration=1.0, extra_delay_s=-0.1)

    def test_message_loss_is_seeded_and_probabilistic(self):
        def drops(seed):
            _, ctx = books_context()
            fault = MessageLoss(at=0.0, duration=1.0, drop_probability=0.5, seed=seed)
            fault.start(ctx)
            dropped = 0
            for _ in range(100):
                try:
                    ctx.channel.send(response_message(10))
                except MessageDropped:
                    dropped += 1
            return dropped

        assert drops(3) == drops(3)  # deterministic
        assert 20 < drops(3) < 80    # actually probabilistic

    def test_message_loss_probability_validated(self):
        with pytest.raises(ConfigurationError):
            MessageLoss(at=0.0, duration=1.0, drop_probability=1.5)


class TestDirectoryCorruption:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectoryCorruption(at=0.0, mode="set_fire")
        with pytest.raises(ConfigurationError):
            DirectoryCorruption(at=0.0, count=0)

    def test_flip_valid_breaks_slot_discipline(self):
        server, ctx = books_context()
        warm(server, ctx)
        fault = DirectoryCorruption(at=0.0, mode="flip_valid", count=2, seed=1)
        fault.start(ctx)
        assert fault.corrupted == 2
        with pytest.raises(AssertionError):
            ctx.directory.check_invariants()

    def test_leak_key_shrinks_the_free_list(self):
        server, ctx = books_context()
        warm(server, ctx)
        before = len(ctx.directory.free_list)
        fault = DirectoryCorruption(at=0.0, mode="leak_key", count=3, seed=1)
        fault.start(ctx)
        assert len(ctx.directory.free_list) == before - 3

    def test_drop_slot_desyncs_dpc_from_directory(self):
        server, ctx = books_context()
        warm(server, ctx)
        fault = DirectoryCorruption(at=0.0, mode="drop_slot", count=2, seed=1)
        fault.start(ctx)
        empty = [
            e for e in ctx.directory.valid_entries()
            if not ctx.dpc.slot_in_use(e.dpc_key)
        ]
        assert len(empty) == 2

    def test_corruption_is_seeded(self):
        def victims(seed):
            server, ctx = books_context()
            warm(server, ctx)
            fault = DirectoryCorruption(at=0.0, mode="flip_valid", count=3, seed=seed)
            fault.start(ctx)
            return sorted(
                e.dpc_key for e in ctx.directory._entries.values() if not e.is_valid
            )

        assert victims(9) == victims(9)

    def test_modes_tuple_is_exhaustive(self):
        assert set(CORRUPTION_MODES) == {"flip_valid", "leak_key", "drop_slot"}
