"""MetricsRegistry: instruments, providers, and deterministic collection."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("dpc.fragments_set")
        counter.inc()
        counter.inc(4)
        assert counter.rows() == [("dpc.fragments_set", 5)]

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("dpc.fragments_set").inc(-1)

    def test_gauge_set_and_callback(self):
        gauge = Gauge("dpc.slots_occupied")
        gauge.set(7)
        assert gauge.value == 7
        backing = {"n": 0}
        gauge = Gauge("dpc.slots_occupied", fn=lambda: backing["n"])
        backing["n"] = 3
        assert gauge.rows() == [("dpc.slots_occupied", 3)]

    def test_gauge_set_clears_callback(self):
        gauge = Gauge("dpc.capacity", fn=lambda: 99)
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets_one_observation_each(self):
        histogram = Histogram("db.latency_s", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(2.65)
        assert histogram.bucket_rows() == [[0.1, 2], [1.0, 1], ["inf", 1]]

    def test_histogram_rows_shape(self):
        histogram = Histogram("db.latency_s", buckets=(0.5,))
        histogram.observe(0.25)
        rows = dict(histogram.rows())
        assert rows["db.latency_s.count"] == 1
        assert rows["db.latency_s.sum"] == pytest.approx(0.25)
        assert rows["db.latency_s.buckets"] == [[0.5, 1], ["inf", 0]]

    def test_histogram_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram("db.latency_s", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("db.latency_s", buckets=(1.0, 0.5))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("bem.fragment_hits") is registry.counter(
            "bem.fragment_hits"
        )
        assert registry.gauge("dpc.capacity") is registry.gauge("dpc.capacity")
        assert registry.histogram("db.wait_s") is registry.histogram("db.wait_s")

    def test_type_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("bem.fragment_hits")
        with pytest.raises(ConfigurationError):
            registry.gauge("bem.fragment_hits")
        with pytest.raises(ConfigurationError):
            registry.histogram("bem.fragment_hits")
        registry.histogram("db.wait_s")
        with pytest.raises(ConfigurationError):
            registry.counter("db.wait_s")

    def test_names_are_validated(self):
        registry = MetricsRegistry()
        for bad in ("nodots", "Upper.case", "trailing.", ".leading", "a b.c"):
            with pytest.raises(ConfigurationError):
                registry.counter(bad)

    def test_provider_resolution(self):
        class WithMetricRows:
            def metric_rows(self):
                return [("a.one", 1)]

        class WithLegacyRows:
            def snapshot_rows(self):
                return [("b.two", 2)]

        registry = MetricsRegistry()
        registry.register_provider(WithMetricRows())
        registry.register_provider(WithLegacyRows())
        registry.register_provider(lambda: [("c.three", 3)])
        assert registry.collect() == [("a.one", 1), ("b.two", 2), ("c.three", 3)]

    def test_metric_rows_preferred_over_snapshot_rows(self):
        class Both:
            def metric_rows(self):
                return [("new.name", 1)]

            def snapshot_rows(self):
                return [("old.name", 1)]

        registry = MetricsRegistry()
        registry.register_provider(Both())
        assert registry.names() == ["new.name"]

    def test_unusable_provider_is_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().register_provider(object())

    def test_collection_order_providers_instruments_adhoc(self):
        registry = MetricsRegistry()
        registry.record("zz.adhoc", 0)
        registry.counter("mm.counter").inc()
        registry.register_provider(lambda: [("aa.provider", 1)])
        assert registry.names() == ["aa.provider", "mm.counter", "zz.adhoc"]

    def test_record_skips_validation_and_keeps_duplicates(self):
        registry = MetricsRegistry()
        registry.record("legacy name with spaces", 1)
        registry.record("legacy name with spaces", 2)
        assert len(registry) == 2
        assert registry.get("legacy name with spaces") == 1

    def test_get_raises_on_missing(self):
        with pytest.raises(KeyError):
            MetricsRegistry().get("no.such")

    def test_providers_are_live(self):
        counts = {"n": 0}

        class Component:
            def metric_rows(self):
                return [("x.n", counts["n"])]

        registry = MetricsRegistry()
        registry.register_provider(Component())
        assert registry.get("x.n") == 0
        counts["n"] = 5
        assert registry.get("x.n") == 5
