#!/usr/bin/env python
"""Regenerate every paper figure/table in one go (reduced request counts).

The benchmark harness (``pytest benchmarks/ --benchmark-only``) is the
canonical reproduction run; this script is the quick interactive version —
a couple of minutes, printing each artifact's rows.

Run:  python examples/reproduce_figures.py
"""

from repro.analysis import TABLE2
from repro.harness.experiments import (
    case_study,
    figure_2a_rows,
    figure_2b_rows,
    figure_3a_rows,
    figure_3b_rows,
    figure_5_rows,
    figure_6_rows,
)
from repro.harness.reporting import print_table

REQUESTS = 600
WARMUP = 150


def main():
    print_table(
        "Table 2: Baseline Parameter Settings",
        ["parameter", "value"],
        list(TABLE2.as_table().items()),
    )

    print_table(
        "Figure 2(a): B_C/B_NC vs fragment size (analytical)",
        ["size (B)", "ratio"],
        [[r.fragment_size, "%.4f" % r.analytical_ratio]
         for r in figure_2a_rows()],
    )

    print_table(
        "Figure 2(b): savings %% vs hit ratio (analytical)",
        ["h", "savings %"],
        [["%.2f" % r.hit_ratio, "%.2f" % r.analytical_savings_pct]
         for r in figure_2b_rows()],
    )

    print_table(
        "Figure 3(a): cost savings vs cacheability (analytical)",
        ["cacheability", "network %", "firewall %"],
        [["%.0f%%" % (r.cacheability * 100),
          "%.2f" % r.analytical_network_savings_pct,
          "%.2f" % r.analytical_firewall_savings_pct]
         for r in figure_3a_rows()],
    )

    print("\nrunning the simulated testbed (this takes a minute)...")

    print_table(
        "Figure 3(b): B_C/B_NC vs fragment size (analytical + experimental)",
        ["size (B)", "analytical", "exp payload", "exp wire"],
        [[r.fragment_size, "%.4f" % r.analytical_ratio,
          "%.4f" % r.experimental_payload_ratio,
          "%.4f" % r.experimental_wire_ratio]
         for r in figure_3b_rows(sizes=(256, 1024, 4096),
                                 requests=REQUESTS, warmup=WARMUP)],
    )

    print_table(
        "Figure 5: savings %% vs hit ratio (analytical + experimental)",
        ["target h", "analytical", "exp payload", "exp wire"],
        [["%.1f" % r.hit_ratio, "%.2f" % r.analytical_savings_pct,
          "%.2f" % r.experimental_savings_pct,
          "%.2f" % r.experimental_wire_savings_pct]
         for r in figure_5_rows(hit_ratios=(0.0, 0.4, 0.8, 1.0),
                                requests=REQUESTS, warmup=WARMUP)],
    )

    print_table(
        "Figure 6: savings vs cacheability (analytical + experimental)",
        ["cacheability", "analytical net", "exp net", "exp firewall"],
        [["%.0f%%" % (r.cacheability * 100),
          "%.2f" % r.analytical_network_savings_pct,
          "%.2f" % r.experimental_network_savings_pct,
          "%.2f" % r.experimental_firewall_savings_pct]
         for r in figure_6_rows(cacheabilities=(0.25, 0.75, 1.0),
                                requests=REQUESTS, warmup=WARMUP)],
    )

    result = case_study(requests=REQUESTS, warmup=WARMUP)
    print_table(
        "Case study: order-of-magnitude claims",
        ["metric", "reduction"],
        [
            ["origin bandwidth", "%.1fx" % result.bandwidth_reduction_factor],
            ["mean response time",
             "%.1fx" % result.response_time_reduction_factor],
        ],
    )


if __name__ == "__main__":
    main()
