"""Tests for simulated channels."""

import pytest

from repro.errors import ChannelClosed, ConfigurationError, MessageDropped, NetworkError
from repro.network.channel import Channel, LinkParameters
from repro.network.clock import SimulatedClock
from repro.network.message import ProtocolOverheadModel, WireMessage, response_message


def make_channel(**kwargs):
    return Channel("link", endpoint_a="external", endpoint_b="origin", **kwargs)


class TestLinkParameters:
    def test_transfer_time_includes_latency_and_serialization(self):
        link = LinkParameters(latency_s=0.001, bandwidth_bytes_per_s=1000.0)
        assert link.transfer_time(500) == pytest.approx(0.001 + 0.5)

    def test_zero_bandwidth_means_infinitely_fast(self):
        link = LinkParameters(latency_s=0.002, bandwidth_bytes_per_s=0.0)
        assert link.transfer_time(10**9) == pytest.approx(0.002)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkParameters(latency_s=-0.1)


class TestChannel:
    def test_send_counts_messages(self):
        channel = make_channel()
        channel.send(response_message(100, source="origin", destination="external"))
        assert channel.messages_sent == 1

    def test_send_advances_clock(self):
        clock = SimulatedClock()
        channel = make_channel(
            clock=clock,
            link=LinkParameters(latency_s=0.01, bandwidth_bytes_per_s=0.0),
        )
        channel.send(response_message(10, source="origin", destination="external"))
        assert clock.now() == pytest.approx(0.01)

    def test_sniffer_sees_traffic(self):
        channel = make_channel()
        sniffer = channel.attach_sniffer()
        channel.send(response_message(100, source="origin", destination="external"))
        assert sniffer.response_payload_bytes == 100

    def test_sniffer_adopts_channel_overhead(self):
        channel = make_channel(overhead=ProtocolOverheadModel(enabled=False))
        sniffer = channel.attach_sniffer()
        channel.send(response_message(100, source="origin", destination="external"))
        assert sniffer.response_wire_bytes == 100

    def test_detached_sniffer_stops_counting(self):
        channel = make_channel()
        sniffer = channel.attach_sniffer()
        channel.detach_sniffer(sniffer)
        channel.send(response_message(100, source="origin", destination="external"))
        assert sniffer.response_payload_bytes == 0

    def test_wrong_endpoints_rejected(self):
        channel = make_channel()
        with pytest.raises(ConfigurationError):
            channel.send(response_message(10, source="mars", destination="origin"))

    def test_unnamed_endpoints_allowed(self):
        channel = make_channel()
        message = WireMessage(kind="response", payload_bytes=10)
        channel.send(message)  # no endpoints set: accepted
        assert channel.messages_sent == 1

    def test_closed_channel_rejects_sends(self):
        channel = make_channel()
        channel.close()
        assert channel.closed
        with pytest.raises(ChannelClosed):
            channel.send(response_message(10, source="origin", destination="external"))

    def test_transfer_time_returned(self):
        channel = make_channel(
            link=LinkParameters(latency_s=0.0, bandwidth_bytes_per_s=1000.0),
            overhead=ProtocolOverheadModel(enabled=False),
        )
        elapsed = channel.send(
            response_message(500, source="origin", destination="external")
        )
        assert elapsed == pytest.approx(0.5)


class TestChannelReopen:
    def test_send_after_close_raises_typed_network_error(self):
        channel = make_channel()
        channel.close()
        with pytest.raises(NetworkError):
            channel.send(response_message(10, source="origin", destination="external"))
        assert channel.messages_sent == 0

    def test_reopen_heals_a_partition(self):
        channel = make_channel()
        channel.close()
        channel.reopen()
        assert not channel.closed
        channel.send(response_message(10, source="origin", destination="external"))
        assert channel.messages_sent == 1

    def test_reopen_is_idempotent(self):
        channel = make_channel()
        channel.reopen()
        channel.reopen()
        channel.send(response_message(10, source="origin", destination="external"))
        assert channel.messages_sent == 1


class TestChannelFaultHooks:
    def test_raising_hook_drops_the_message(self):
        channel = make_channel()

        def drop(message):
            raise MessageDropped("injected")

        channel.add_fault(drop)
        with pytest.raises(MessageDropped):
            channel.send(response_message(10, source="origin", destination="external"))
        assert channel.messages_dropped == 1
        assert channel.messages_sent == 0

    def test_dropped_message_never_reaches_sniffers(self):
        channel = make_channel()
        sniffer = channel.attach_sniffer()

        def drop(message):
            raise MessageDropped("injected")

        channel.add_fault(drop)
        with pytest.raises(MessageDropped):
            channel.send(response_message(10, source="origin", destination="external"))
        assert sniffer.response_payload_bytes == 0

    def test_delay_hook_adds_transfer_time(self):
        clock = SimulatedClock()
        channel = make_channel(
            clock=clock,
            link=LinkParameters(latency_s=0.01, bandwidth_bytes_per_s=0.0),
        )
        channel.add_fault(lambda message: 0.5)
        elapsed = channel.send(
            response_message(10, source="origin", destination="external")
        )
        assert elapsed == pytest.approx(0.51)
        assert clock.now() == pytest.approx(0.51)

    def test_remove_fault_restores_the_link(self):
        channel = make_channel()

        def drop(message):
            raise MessageDropped("injected")

        channel.add_fault(drop)
        channel.remove_fault(drop)
        channel.remove_fault(drop)  # removing twice is harmless
        channel.send(response_message(10, source="origin", destination="external"))
        assert channel.messages_sent == 1
        assert channel.messages_dropped == 0
