"""Personalization logic: profile + repository -> selected content.

This is the "CMS runs personalization logic" step of Figure 1.  Given a
user profile it decides which content items appear in which page slot —
including the Personal Greeting / Recommended Products pair from §3.2.2
whose shared dependency on the user-profile object defeats ESI-style page
factoring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .profiles import AnonymousProfile, Profile, ProfileStore
from .repository import ContentRepository

AnyProfile = Union[Profile, AnonymousProfile]


class PersonalizationEngine:
    """Selects content for a user, one call per page slot.

    Both :meth:`greeting_for` and :meth:`recommendations_for` take the
    *profile object* (not the user id): in the paper's example the script
    fetches the profile once and derives multiple fragments from it, which
    is exactly the semantic interdependence that breaks dynamic page
    assembly and that the BEM handles naturally.
    """

    def __init__(self, repository: ContentRepository, profiles: ProfileStore) -> None:
        self.repository = repository
        self.profiles = profiles

    # -- profile access -----------------------------------------------------------

    def profile_for(self, user_id: Optional[str]) -> AnyProfile:
        """The §3.2.2 step (1): one profile lookup per request."""
        return self.profiles.lookup(user_id)

    # -- slot content ----------------------------------------------------------

    def greeting_for(self, profile: AnyProfile) -> str:
        """Step (2): the Personal Greeting fragment's content.

        Anonymous visitors get no greeting at all — this is the Bob/Alice
        correctness scenario from §3.2.1.
        """
        if not profile.registered:
            return ""
        return "Hello, %s" % profile.display_name

    def recommendations_for(
        self, profile: AnyProfile, limit: int = 3
    ) -> List[Dict[str, object]]:
        """Step (3): Recommended Products derived from the same profile.

        Registered users are recommended top items from their preferred
        categories; anonymous users get the site-wide default category mix.
        """
        categories = list(profile.preferred_categories)
        if not categories:
            categories = self.repository.categories()[:2]
        picks: List[Dict[str, object]] = []
        for category in categories:
            for item in self.repository.by_category(category, limit=limit):
                picks.append(item)
                if len(picks) >= limit:
                    return picks
        return picks

    def promos_for(self, profile: AnyProfile, limit: int = 2) -> List[Dict[str, object]]:
        """Site-wide promos, suppressed for users who opted out."""
        if not profile.show_promos:
            return []
        promos = []
        for category in self.repository.categories():
            promos.extend(self.repository.by_category(category, kind="promo"))
        promos.sort(key=lambda item: (item["rank"], item["content_id"]))
        return promos[:limit]

    def layout_for(self, profile: AnyProfile) -> List[str]:
        """The slot ordering for this user's pages (dynamic layout)."""
        return list(profile.layout_order)
