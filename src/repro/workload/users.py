"""The visitor population: registered vs non-registered users.

Section 2.1's site "caters to both registered users ... and non-registered
users"; which kind of visitor issues a request decides the page's greeting,
recommendations, and layout.  The population model assigns each synthetic
visit a user identity (or none) and a stable session id per user, with
user activity itself Zipf-skewed — a few heavy users dominate, as in real
traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from .zipf import ZipfDistribution


@dataclass(frozen=True)
class Visitor:
    """One request's originator."""

    user_id: Optional[str]  # None for non-registered visitors
    session_id: str

    @property
    def registered(self) -> bool:
        """Whether this visit carries a logged-in identity."""
        return self.user_id is not None


class UserPopulation:
    """Draws visitors: registered with probability ``registered_fraction``.

    Registered visits are Zipf-distributed over ``user_ids``; anonymous
    visits rotate through a pool of ``anonymous_sessions`` distinct session
    ids (distinct browsers without accounts).
    """

    def __init__(
        self,
        user_ids: List[str],
        registered_fraction: float = 0.5,
        anonymous_sessions: int = 50,
        user_alpha: float = 1.0,
    ) -> None:
        if not 0.0 <= registered_fraction <= 1.0:
            raise ConfigurationError("registered_fraction must be in [0, 1]")
        if registered_fraction > 0 and not user_ids:
            raise ConfigurationError(
                "registered_fraction > 0 requires at least one user id"
            )
        if anonymous_sessions <= 0:
            raise ConfigurationError("anonymous_sessions must be positive")
        self.user_ids = list(user_ids)
        self.registered_fraction = registered_fraction
        self.anonymous_sessions = anonymous_sessions
        self._user_zipf = (
            ZipfDistribution(len(self.user_ids), alpha=user_alpha)
            if self.user_ids
            else None
        )

    def draw(self, rng: random.Random) -> Visitor:
        """Sample one visitor (registered or anonymous)."""
        if self._user_zipf is not None and rng.random() < self.registered_fraction:
            user_id = self.user_ids[self._user_zipf.sample(rng) - 1]
            return Visitor(user_id=user_id, session_id="sess-%s" % user_id)
        anon = rng.randrange(self.anonymous_sessions)
        return Visitor(user_id=None, session_id="anon-sess-%04d" % anon)

    def draw_many(self, rng: random.Random, count: int) -> List[Visitor]:
        """Sample ``count`` visitors."""
        return [self.draw(rng) for _ in range(count)]


def split_counts(visitors: List[Visitor]) -> Tuple[int, int]:
    """(registered, anonymous) visit counts — workload sanity reporting."""
    registered = sum(1 for v in visitors if v.registered)
    return registered, len(visitors) - registered
