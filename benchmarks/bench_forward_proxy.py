"""§7 extension bench: forward-proxy scaling — routing, coherency traffic,
and hit ratios as the edge count grows.

The paper's open issues for edge deployment are request routing, cache
coherency, cache management, and scalability.  This bench runs the
reproduction's answers (session-affinity consistent hashing + per-proxy
directories fed by the shared trigger bus) at 1/2/4/8 edges and reports:

* group hit ratio (affinity keeps per-user fragments warm at one edge;
  shared fragments are duplicated per edge, so more edges -> more cold
  misses on shared content);
* coherency messages per data update (linear in edge count — the
  scalability cost the paper warns about).
"""

import random

from repro.appserver import HttpRequest
from repro.core.coherency import ProxyGroup
from repro.core.routing import RequestRouter
from repro.network.latency import FREE
from repro.sites import books

EDGE_COUNTS = (1, 2, 4, 8)
REQUESTS = 150
UPDATES = 10


def run_deployment(edge_count: int, seed: int = 31):
    group = ProxyGroup(capacity_per_proxy=1024)
    router = RequestRouter()
    for i in range(edge_count):
        name = "edge-%d" % i
        group.add_proxy(name)
        router.add_proxy(name)
    services = books.build_services()
    group.attach_database(services.db.bus)
    servers = {}
    for name in group.names():
        bem, _ = group.member(name)
        servers[name] = books.build_server(
            services=services, clock=group.clock, bem=bem, cost_model=FREE
        )

    rng = random.Random(seed)
    messages_before = group.coherency_messages
    for i in range(REQUESTS):
        user = "user%03d" % rng.randrange(10) if rng.random() < 0.7 else None
        request = HttpRequest(
            "/catalog.jsp",
            {"categoryID": rng.choice(["Fiction", "Science", "History"])},
            user_id=user,
            session_id="sess-%s" % (user or "anon-%d" % rng.randrange(6)),
        )
        proxy = router.route(request.user_id, request.session_id)
        _, dpc = group.member(proxy)
        dpc.process_response(servers[proxy].handle(request).body)
        if i % (REQUESTS // UPDATES) == 0:
            services.db.table(books.PRODUCTS_TABLE).update(
                {"price": round(rng.uniform(1, 99), 2)},
                key="FIC-%03d" % rng.randrange(4),
            )
    coherency = group.coherency_messages - messages_before
    return group.group_hit_ratio(), coherency


def test_forward_proxy_scaling(benchmark, report):
    def run_all():
        return {n: run_deployment(n) for n in EDGE_COUNTS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        "Forward-proxy scaling (%d requests, %d data updates)"
        % (REQUESTS, UPDATES + 1),
        ["edges", "group hit ratio", "coherency messages"],
        [
            [n, "%.4f" % results[n][0], results[n][1]]
            for n in EDGE_COUNTS
        ],
    )

    # Coherency fan-out is linear in the edge count.
    per_edge = {n: results[n][1] / n for n in EDGE_COUNTS}
    base = per_edge[1]
    for n in EDGE_COUNTS:
        assert abs(per_edge[n] - base) < 1e-9
    # Splitting the cache across more edges cannot raise the hit ratio.
    assert results[8][0] <= results[1][0] + 0.02
