"""Tests for the personalization engine."""

import pytest

from repro.cms import (
    ANONYMOUS,
    ContentRepository,
    PersonalizationEngine,
    ProfileStore,
)
from repro.database import Database


@pytest.fixture
def engine():
    db = Database()
    repository = ContentRepository(db)
    profiles = ProfileStore(db)
    for category in ("Fiction", "Science"):
        for i in range(4):
            repository.put(
                "%s-%d" % (category, i), "article", category,
                "%s title %d" % (category, i), "body", rank=i,
            )
        repository.put(
            "%s-promo" % category, "promo", category,
            "%s sale" % category, "deal", rank=0,
        )
    profiles.register("bob", "Bob", preferred_categories=["Science"])
    profiles.register("quiet", "Quiet", show_promos=False)
    return PersonalizationEngine(repository, profiles)


class TestGreeting:
    def test_registered_greeting(self, engine):
        profile = engine.profile_for("bob")
        assert engine.greeting_for(profile) == "Hello, Bob"

    def test_anonymous_gets_no_greeting(self, engine):
        """The Bob/Alice scenario's ground truth."""
        profile = engine.profile_for(None)
        assert engine.greeting_for(profile) == ""

    def test_unknown_user_gets_no_greeting(self, engine):
        assert engine.greeting_for(engine.profile_for("stranger")) == ""


class TestRecommendations:
    def test_prefers_profile_categories(self, engine):
        profile = engine.profile_for("bob")
        recs = engine.recommendations_for(profile, limit=3)
        assert len(recs) == 3
        assert all(item["category"] == "Science" for item in recs)

    def test_anonymous_gets_default_mix(self, engine):
        recs = engine.recommendations_for(ANONYMOUS, limit=3)
        assert len(recs) == 3

    def test_limit_respected(self, engine):
        assert len(engine.recommendations_for(ANONYMOUS, limit=1)) == 1


class TestPromos:
    def test_promos_returned_by_rank(self, engine):
        promos = engine.promos_for(ANONYMOUS, limit=2)
        assert len(promos) == 2
        assert all(item["kind"] == "promo" for item in promos)

    def test_opt_out_suppresses_promos(self, engine):
        profile = engine.profile_for("quiet")
        assert engine.promos_for(profile) == []


class TestLayout:
    def test_layout_from_profile(self, engine):
        assert engine.layout_for(ANONYMOUS) == list(ANONYMOUS.layout_order)

    def test_same_request_different_users_different_content(self, engine):
        """Same 'URL' (no parameters differ), different users, different
        fragments — the core dynamic-content property."""
        bob = engine.profile_for("bob")
        anon = engine.profile_for(None)
        assert engine.greeting_for(bob) != engine.greeting_for(anon)
