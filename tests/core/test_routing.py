"""Tests for forward-proxy request routing (§7 extension)."""

import pytest

from repro.core.routing import ConsistentHashRing, RequestRouter
from repro.errors import ConfigurationError, RoutingError


class TestConsistentHashRing:
    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing()
        ring.add_node("p1")
        assert ring.preference_list("anything") == ["p1"]

    def test_preference_list_covers_all_nodes(self):
        ring = ConsistentHashRing()
        for name in ("p1", "p2", "p3"):
            ring.add_node(name)
        assert sorted(ring.preference_list("key")) == ["p1", "p2", "p3"]

    def test_deterministic(self):
        def build():
            ring = ConsistentHashRing()
            for name in ("p1", "p2", "p3"):
                ring.add_node(name)
            return ring

        assert build().preference_list("user:bob") == build().preference_list("user:bob")

    def test_remove_node(self):
        ring = ConsistentHashRing()
        ring.add_node("p1")
        ring.add_node("p2")
        ring.remove_node("p1")
        assert ring.nodes() == ["p2"]
        assert ring.preference_list("k") == ["p2"]

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing()
        ring.add_node("p1")
        with pytest.raises(ConfigurationError):
            ring.add_node("p1")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().remove_node("zzz")

    def test_adding_node_moves_minority_of_keys(self):
        """Consistent hashing: adding one node to N should remap ~1/(N+1)."""
        ring = ConsistentHashRing(replicas=128)
        for name in ("p1", "p2", "p3"):
            ring.add_node(name)
        keys = ["user:%04d" % i for i in range(1000)]
        before = {key: ring.preference_list(key)[0] for key in keys}
        ring.add_node("p4")
        moved = sum(
            1 for key in keys if ring.preference_list(key)[0] != before[key]
        )
        assert 0 < moved < 500  # far less than a full reshuffle

    def test_balance_is_reasonable(self):
        ring = ConsistentHashRing(replicas=128)
        for name in ("p1", "p2", "p3", "p4"):
            ring.add_node(name)
        counts = {}
        for i in range(4000):
            owner = ring.preference_list("sess:%d" % i)[0]
            counts[owner] = counts.get(owner, 0) + 1
        assert min(counts.values()) > 4000 / 4 * 0.4  # no starved node


class TestRequestRouter:
    def make_router(self):
        router = RequestRouter()
        for name in ("p1", "p2", "p3"):
            router.add_proxy(name)
        return router

    def test_affinity_prefers_user_identity(self):
        router = self.make_router()
        assert router.affinity_key("bob", "sess-1") == "user:bob"
        assert router.affinity_key(None, "sess-1") == "session:sess-1"
        assert router.affinity_key(None, None) == "anonymous"

    def test_same_user_same_proxy(self):
        router = self.make_router()
        first = router.route(user_id="bob")
        assert all(router.route(user_id="bob") == first for _ in range(10))

    def test_failover_to_next_live_proxy(self):
        router = self.make_router()
        primary = router.route(user_id="bob")
        router.mark_down(primary)
        backup = router.route(user_id="bob")
        assert backup != primary
        assert router.failovers == 1

    def test_recovery_restores_affinity(self):
        router = self.make_router()
        primary = router.route(user_id="bob")
        router.mark_down(primary)
        router.route(user_id="bob")
        router.mark_up(primary)
        assert router.route(user_id="bob") == primary

    def test_all_down_raises(self):
        router = self.make_router()
        for name in ("p1", "p2", "p3"):
            router.mark_down(name)
        with pytest.raises(RoutingError):
            router.route(user_id="bob")

    def test_no_proxies_raises(self):
        with pytest.raises(RoutingError):
            RequestRouter().route(user_id="bob")

    def test_mark_down_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_router().mark_down("zzz")

    def test_live_proxies(self):
        router = self.make_router()
        router.mark_down("p2")
        assert router.live_proxies() == ["p1", "p3"]

    def test_remove_proxy_clears_down_state(self):
        router = self.make_router()
        router.mark_down("p2")
        router.remove_proxy("p2")
        assert router.live_proxies() == ["p1", "p3"]
