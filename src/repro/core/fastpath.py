"""Global switch between the wire-path fast lanes and the reference lanes.

The serve path has two interchangeable implementations of its hot
operations:

* **fast lanes** — ``str.find``-based sentinel scanning, the LRU template
  parse cache, memoized serialization, and precompiled assembly plans.
  This is the default: it is what a production deployment would run.
* **reference lanes** — the per-character KMP scan and the uncached
  parse/serialize/assemble paths that mirror the paper's description
  operation for operation.

Both lanes are required to be *byte-identical* in every observable output:
assembled pages, serialized templates, scanned-byte counters (the ``z``
per-byte cost of Result 1), Sniffer totals, and metric rows.  The
differential property tests in ``tests/properties/test_fastpath_equivalence.py``
enforce that, and ``benchmarks/bench_hotpath.py`` measures the speedup by
running the same workload under each lane.

The switch is process-global on purpose: the lanes differ only in constant
factors, never in semantics, so there is nothing per-instance to configure.
Set the environment variable ``REPRO_FASTPATH=0`` to start a process on the
reference lanes (useful for A/B timing), or use :func:`reference_lanes`
as a context manager in tests and benchmarks.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_enabled = os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "no")


def enabled() -> bool:
    """Whether the fast lanes are currently active."""
    return _enabled


def enable() -> None:
    """Activate the fast lanes (the default state)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Deactivate the fast lanes: every operation takes the reference lane."""
    global _enabled
    _enabled = False


@contextmanager
def reference_lanes() -> Iterator[None]:
    """Run a block on the reference (pre-optimization) lanes.

    Restores the previous state on exit, even on error::

        with fastpath.reference_lanes():
            testbed.run()   # per-character KMP scan, uncached parses
    """
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


@contextmanager
def fast_lanes() -> Iterator[None]:
    """Run a block on the fast lanes regardless of the ambient state."""
    global _enabled
    previous = _enabled
    _enabled = True
    try:
        yield
    finally:
        _enabled = previous
