"""Tests for the tiny SQL dialect: tokenizer and parser."""

import pytest

from repro.database.sql import (
    PLACEHOLDER,
    Condition,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    count_placeholders,
    parse,
    tokenize,
)
from repro.errors import SqlSyntaxError


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE b = 1")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "keyword", "ident", "keyword",
                         "ident", "op", "number"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT a FROM t WHERE b = 'it''s'")
        assert tokens[-1].text == "'it''s'"

    def test_unrecognized_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a FROM t WHERE b = @1")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select A from T")
        assert tokens[0].kind == "keyword"
        assert tokens[0].text == "select"
        assert tokens[1].text == "A"  # identifier case preserved


class TestSelectParsing:
    def test_star_select(self):
        statement = parse("SELECT * FROM products")
        assert isinstance(statement, SelectStatement)
        assert statement.is_star
        assert statement.table == "products"

    def test_column_list(self):
        statement = parse("SELECT a, b, c FROM t")
        assert statement.columns == ("a", "b", "c")

    def test_where_conjunction(self):
        statement = parse("SELECT * FROM t WHERE a = 1 AND b != 'x' AND c >= 2.5")
        assert len(statement.where) == 3
        assert statement.where[0] == Condition("a", "=", 1)
        assert statement.where[1] == Condition("b", "!=", "x")
        assert statement.where[2] == Condition("c", ">=", 2.5)

    def test_diamond_means_not_equal(self):
        statement = parse("SELECT * FROM t WHERE a <> 3")
        assert statement.where[0].op == "!="

    def test_like(self):
        statement = parse("SELECT * FROM t WHERE name LIKE 'abc%'")
        assert statement.where[0].op == "like"

    def test_order_and_limit(self):
        statement = parse("SELECT * FROM t ORDER BY price DESC LIMIT 5")
        assert statement.order_by == "price"
        assert statement.descending
        assert statement.limit == 5

    def test_order_asc_default(self):
        statement = parse("SELECT * FROM t ORDER BY price")
        assert not statement.descending

    def test_null_true_false_literals(self):
        statement = parse("SELECT * FROM t WHERE a = NULL AND b = TRUE AND c = FALSE")
        values = [cond.value for cond in statement.where]
        assert values == [None, True, False]

    def test_placeholders(self):
        statement = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        assert count_placeholders(statement) == 2
        assert statement.where[0].value is PLACEHOLDER

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t garbage")

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t LIMIT 'five'")


class TestOtherStatements:
    def test_insert(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ("a", "b")
        assert statement.values == (1, "x")

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments == (("a", 1), ("b", "x"))
        assert statement.where[0].column == "c"

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, DeleteStatement)

    def test_delete_without_where(self):
        statement = parse("DELETE FROM t")
        assert statement.where == ()

    def test_empty_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("DROP TABLE t")

    def test_placeholder_count_insert_update(self):
        assert count_placeholders(parse("INSERT INTO t (a, b) VALUES (?, ?)")) == 2
        assert count_placeholders(parse("UPDATE t SET a = ? WHERE b = ?")) == 2


class TestConditionMatching:
    def test_comparison_operators(self):
        assert Condition("x", "<", 5).matches(3, 5)
        assert not Condition("x", "<", 5).matches(7, 5)
        assert Condition("x", ">=", 5).matches(5, 5)

    def test_null_comparisons_fail_except_equality(self):
        assert not Condition("x", "<", 5).matches(None, 5)
        assert Condition("x", "=", None).matches(None, None)

    def test_like_matching(self):
        cond = Condition("x", "like", "ab%z")
        assert cond.matches("abz", "ab%z")
        assert cond.matches("ab123z", "ab%z")
        assert not cond.matches("ab123", "ab%z")

    def test_like_underscore_single_char(self):
        cond = Condition("x", "like", "a_c")
        assert cond.matches("abc", "a_c")
        assert not cond.matches("abbc", "a_c")
