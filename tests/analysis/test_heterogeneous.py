"""Tests for the general per-page-composition model."""

import pytest

from repro.analysis import TABLE2, bytes_ratio
from repro.analysis.heterogeneous import (
    Application,
    FragmentSpec,
    PageComposition,
    homogeneous_application,
)
from repro.errors import ConfigurationError


def two_page_app(hot_cacheable=True):
    """Hot page fully cacheable (or not), cold page the opposite."""
    fragments = [
        FragmentSpec("hot-frag", 1000.0, cacheable=hot_cacheable),
        FragmentSpec("cold-frag", 1000.0, cacheable=not hot_cacheable),
    ]
    pages = [
        PageComposition("hot", ("hot-frag", "hot-frag")),
        PageComposition("cold", ("cold-frag", "cold-frag")),
    ]
    return Application(fragments, pages, zipf_alpha=1.0)


class TestValidation:
    def test_duplicate_fragment_rejected(self):
        with pytest.raises(ConfigurationError):
            Application(
                [FragmentSpec("a", 10.0), FragmentSpec("a", 20.0)],
                [PageComposition("p", ("a",))],
            )

    def test_unknown_fragment_in_page_rejected(self):
        with pytest.raises(ConfigurationError):
            Application(
                [FragmentSpec("a", 10.0)],
                [PageComposition("p", ("zzz",))],
            )

    def test_empty_page_rejected(self):
        with pytest.raises(ConfigurationError):
            PageComposition("p", ())

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FragmentSpec("a", -1.0)


class TestPageSizes:
    def test_no_cache_size(self):
        app = two_page_app()
        assert app.page_size_no_cache(app.pages[0]) == 2000.0 + 500.0

    def test_cached_size_full_hits(self):
        app = two_page_app()
        # Two cacheable fragments at h=1: 2 GET tags + header.
        assert app.page_size_cached(app.pages[0], 1.0) == 2 * 10.0 + 500.0
        # Cold page's fragments are non-cacheable: full content ships.
        assert app.page_size_cached(app.pages[1], 1.0) == 2000.0 + 500.0


class TestHomogeneousConsistency:
    """The general model must agree exactly with the closed-form one."""

    @pytest.mark.parametrize("hit_ratio", [0.0, 0.2, 0.8, 1.0])
    def test_matches_closed_form(self, hit_ratio):
        params = TABLE2.with_(hit_ratio=hit_ratio, cacheability=0.5)
        app = homogeneous_application(params)
        assert app.bytes_ratio(hit_ratio) == pytest.approx(
            bytes_ratio(params), rel=1e-12
        )

    @pytest.mark.parametrize("cacheability", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_matches_across_realizable_cacheability(self, cacheability):
        """Exact agreement wherever X * fragments_per_page is integral."""
        params = TABLE2.with_(cacheability=cacheability)
        app = homogeneous_application(params)
        assert app.bytes_ratio(params.hit_ratio) == pytest.approx(
            bytes_ratio(params), rel=1e-12
        )

    def test_discreteness_gap_at_table2_cacheability(self):
        """0.6 x 4 = 2.4 cacheable fragments per page is unrealizable; a
        concrete application rounds down to 2/4 and saves slightly less
        than the fractional closed form — the documented gap."""
        app = homogeneous_application(TABLE2)
        concrete = app.bytes_ratio(TABLE2.hit_ratio)
        fractional = bytes_ratio(TABLE2)
        assert concrete > fractional
        assert concrete - fractional < 0.08


class TestCompositionPopularityInteraction:
    """What the homogeneous model cannot see."""

    def test_hot_cacheable_beats_cold_cacheable(self):
        hot = two_page_app(hot_cacheable=True)
        cold = two_page_app(hot_cacheable=False)
        # Same pool, same design-time cacheability factor (0.5 each)...
        assert hot.cacheability_factor() == cold.cacheability_factor() == 0.5
        # ...but savings differ hugely because traffic is Zipf-skewed.
        assert hot.savings_percent(0.9) > cold.savings_percent(0.9) + 15.0

    def test_traffic_weighted_cacheability_explains_it(self):
        hot = two_page_app(hot_cacheable=True)
        cold = two_page_app(hot_cacheable=False)
        assert hot.traffic_weighted_cacheability() > 0.6
        assert cold.traffic_weighted_cacheability() < 0.4

    def test_uniform_traffic_removes_the_gap(self):
        fragments = [
            FragmentSpec("a", 1000.0, cacheable=True),
            FragmentSpec("b", 1000.0, cacheable=False),
        ]
        hot = Application(
            fragments,
            [PageComposition("h", ("a", "a")), PageComposition("c", ("b", "b"))],
            zipf_alpha=0.0,
        )
        cold = Application(
            fragments,
            [PageComposition("h", ("b", "b")), PageComposition("c", ("a", "a"))],
            zipf_alpha=0.0,
        )
        assert hot.savings_percent(0.9) == pytest.approx(
            cold.savings_percent(0.9)
        )

    def test_shared_fragment_counts_once_per_appearance(self):
        fragments = [FragmentSpec("shared", 500.0)]
        app = Application(
            fragments,
            [
                PageComposition("p1", ("shared",)),
                PageComposition("p2", ("shared", "shared")),
            ],
        )
        assert app.page_size_no_cache(app.pages[1]) == 1000.0 + 500.0
