"""Tests for graceful-degradation modes and their accounting."""

import pytest

from repro.core.bem import BackEndMonitor
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.errors import ConfigurationError
from repro.faults.degradation import DegradationStats, GracefulDegrader


def bem_with_entry(ttl=10.0):
    """A BEM whose directory holds one entry created at t=0 with ``ttl``."""
    bem = BackEndMonitor(capacity=8)
    fragment_id = FragmentID("block", (("k", "v"),))
    bem.directory.insert(
        fragment_id, FragmentMetadata(ttl=ttl), size_bytes=100, now=0.0
    )
    return bem, fragment_id


class TestBypassAccounting:
    def test_bypass_counts_requests_and_bytes(self):
        degrader = GracefulDegrader()
        degrader.record_bypass(4000)
        degrader.record_bypass(6000)
        assert degrader.stats.bypassed_requests == 2
        assert degrader.stats.bypass_bytes == 10000

    def test_availability_counts_only_hard_failures(self):
        degrader = GracefulDegrader()
        degrader.record_bypass(100)
        degrader.record_failure()
        assert degrader.stats.fallback_requests == 2
        assert degrader.stats.availability(10) == pytest.approx(0.9)
        assert DegradationStats().availability(0) == 0.0

    def test_negative_grace_rejected(self):
        with pytest.raises(ConfigurationError):
            GracefulDegrader(grace_s=-1.0)


class TestStaleWhileRevalidate:
    def test_fresh_entry_served_without_stale_accounting(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        assert degrader.stale_lookup(fragment_id, now=5.0) is not None
        assert degrader.stats.stale_hits == 0

    def test_expired_entry_served_within_grace(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        entry = degrader.stale_lookup(fragment_id, now=12.0)  # TTL < 12 < TTL+grace
        assert entry is not None
        assert degrader.stats.stale_hits == 1
        assert degrader.stats.stale_bytes == entry.size_bytes
        assert degrader.drain_refreshes() == [fragment_id]
        assert degrader.drain_refreshes() == []  # cleared on read

    def test_expired_beyond_grace_is_a_miss(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        assert degrader.stale_lookup(fragment_id, now=16.0) is None
        assert degrader.stats.stale_hits == 0

    def test_zero_grace_disables_stale_serving(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        degrader = GracefulDegrader(bem=bem)
        assert degrader.stale_lookup(fragment_id, now=12.0) is None

    def test_untimed_entry_never_goes_stale(self):
        bem, fragment_id = bem_with_entry(ttl=None)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        assert degrader.stale_lookup(fragment_id, now=10**6) is not None
        assert degrader.stats.stale_hits == 0

    def test_unknown_fragment_is_a_miss(self):
        bem, _ = bem_with_entry()
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        assert degrader.stale_lookup(FragmentID("nope"), now=0.0) is None

    def test_invalidated_entry_is_a_miss_even_within_grace(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        bem.directory.invalidate(fragment_id)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        assert degrader.stale_lookup(fragment_id, now=12.0) is None

    def test_revalidate_due_invalidates_stale_entries(self):
        bem, fragment_id = bem_with_entry(ttl=10.0)
        degrader = GracefulDegrader(bem=bem, grace_s=5.0)
        degrader.stale_lookup(fragment_id, now=12.0)
        assert degrader.revalidate_due() == 1
        entry = bem.directory.peek(fragment_id)
        assert entry is None or not entry.is_valid
        bem.directory.check_invariants()

    def test_stale_lookup_without_bem_is_a_config_error(self):
        degrader = GracefulDegrader(grace_s=5.0)
        with pytest.raises(ConfigurationError):
            degrader.stale_lookup(FragmentID("a"), now=0.0)
        with pytest.raises(ConfigurationError):
            GracefulDegrader().revalidate_due()
