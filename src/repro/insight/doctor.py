"""``python -m repro doctor`` — one-shot diagnosis of a cache deployment.

The doctor runs a deliberately pathological deployment — a flash crowd
with deadlines against an undersized directory whose fragments carry TTLs,
data churn, and a mid-run proxy restart — so every miss cause the insight
layer knows about actually occurs, then renders what an operator would
want on one page:

* the **miss-cause breakdown** (ledger), with the sum-to-misses invariant
  checked against the live directory, and the worst-missing fragments;
* the **counterfactual hit-ratio curve** (Mattson profiler) with a slot
  recommendation, validated against a brute-force LRU re-simulation at
  small slot counts (the single-pass prediction must be *exact*);
* the **SLO verdicts**: compliance, burn rates, and the typed alerts that
  fired during the crowd;
* the **latency attribution**: per-span-kind self time over the retained
  virtual-time traces, so "where did the seconds go" has an answer.

``--smoke`` turns the run into a CI self-check: smaller scenario, hard
assertions on the ledger invariant and profiler exactness, plus the
insight-overhead gate (:mod:`repro.perf.insight`, <5% lower-quartile).
Exit status is nonzero when any check fails.  ``--json`` emits the whole
diagnosis as one JSON document instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.fragments import Dependency
from ..faults.recovery import ResyncProtocol
from ..harness.reporting import format_table
from ..harness.testbed import TestbedConfig
from ..overload import (
    CircuitBreaker,
    CoDelPolicy,
    OverloadConfig,
    OverloadHarness,
    OverloadResult,
)
from ..sites.synthetic import SYNTHETIC_TABLE, SyntheticParams
from ..workload import FlashCrowdProcess
from .layer import InsightLayer
from .mattson import simulate_lru
from .slo import SloEngine, SloObjective

#: Slot counts the smoke check validates the profiler against, brute-force.
VALIDATE_SLOTS = tuple(range(1, 9))


@dataclass
class DoctorScenario:
    """Knobs of the pathological run the doctor diagnoses."""

    requests: int = 900
    warmup: int = 100
    seed: int = 7
    #: Synthetic site: 48-fragment pool, 36 cacheable at 0.75.
    params: SyntheticParams = field(
        default_factory=lambda: SyntheticParams(
            num_pages=12, fragments_per_page=4,
            fragment_size=2048, cacheability=0.75,
        )
    )
    #: Directory/DPC slots — deliberately below the cacheable pool so the
    #: replacement manager must evict (``evicted_capacity`` misses).
    capacity: int = 24
    #: TTL stamped onto the cacheable block (``ttl_expired`` misses).
    ttl_s: float = 6.0
    #: Data churn toward this hit ratio (``data_invalidated`` misses).
    target_hit_ratio: float = 0.9
    #: Flash crowd (``shed_overload`` misses once protection engages).
    base_rate: float = 6.0
    multiplier: float = 10.0
    burst_at: float = 20.0
    hold_s: float = 5.0
    decay_s: float = 2.0
    deadline_s: float = 1.5
    #: Request index of the proxy restart + epoch resync
    #: (``fault_quarantine`` misses); ``None`` computes mid-run.
    wipe_at: Optional[int] = None

    def wipe_index(self) -> int:
        """The request index at which the DPC wipe fires."""
        if self.wipe_at is not None:
            return self.wipe_at
        return self.warmup + self.requests // 2


def smoke_scenario() -> DoctorScenario:
    """The reduced scenario behind ``repro doctor --smoke`` (<60 s)."""
    return DoctorScenario(
        requests=300, warmup=40, capacity=20,
        burst_at=8.0, hold_s=3.0, decay_s=1.5,
    )


def _slo_engine(scenario: DoctorScenario) -> SloEngine:
    """The objectives the doctor watches, sized to the scenario's clock."""
    return SloEngine([
        SloObjective(
            name="slo.availability", metric="request.served",
            comparator=">=", threshold=1.0, compliance_target=0.99,
            long_window_s=10.0, short_window_s=1.0,
            burn_threshold=2.0, min_samples=20,
        ),
        SloObjective(
            name="slo.latency_p95", metric="request.elapsed_s",
            comparator="<=", threshold=scenario.deadline_s / 2.0,
            compliance_target=0.95,
            long_window_s=10.0, short_window_s=1.0,
            burn_threshold=2.0, min_samples=20,
        ),
        SloObjective(
            name="slo.hit_rate", metric="request.predicted_hit",
            comparator=">=", threshold=1.0, compliance_target=0.5,
            long_window_s=10.0, short_window_s=1.0,
            burn_threshold=1.5, min_samples=20,
        ),
    ])


@dataclass
class Diagnosis:
    """Everything one doctor run measured, ready to render or serialize."""

    scenario: DoctorScenario
    result: OverloadResult
    insight: InsightLayer
    slo: SloEngine
    harness: OverloadHarness
    #: (num_slots, predicted_hits, simulated_hits, exact) validation rows.
    validation: List[Tuple[int, int, int, bool]]
    #: (span kind, total self seconds, spans) rows, largest first.
    attribution: List[Tuple[str, float, int]]

    @property
    def directory(self):
        """The BEM directory the insight layer observed."""
        return self.harness.testbed.monitor.directory

    def profiler_exact(self) -> bool:
        """Whether the single-pass prediction matched brute force everywhere."""
        return all(row[3] for row in self.validation)

    def checks(self) -> List[Tuple[str, bool, str]]:
        """(name, passed, detail) verdicts for the hard smoke assertions."""
        ledger = self.insight.ledger
        rows: List[Tuple[str, bool, str]] = []
        try:
            self.insight.check_invariants(self.directory)
            rows.append((
                "miss-cause sum invariant", True,
                "%d causes == %d misses" % (ledger.cause_total(), ledger.misses),
            ))
        except AssertionError as exc:
            rows.append(("miss-cause sum invariant", False, str(exc)))
        rows.append((
            "mattson exact vs brute force", self.profiler_exact(),
            "slot counts %d..%d" % (VALIDATE_SLOTS[0], VALIDATE_SLOTS[-1]),
        ))
        conserved = self.result.conserved
        rows.append((
            "outcome conservation", conserved,
            "%d outcomes over %d offered"
            % (self.result.completed + self.result.shed
               + self.result.timed_out, self.result.offered),
        ))
        return rows


def run_diagnosis(scenario: DoctorScenario) -> Diagnosis:
    """Run the pathological deployment with full insight attached."""
    testbed_config = TestbedConfig(
        mode="dpc",
        synthetic=scenario.params,
        target_hit_ratio=scenario.target_hit_ratio,
        requests=scenario.requests,
        warmup_requests=scenario.warmup,
        seed=scenario.seed,
        dpc_capacity=scenario.capacity,
        tracing=True,
        arrivals=FlashCrowdProcess(
            base_rate=scenario.base_rate,
            multiplier=scenario.multiplier,
            burst_at=scenario.burst_at,
            hold_s=scenario.hold_s,
            decay_s=scenario.decay_s,
            deterministic=True,
        ),
    )
    config = OverloadConfig(
        testbed=testbed_config,
        deadline_s=scenario.deadline_s,
        app_servers=1, app_queue_capacity=8,
        db_servers=2, db_queue_capacity=16,
        policy=CoDelPolicy(target_s=0.05, interval_s=0.5),
        breaker=CircuitBreaker(failure_threshold=5, open_s=1.0),
        correctness_every=0,
        seed=scenario.seed,
    )
    harness = OverloadHarness(config)
    testbed = harness.testbed

    # TTL the cacheable block (the synthetic tagging pass declares only data
    # dependencies); the retag keeps the dependency factory so the §4.3.3
    # trigger path still produces data_invalidated misses.
    testbed.services.tags.retag(
        "frag",
        ttl=scenario.ttl_s,
        dependencies=lambda p: (
            Dependency(SYNTHETIC_TABLE, key=int(p["id"])),
        ),
    )

    insight = InsightLayer(keep_events=True).attach(
        bem=testbed.monitor, dpc=testbed.dpc
    )

    # Mid-run proxy restart: wipe the slot array, then resync the directory
    # synchronously so the harness never sees a desynced GET; the dropped
    # entries become fault_quarantine misses.
    wipe_at = scenario.wipe_index()
    fired: List[int] = []

    def wipe_and_resync(tb, index, timed) -> None:
        if index == wipe_at and not fired:
            fired.append(index)
            tb.dpc.clear()
            ResyncProtocol(tb.monitor, tb.dpc).resync(
                tb.dpc.epoch, tb.clock.now()
            )

    testbed.pre_request_hooks.append(wipe_and_resync)

    # SLO sample streams, fed per request on the virtual clock.
    slo = _slo_engine(scenario)

    def feed_slo(index, timed, outcome, predicted_hit) -> None:
        now = testbed.clock.now()
        served = outcome in ("fresh", "stale")
        slo.observe("request.served", 1.0 if served else 0.0, now)
        slo.observe(
            "request.predicted_hit", 1.0 if predicted_hit else 0.0, now
        )
        if served:
            slo.observe("request.elapsed_s", now - timed.at, now)

    harness.request_observers.append(feed_slo)

    result = harness.run()

    profiler = insight.profiler
    validation = []
    for num_slots in VALIDATE_SLOTS:
        predicted = profiler.predicted_hits(num_slots)
        simulated, _ = simulate_lru(profiler.events, num_slots)
        validation.append(
            (num_slots, predicted, simulated, predicted == simulated)
        )

    return Diagnosis(
        scenario=scenario,
        result=result,
        insight=insight,
        slo=slo,
        harness=harness,
        validation=validation,
        attribution=latency_attribution(testbed.tracer),
    )


def latency_attribution(tracer) -> List[Tuple[str, float, int]]:
    """Per-span-kind *self* time over the tracer's retained traces.

    Self time is a span's duration minus its children's (the virtual
    seconds attributable to that stage itself); summed per span name over
    the most recent traces, largest share first.  Gap-free trees make the
    totals tile the retained requests' response time exactly.
    """
    totals: Dict[str, Tuple[float, int]] = {}
    for root in tracer.traces:
        for span in root.walk():
            child_s = sum(child.duration for child in span.children)
            self_s = max(0.0, span.duration - child_s)
            seconds, count = totals.get(span.name, (0.0, 0))
            totals[span.name] = (seconds + self_s, count + 1)
    return sorted(
        ((name, seconds, count) for name, (seconds, count) in totals.items()),
        key=lambda row: -row[1],
    )


# -- rendering ----------------------------------------------------------------


def render_report(diagnosis: Diagnosis) -> str:
    """The human-readable diagnosis, section by section."""
    scenario = diagnosis.scenario
    result = diagnosis.result
    ledger = diagnosis.insight.ledger
    profiler = diagnosis.insight.profiler
    sections: List[str] = []

    def section(title: str, body: str) -> None:
        sections.append("== %s ==\n%s" % (title, body))

    # 1. Run summary.
    stats = diagnosis.directory.stats
    hit_ratio = (
        stats.hits / (stats.hits + stats.misses)
        if stats.hits + stats.misses else 0.0
    )
    section("Run", format_table(
        ["metric", "value"],
        [
            ("offered requests", result.offered),
            ("fresh / stale", "%d / %d"
             % (result.completed_fresh, result.completed_stale)),
            ("shed / timed out", "%d / %d" % (result.shed, result.timed_out)),
            ("p50 / p99 response", "%.3fs / %.3fs"
             % (result.p50(), result.p99())),
            ("directory hit ratio", "%.3f" % hit_ratio),
            ("directory slots", scenario.capacity),
            ("dpc wipes observed", diagnosis.insight.dpc_wipes),
            ("eviction victims", diagnosis.insight.eviction_victims),
        ],
    ))

    # 2. Miss causes.
    rows = []
    for cause, count in ledger.as_rows():
        share = count / ledger.misses if ledger.misses else 0.0
        rows.append((cause, count, "%.1f%%" % (share * 100)))
    invariant = "sum(causes) %d == misses %d — OK" % (
        ledger.cause_total(), ledger.misses,
    )
    body = format_table(["cause", "misses", "share"], rows)
    body += "\n%s" % invariant
    top = ledger.top_fragments(5)
    if top:
        body += "\n\nworst fragments:\n" + format_table(
            ["fragment", "misses", "causes"], top,
        )
    section("Miss causes", body)

    # 3. Counterfactual capacity curve.
    boundaries = sorted(
        {1, scenario.capacity, profiler.max_useful_slots()}
        | {distance + 1 for distance in profiler.histogram}
    )
    shown = boundaries[:: max(1, len(boundaries) // 8)]
    if boundaries and shown[-1] != boundaries[-1]:
        shown.append(boundaries[-1])
    curve_rows = [
        (num_slots, "%.3f" % ratio)
        for num_slots, ratio in profiler.curve(shown)
    ]
    recommendation = profiler.recommend_slots()
    body = format_table(["slots", "predicted hit ratio"], curve_rows)
    body += (
        "\nasymptote %.3f (cold %d, stale-in-place %d); "
        "recommended slots: %d (have %d)"
        % (
            profiler.asymptotic_hit_ratio(), profiler.cold_misses,
            profiler.stale_misses, recommendation, scenario.capacity,
        )
    )
    body += "\n\nvalidation vs brute-force LRU:\n" + format_table(
        ["slots", "predicted", "simulated", "exact"],
        [(c, p, s, "yes" if ok else "NO")
         for c, p, s, ok in diagnosis.validation],
    )
    section("Counterfactual capacity (Mattson)", body)

    # 4. SLOs.
    now = diagnosis.harness.testbed.clock.now()
    slo_rows = []
    for objective in diagnosis.slo.objectives:
        long_burn, short_burn = diagnosis.slo.burn_rates(objective.name, now)
        slo_rows.append((
            objective.name,
            "%s %s %g" % (objective.metric, objective.comparator,
                          objective.threshold),
            "%.4f" % diagnosis.slo.compliance(objective.name),
            "-" if long_burn is None else "%.2f" % long_burn,
            "-" if short_burn is None else "%.2f" % short_burn,
            "yes" if objective.name in diagnosis.slo.active_alerts()
            else "no",
        ))
    body = format_table(
        ["objective", "rule", "compliance", "burn(long)", "burn(short)",
         "active"],
        slo_rows,
    )
    if diagnosis.slo.alerts:
        body += "\n\nalerts fired:\n" + format_table(
            ["objective", "at (virtual s)", "burn long", "burn short"],
            [(a.objective, "%.2f" % a.fired_at, "%.2f" % a.burn_long,
              "%.2f" % a.burn_short) for a in diagnosis.slo.alerts],
        )
    else:
        body += "\nno alerts fired"
    section("SLOs", body)

    # 5. Latency attribution.
    total_self = sum(seconds for _, seconds, _ in diagnosis.attribution)
    attr_rows = [
        (name, "%.4f" % seconds,
         "%.1f%%" % (100 * seconds / total_self if total_self else 0.0),
         count)
        for name, seconds, count in diagnosis.attribution
    ]
    section(
        "Latency attribution (self time over last %d traces)"
        % len(diagnosis.harness.testbed.tracer.traces),
        format_table(["span kind", "self s", "share", "spans"], attr_rows),
    )

    # 6. Checks.
    section("Checks", format_table(
        ["check", "status", "detail"],
        [(name, "PASS" if ok else "FAIL", detail)
         for name, ok, detail in diagnosis.checks()],
    ))

    return "repro doctor — cache diagnosis\n\n" + "\n\n".join(sections) + "\n"


def diagnosis_to_dict(diagnosis: Diagnosis) -> Dict[str, object]:
    """The diagnosis as one JSON-serializable document (``--json``)."""
    ledger = diagnosis.insight.ledger
    profiler = diagnosis.insight.profiler
    return {
        "scenario": {
            key: (asdict(value) if isinstance(value, SyntheticParams)
                  else value)
            for key, value in asdict(diagnosis.scenario).items()
        },
        "run": {
            "offered": diagnosis.result.offered,
            "fresh": diagnosis.result.completed_fresh,
            "stale": diagnosis.result.completed_stale,
            "shed": diagnosis.result.shed,
            "timed_out": diagnosis.result.timed_out,
            "p50_s": round(diagnosis.result.p50(), 6),
            "p99_s": round(diagnosis.result.p99(), 6),
        },
        "miss_causes": dict(ledger.as_rows()),
        "misses": ledger.misses,
        "hits": ledger.hits,
        "worst_fragments": [
            {"fragment": canonical, "misses": misses, "causes": causes}
            for canonical, misses, causes in ledger.top_fragments(5)
        ],
        "mattson": {
            "curve": [
                {"slots": num_slots, "hit_ratio": round(ratio, 6)}
                for num_slots, ratio in profiler.curve(
                    sorted({distance + 1 for distance in profiler.histogram}
                           | {1, diagnosis.scenario.capacity})
                )
            ],
            "asymptote": round(profiler.asymptotic_hit_ratio(), 6),
            "recommended_slots": profiler.recommend_slots(),
            "validation": [
                {"slots": c, "predicted": p, "simulated": s, "exact": ok}
                for c, p, s, ok in diagnosis.validation
            ],
        },
        "slo": {
            "objectives": [
                {
                    "name": objective.name,
                    "compliance": round(
                        diagnosis.slo.compliance(objective.name), 6
                    ),
                }
                for objective in diagnosis.slo.objectives
            ],
            "alerts": [asdict(alert) for alert in diagnosis.slo.alerts],
        },
        "latency_attribution": [
            {"span": name, "self_s": round(seconds, 6), "count": count}
            for name, seconds, count in diagnosis.attribution
        ],
        "checks": [
            {"check": name, "passed": ok, "detail": detail}
            for name, ok, detail in diagnosis.checks()
        ],
    }


# -- entry point --------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro doctor`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro doctor",
        description="Diagnose a pathological cache deployment end to end.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scenario with hard assertions and the overhead gate "
        "(CI self-check; exits nonzero on any failure)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the diagnosis as one JSON document",
    )
    parser.add_argument(
        "--no-bench", action="store_true",
        help="skip the insight-overhead gate in --smoke (unit tests only)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario seed",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro doctor``; returns an exit code."""
    args = build_parser().parse_args(argv)
    scenario = smoke_scenario() if args.smoke else DoctorScenario()
    if args.seed is not None:
        scenario.seed = args.seed
    diagnosis = run_diagnosis(scenario)

    failed = [name for name, ok, _ in diagnosis.checks() if not ok]
    overhead_verdict: Optional[str] = None
    if args.smoke and not args.no_bench:
        from ..perf.insight import SMOKE_SETTINGS, run_insight
        try:
            bench = run_insight(**SMOKE_SETTINGS)
            overhead_verdict = (
                "overhead gate: lower-quartile %.2f%% < %.0f%% — OK"
                % (bench["overhead"]["lower_quartile"] * 100,
                   bench["overhead"]["bound"] * 100)
            )
        except AssertionError as exc:
            overhead_verdict = str(exc)
            failed.append("insight overhead gate")

    if args.as_json:
        document = diagnosis_to_dict(diagnosis)
        if overhead_verdict is not None:
            document["overhead_gate"] = overhead_verdict
        document["failed_checks"] = failed
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_report(diagnosis), end="")
        if overhead_verdict is not None:
            print("\n" + overhead_verdict)
        if failed:
            print("\nFAILED checks: %s" % ", ".join(failed), file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
