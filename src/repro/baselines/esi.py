"""Baseline: dynamic page assembly, ESI-style (§3.2.2).

"This approach entails establishing a template for each dynamically
generated page ... each page is factored into a number of fragments that
are used to assemble the page at a network cache."

The two limitations the paper calls out are modeled faithfully:

1. **Fixed layout per URL.**  The edge caches one template per request URL,
   captured from the *first* response for that URL.  Every later request
   for the URL is assembled from that template — "regardless of whether the
   template in cache would produce the same output page as the dynamic
   scripts on the Web site".  Users with different layouts or different
   personalization get the first user's page shape (and personalized
   fragment *instances*), which the correctness benches measure.
2. **TTL-only coherence.**  Fragments are refreshed on expiry; there is no
   data-driven invalidation path to the edge.

The upside is modeled too: on a warm template whose fragments are all
fresh, the origin ships **zero** bytes — assembly happens entirely at the
edge, which is why ESI wins on bandwidth when its preconditions hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..appserver.http import HttpRequest
from ..appserver.server import ApplicationServer
from ..appserver.scripts import ScriptContext
from ..core.bem import ObjectCache
from ..core.fragments import FragmentID, FragmentMetadata
from ..core.tagging import PageBuilder
from ..core.template import Instruction, Literal, SetInstruction
from ..network.clock import SimulatedClock

#: Byte cost of one ``<esi:include src="..."/>`` tag, excluding the src.
ESI_TAG_OVERHEAD = 22


class _EsiCaptureMonitor:
    """PageBuilder-protocol monitor that records the fragment structure.

    Every cacheable block is generated and returned as a SET instruction
    whose key indexes the fragment's *src* (its canonical fragmentID) —
    which is exactly what an ESI factoring would use as the include URL.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self.objects = ObjectCache(clock)
        self.src_by_key: Dict[int, str] = {}
        self.ttl_by_src: Dict[str, Optional[float]] = {}
        self._key_by_src: Dict[str, int] = {}

    def process_block(
        self,
        fragment_id: FragmentID,
        metadata: FragmentMetadata,
        generate: Callable[[], str],
    ) -> Instruction:
        content = generate()
        if not metadata.cacheable:
            return Literal(content)
        src = fragment_id.canonical()
        key = self._key_by_src.get(src)
        if key is None:
            key = len(self._key_by_src)
            self._key_by_src[src] = key
            self.src_by_key[key] = src
        self.ttl_by_src[src] = metadata.ttl
        return SetInstruction(key, content)


#: A template part: literal markup or a fragment include by src.
TemplatePart = Tuple[str, str]  # ("lit", text) | ("ref", src)


@dataclass
class _CachedFragment:
    content: str
    stored_at: float
    ttl: Optional[float]

    def fresh(self, now: float) -> bool:
        return self.ttl is None or now < self.stored_at + self.ttl


@dataclass
class EsiStats:
    requests: int = 0
    template_hits: int = 0
    template_misses: int = 0
    fragments_fetched: int = 0
    fragment_hits: int = 0
    origin_payload_bytes: int = 0
    served_bytes: int = 0

    @property
    def template_hit_ratio(self) -> float:
        """Requests served from a cached template, as a fraction."""
        if self.requests == 0:
            return 0.0
        return self.template_hits / self.requests


class EsiAssembler:
    """An edge cache doing dynamic page assembly against a plain origin."""

    def __init__(
        self,
        origin: ApplicationServer,
        response_header_bytes: int = 500,
    ) -> None:
        if origin.caching_enabled:
            raise ValueError("ESI needs a plain (no-BEM) origin server")
        self.origin = origin
        self.clock = origin.clock
        self.header_bytes = response_header_bytes
        self._templates: Dict[str, List[TemplatePart]] = {}
        self._fragments: Dict[str, _CachedFragment] = {}
        self.stats = EsiStats()

    # -- origin interaction ---------------------------------------------------

    def _capture(self, request: HttpRequest) -> Tuple[List[TemplatePart], Dict[str, str]]:
        """Run the script once, returning template parts + fragment bodies."""
        monitor = _EsiCaptureMonitor(self.clock)
        script = self.origin.scripts.resolve(request.path)
        session = self.origin.sessions.resolve(request.session_id, request.user_id)
        builder = PageBuilder(self.origin.services.tags, bem=monitor)
        ctx = ScriptContext(
            request=request,
            session=session,
            services=self.origin.services,
            builder=builder,
            cost_model=self.origin.cost_model,
            bem=monitor,
        )
        script.run(ctx)
        template = builder.finish()
        parts: List[TemplatePart] = []
        bodies: Dict[str, str] = {}
        for instruction in template.instructions:
            if isinstance(instruction, Literal):
                parts.append(("lit", instruction.text))
            elif isinstance(instruction, SetInstruction):
                src = monitor.src_by_key[instruction.key]
                parts.append(("ref", src))
                bodies[src] = instruction.content
                self._fragments[src] = _CachedFragment(
                    content=instruction.content,
                    stored_at=self.clock.now(),
                    ttl=monitor.ttl_by_src[src],
                )
        self.clock.advance(ctx.generation_cost_s)
        return parts, bodies

    def _fetch_fragment(self, src: str, request: HttpRequest) -> str:
        """Refresh one expired fragment from the origin.

        Simulation shortcut: the origin re-runs the page script and we keep
        the one fragment (charging only its bytes on the wire) — a real
        deployment would run the factored per-fragment script, which is the
        redundant-work problem §3.2.2 describes.
        """
        parts, bodies = self._capture(request)
        if src in bodies:
            return bodies[src]
        # The fragment no longer appears for this requester (layout drift);
        # serve the stale copy if one exists, else empty.
        cached = self._fragments.get(src)
        return cached.content if cached is not None else ""

    # -- the edge ---------------------------------------------------------------

    def serve(self, request: HttpRequest) -> Tuple[str, bool]:
        """Serve a request; returns ``(html, template_was_cached)``.

        Byte accounting accumulates in :attr:`stats`; origin payload bytes
        cover the template (on template miss) and each fragment fetched.
        """
        self.stats.requests += 1
        now = self.clock.now()
        url = request.url

        template = self._templates.get(url)
        if template is None:
            self.stats.template_misses += 1
            parts, _ = self._capture(request)
            self._templates[url] = parts
            template = parts
            template_bytes = self.header_bytes
            for kind, value in parts:
                if kind == "lit":
                    template_bytes += len(value.encode("utf-8"))
                else:
                    template_bytes += ESI_TAG_OVERHEAD + len(value)
            self.stats.origin_payload_bytes += template_bytes
            from_cache = False
        else:
            self.stats.template_hits += 1
            from_cache = True

        html_parts: List[str] = []
        for kind, value in template:
            if kind == "lit":
                html_parts.append(value)
                continue
            cached = self._fragments.get(value)
            if cached is not None and cached.fresh(now):
                self.stats.fragment_hits += 1
                html_parts.append(cached.content)
                continue
            content = self._fetch_fragment(value, request)
            self.stats.fragments_fetched += 1
            self.stats.origin_payload_bytes += (
                len(content.encode("utf-8")) + self.header_bytes
            )
            html_parts.append(content)
        html = "".join(html_parts)
        self.stats.served_bytes += len(html.encode("utf-8")) + self.header_bytes
        return html, from_cache

    def template_count(self) -> int:
        """Number of URL templates cached at the edge."""
        return len(self._templates)

    def fragment_count(self) -> int:
        """Number of fragment bodies cached at the edge."""
        return len(self._fragments)
