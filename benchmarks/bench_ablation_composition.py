"""Ablation: page composition x popularity interaction (general model).

The paper's Table 1 defines per-page fragment sets E_i; its sweeps then
assume homogeneous pages.  This bench shows when that matters: with the
same fragment pool and the same design-time cacheability factor, putting
the cacheable content on the *popular* pages (vs the unpopular ones)
swings the realized savings dramatically under Zipf traffic.  The
traffic-weighted cacheability metric predicts the swing.
"""

from repro.analysis.heterogeneous import (
    Application,
    FragmentSpec,
    PageComposition,
)

HIT_RATIO = 0.9
NUM_PAGES = 10
FRAGS_PER_PAGE = 4
FRAG_SIZE = 1024.0


def build_app(cacheable_pages: set, alpha: float = 1.0) -> Application:
    """Pages in ``cacheable_pages`` get all-cacheable fragments."""
    fragments = []
    pages = []
    for p in range(NUM_PAGES):
        names = []
        for s in range(FRAGS_PER_PAGE):
            name = "p%d-f%d" % (p, s)
            fragments.append(
                FragmentSpec(name, FRAG_SIZE, cacheable=p in cacheable_pages)
            )
            names.append(name)
        pages.append(PageComposition("page%d" % p, tuple(names)))
    return Application(fragments, pages, zipf_alpha=alpha)


def test_composition_popularity_interaction(benchmark, report):
    half = NUM_PAGES // 2

    def compute():
        hot_cacheable = build_app(set(range(half)))          # popular half
        cold_cacheable = build_app(set(range(half, NUM_PAGES)))
        uniform_hot = build_app(set(range(half)), alpha=0.0)
        return [
            ("cacheable content on HOT pages", hot_cacheable),
            ("cacheable content on COLD pages", cold_cacheable),
            ("hot-cacheable, uniform traffic", uniform_hot),
        ]

    apps = benchmark(compute)

    report(
        "Ablation: where the cacheable content lives (design-time "
        "cacheability fixed at 50%)",
        ["configuration", "traffic-weighted cacheability",
         "savings %% @ h=%.1f" % HIT_RATIO],
        [
            [label,
             "%.3f" % app.traffic_weighted_cacheability(),
             "%.2f" % app.savings_percent(HIT_RATIO)]
            for label, app in apps
        ],
    )

    by_label = dict(apps)
    hot = by_label["cacheable content on HOT pages"]
    cold = by_label["cacheable content on COLD pages"]
    uniform = by_label["hot-cacheable, uniform traffic"]
    # Same pool-level cacheability everywhere...
    assert hot.cacheability_factor() == cold.cacheability_factor() == 0.5
    # ...but Zipf traffic makes placement worth tens of points.
    assert hot.savings_percent(HIT_RATIO) > cold.savings_percent(HIT_RATIO) + 20
    # Under uniform traffic, placement is irrelevant (sanity anchor).
    assert abs(uniform.savings_percent(HIT_RATIO)
               - (hot.savings_percent(HIT_RATIO)
                  + cold.savings_percent(HIT_RATIO)) / 2) < 1.0
    # The weighted-cacheability metric orders the configurations.
    assert (hot.traffic_weighted_cacheability()
            > uniform.traffic_weighted_cacheability()
            > cold.traffic_weighted_cacheability())
