"""Tests for the data-driven invalidation manager."""

import pytest

from repro.core.cache_directory import CacheDirectory
from repro.core.fragments import Dependency, FragmentID, FragmentMetadata
from repro.core.invalidation import InvalidationManager
from repro.database import Database, schema


def fid(name, **params):
    return FragmentID.create(name, params or None)


@pytest.fixture
def setup():
    db = Database()
    table = db.create_table(
        schema("products", [("pid", "str"), ("category", "str"), ("price", "float")])
    )
    directory = CacheDirectory(16)
    manager = InvalidationManager(directory)
    manager.attach(db.bus)
    return db, table, directory, manager


def cache(directory, manager, fragment_id, deps):
    directory.insert(fragment_id, FragmentMetadata(dependencies=deps), 10, 0.0)
    manager.watch(fragment_id, deps)


class TestRowLevel:
    def test_matching_update_invalidates(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("detail", pid="a"),
              (Dependency("products", key="a"),))
        table.update({"price": 2.0}, key="a")
        assert directory.lookup(fid("detail", pid="a"), 0.0) is None
        assert manager.fragments_invalidated == 1

    def test_other_row_update_spares_fragment(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        table.insert({"pid": "b", "category": "books", "price": 1.0})
        cache(directory, manager, fid("detail", pid="a"),
              (Dependency("products", key="a"),))
        table.update({"price": 9.0}, key="b")
        assert directory.lookup(fid("detail", pid="a"), 0.0) is not None

    def test_delete_invalidates(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("detail", pid="a"),
              (Dependency("products", key="a"),))
        table.delete(key="a")
        assert directory.lookup(fid("detail", pid="a"), 0.0) is None


class TestWhereFiltered:
    def test_category_scoped_dependency(self, setup):
        """The §3.2.1 brokerage story: only the matching category dies."""
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        table.insert({"pid": "t", "category": "toys", "price": 1.0})
        cache(directory, manager, fid("listing", cat="books"),
              (Dependency("products", where_column="category",
                          where_value="books"),))
        cache(directory, manager, fid("listing", cat="toys"),
              (Dependency("products", where_column="category",
                          where_value="toys"),))
        table.update({"price": 5.0}, key="a")  # a books row
        assert directory.lookup(fid("listing", cat="books"), 0.0) is None
        assert directory.lookup(fid("listing", cat="toys"), 0.0) is not None

    def test_insert_into_watched_category_invalidates(self, setup):
        db, table, directory, manager = setup
        cache(directory, manager, fid("listing", cat="books"),
              (Dependency("products", where_column="category",
                          where_value="books"),))
        table.insert({"pid": "new", "category": "books", "price": 1.0})
        assert directory.lookup(fid("listing", cat="books"), 0.0) is None


class TestHousekeeping:
    def test_watcher_removed_after_invalidation(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("f"), (Dependency("products"),))
        table.update({"price": 2.0}, key="a")
        assert manager.watched_count() == 0

    def test_stale_watcher_cleaned_lazily(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("f"), (Dependency("products"),))
        # Invalidate behind the manager's back (e.g. TTL/eviction).
        directory.invalidate(fid("f"))
        table.update({"price": 2.0}, key="a")  # event triggers cleanup
        assert manager.watched_count() == 0
        assert manager.fragments_invalidated == 0

    def test_unwatch(self, setup):
        db, table, directory, manager = setup
        cache(directory, manager, fid("f"), (Dependency("products"),))
        manager.unwatch(fid("f"))
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        assert directory.lookup(fid("f"), 0.0) is not None

    def test_detach_all(self, setup):
        db, table, directory, manager = setup
        cache(directory, manager, fid("f"), (Dependency("products"),))
        manager.detach_all()
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        assert manager.events_seen == 0

    def test_multiple_dependencies_any_match(self, setup):
        db, table, directory, manager = setup
        reviews = db.create_table(schema("reviews", [("rid", "str")]))
        deps = (Dependency("products", key="a"), Dependency("reviews"))
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("page"), deps)
        reviews.insert({"rid": "r1"})
        assert directory.lookup(fid("page"), 0.0) is None


class TestKeyedIndex:
    """The per-row watcher index must be invisible except in scan cost."""

    def test_row_keyed_watcher_hit_via_index(self, setup):
        db, table, directory, manager = setup
        for pid in ("a", "b", "c"):
            table.insert({"pid": pid, "category": "books", "price": 1.0})
            cache(directory, manager, fid("detail", pid=pid),
                  (Dependency("products", key=pid),))
        table.update({"price": 9.0}, key="b")
        assert directory.lookup(fid("detail", pid="a"), 0.0) is not None
        assert directory.lookup(fid("detail", pid="b"), 0.0) is None
        assert directory.lookup(fid("detail", pid="c"), 0.0) is not None
        assert manager.fragments_invalidated == 1

    def test_watcher_keyed_to_two_rows_matches_either(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        table.insert({"pid": "b", "category": "books", "price": 1.0})
        deps = (Dependency("products", key="a"),
                Dependency("products", key="b"))
        cache(directory, manager, fid("pair"), deps)
        table.update({"price": 2.0}, key="b")
        assert directory.lookup(fid("pair"), 0.0) is None
        assert manager.watched_count() == 0

    def test_mixed_keyed_and_unkeyed_dependencies(self, setup):
        db, table, directory, manager = setup
        reviews = db.create_table(schema("reviews", [("rid", "str")]))
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        deps = (Dependency("products", key="a"), Dependency("reviews"))
        cache(directory, manager, fid("page"), deps)
        # An event on an unrelated products row must not invalidate.
        table.insert({"pid": "z", "category": "toys", "price": 1.0})
        assert directory.lookup(fid("page"), 0.0) is not None
        # But the keyed row does.
        table.update({"price": 2.0}, key="a")
        assert directory.lookup(fid("page"), 0.0) is None

    def test_unwatch_clears_index(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        cache(directory, manager, fid("detail", pid="a"),
              (Dependency("products", key="a"),))
        manager.unwatch(fid("detail", pid="a"))
        table.update({"price": 2.0}, key="a")
        assert manager.fragments_invalidated == 0
        assert directory.lookup(fid("detail", pid="a"), 0.0) is not None

    def test_rewatch_after_invalidation(self, setup):
        db, table, directory, manager = setup
        table.insert({"pid": "a", "category": "books", "price": 1.0})
        for price in (2.0, 3.0):
            cache(directory, manager, fid("detail", pid="a"),
                  (Dependency("products", key="a"),))
            table.update({"price": price}, key="a")
            assert directory.lookup(fid("detail", pid="a"), 0.0) is None
        assert manager.fragments_invalidated == 2
