"""Property: DPC-assembled pages byte-equal the uncached oracle
(invariant 1 — the paper's central correctness claim), under arbitrary
request interleavings, users, and data churn."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books
from repro.sites.synthetic import SyntheticParams, build_server as build_synth
from repro.sites.synthetic import build_services as build_synth_services
from repro.sites.synthetic import touch_fragment

# ---------------------------------------------------------------------------
# Synthetic site: requests interleaved with source-data updates.
# ---------------------------------------------------------------------------

synthetic_events = st.lists(
    st.one_of(
        st.tuples(st.just("request"), st.integers(0, 9)),
        st.tuples(st.just("touch"), st.integers(0, 39)),
        st.tuples(st.just("tick"), st.floats(0.1, 30.0)),
    ),
    max_size=40,
)


@given(synthetic_events)
@settings(max_examples=60, deadline=None)
def test_synthetic_assembly_always_correct(events):
    params = SyntheticParams(fragment_size=64)
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=64, clock=clock)
    services = build_synth_services(params)
    server = build_synth(params, services=services, clock=clock, bem=bem,
                         cost_model=FREE)
    bem.attach_database(services.db.bus)
    dpc = DynamicProxyCache(capacity=64)

    for kind, value in events:
        if kind == "request":
            request = HttpRequest("/page.jsp", {"pageID": str(value)})
            oracle = server.render_reference_page(request)
            page = dpc.process_response(server.handle(request).body)
            assert page.html == oracle
        elif kind == "touch":
            touch_fragment(services, value)
        else:
            clock.advance(value)


# ---------------------------------------------------------------------------
# BooksOnline: users with different identities and layouts.
# ---------------------------------------------------------------------------

book_requests = st.lists(
    st.tuples(
        st.sampled_from(["/catalog.jsp", "/home.jsp", "/product.jsp"]),
        st.sampled_from(["Fiction", "Science", "History"]),
        st.sampled_from([None, "user000", "user001", "user002"]),
    ),
    min_size=1,
    max_size=15,
)


@given(book_requests)
@settings(max_examples=30, deadline=None)
def test_books_assembly_correct_across_users(specs):
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=256, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=256)

    for path, category, user in specs:
        if path == "/product.jsp":
            params = {"productID": "FIC-000"}
        elif path == "/catalog.jsp":
            params = {"categoryID": category}
        else:
            params = {}
        request = HttpRequest(
            path, params, user_id=user,
            session_id="sess-%s" % (user or "anon"),
        )
        oracle = server.render_reference_page(request)
        page = dpc.process_response(server.handle(request).body)
        assert page.html == oracle
