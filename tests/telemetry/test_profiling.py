"""@profiled: opt-in wall-clock measurement into a registry."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import (
    disable_profiling,
    enable_profiling,
    profiled,
    profiling_enabled,
    sanitize_label,
)


@pytest.fixture(autouse=True)
def clean_profiling_state():
    disable_profiling()
    yield
    disable_profiling()


class TestSanitizeLabel:
    def test_qualname_folding(self):
        assert sanitize_label("Testbed.run") == "testbed.run"
        assert sanitize_label("main.<locals>.helper") == "main._locals_.helper"

    def test_strip_and_fallback(self):
        assert sanitize_label("..weird..") == "weird"
        assert sanitize_label("???") == "anonymous"


class TestProfiled:
    def test_disabled_is_pass_through(self):
        @profiled
        def double(x):
            return 2 * x

        assert not profiling_enabled()
        assert double(4) == 8

    def test_enabled_records_calls_and_wall_time(self):
        registry = MetricsRegistry()

        @profiled(label="bench.double")
        def double(x):
            return 2 * x

        enable_profiling(registry)
        assert profiling_enabled()
        for i in range(3):
            assert double(i) == 2 * i
        rows = dict(registry.collect())
        assert rows["profile.bench.double.calls"] == 3
        assert rows["profile.bench.double.wall_s.count"] == 3
        assert rows["profile.bench.double.wall_s.sum"] >= 0.0

    def test_bare_decorator_uses_qualname(self):
        @profiled
        def helper():
            return 1

        assert helper.__profiled_label__.endswith("helper")
        assert helper.__name__ == "helper"

    def test_records_even_when_the_function_raises(self):
        registry = MetricsRegistry()

        @profiled(label="bench.boom")
        def boom():
            raise ValueError("no")

        enable_profiling(registry)
        with pytest.raises(ValueError):
            boom()
        assert dict(registry.collect())["profile.bench.boom.calls"] == 1

    def test_disable_stops_recording(self):
        registry = MetricsRegistry()

        @profiled(label="bench.quiet")
        def quiet():
            return 0

        enable_profiling(registry)
        quiet()
        disable_profiling()
        quiet()
        assert dict(registry.collect())["profile.bench.quiet.calls"] == 1
