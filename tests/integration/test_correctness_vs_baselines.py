"""Integration: the Section 3 comparison — DPC correct where baselines fail.

Quantifies invariant 6: over a mixed registered/anonymous workload against
BooksOnline, the page-level cache and the ESI assembler serve wrong pages;
the DPC and the back-end cache never do.
"""

import random

import pytest

from repro.appserver import HttpRequest
from repro.baselines.esi import EsiAssembler
from repro.baselines.page_cache import PageLevelCache
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


def mixed_workload(count=60, seed=4):
    """Registered and anonymous visitors hitting the same URLs."""
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        category = rng.choice(["Fiction", "Science", "History"])
        if rng.random() < 0.5:
            user = "user%03d" % rng.randrange(5)
            requests.append(
                HttpRequest("/catalog.jsp", {"categoryID": category},
                            user_id=user, session_id="sess-%s" % user)
            )
        else:
            requests.append(
                HttpRequest("/catalog.jsp", {"categoryID": category},
                            session_id="anon-%d" % rng.randrange(8))
            )
    return requests


class TestWrongPageRates:
    def test_page_cache_serves_wrong_pages(self):
        clock = SimulatedClock()
        server = books.build_server(clock=clock, cost_model=FREE)
        cache = PageLevelCache(clock, ttl_s=600.0)
        wrong = 0
        for request in mixed_workload():
            served, _ = cache.serve(request, server.handle)
            if served.body != server.render_reference_page(request):
                wrong += 1
        assert wrong > 0  # the paper's complaint, quantified
        assert cache.stats.hits > 0

    def test_esi_serves_wrong_pages(self):
        server = books.build_server(cost_model=FREE)
        esi = EsiAssembler(server)
        wrong = 0
        for request in mixed_workload():
            html, _ = esi.serve(request)
            if html != server.render_reference_page(request):
                wrong += 1
        assert wrong > 0

    def test_dpc_never_serves_wrong_pages(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=512, clock=clock)
        server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=512)
        for request in mixed_workload():
            page = dpc.process_response(server.handle(request).body)
            assert page.html == server.render_reference_page(request)
        assert bem.stats.fragment_hits > 0  # and it actually cached things


class TestReuseContrast:
    def test_dpc_reuses_where_page_cache_cannot(self):
        """Personalized pages: URL-level reuse is unsafe, fragment-level
        reuse is abundant (navbar, listings shared across all users)."""
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=512, clock=clock)
        server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
        bem.attach_database(server.services.db.bus)
        dpc = DynamicProxyCache(capacity=512)

        # 6 different registered users, same URL.
        for i in range(6):
            request = HttpRequest(
                "/catalog.jsp", {"categoryID": "Fiction"},
                user_id="user%03d" % i, session_id="s%d" % i,
            )
            dpc.process_response(server.handle(request).body)
        # navbar + category listing + promos hit for users 2..6.
        assert bem.hit_ratio > 0.4

    def test_page_cache_full_pages_unique_per_user(self):
        clock = SimulatedClock()
        server = books.build_server(clock=clock, cost_model=FREE)
        bodies = set()
        for i in range(6):
            request = HttpRequest(
                "/catalog.jsp", {"categoryID": "Fiction"},
                user_id="user%03d" % i, session_id="s%d" % i,
            )
            bodies.add(server.handle(request).body)
        assert len(bodies) == 6  # nothing for a URL-keyed cache to reuse
