"""InsightLayer: fan-out, attachment wiring, and live end-to-end feeds."""

import pytest

from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.insight import CONTENT_INVALIDATION_REASONS, InsightLayer
from repro.network.clock import SimulatedClock


class TestFanOut:
    def test_content_reasons_reach_the_profiler(self):
        layer = InsightLayer()
        layer.record_access("f", hit=False)
        for reason in CONTENT_INVALIDATION_REASONS:
            layer.record_removal("f", reason)
        assert layer.profiler.accesses == 1
        # All three invalidations registered in place (one stale mark).
        layer.record_access("f", hit=False)
        assert layer.profiler.stale_misses == 1

    def test_capacity_eviction_is_not_a_profiler_event(self):
        layer = InsightLayer(keep_events=True)
        layer.record_access("f", hit=False)
        layer.record_removal("f", "evicted_capacity")
        assert layer.profiler.events == [("access", "f")]
        assert layer.ledger._pending["f"] == "evicted_capacity"

    def test_profile_false_disables_the_profiler(self):
        layer = InsightLayer(profile=False)
        assert layer.profiler is None
        layer.record_access("f", hit=False)
        layer.record_removal("f", "ttl_expired")
        assert layer.ledger.misses == 1

    def test_eviction_diagnostics_accumulate(self):
        layer = InsightLayer()
        layer.record_eviction("lru", idle_s=4.0, hits=2, size_bytes=100)
        layer.record_eviction("lru", idle_s=6.0, hits=0, size_bytes=50)
        assert layer.eviction_victims == 2
        assert layer.mean_eviction_idle_s() == pytest.approx(5.0)
        assert layer.eviction_bytes_total == 150

    def test_mean_idle_zero_when_no_victims(self):
        assert InsightLayer().mean_eviction_idle_s() == 0.0


class TestAttachment:
    def test_attach_returns_self_and_wires_directory(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        layer = InsightLayer().attach(bem=bem)
        assert bem.directory.insight is layer

    def test_dpc_wipe_hook(self):
        dpc = DynamicProxyCache(capacity=8)
        layer = InsightLayer().attach(dpc=dpc)
        dpc.clear()
        dpc.clear()
        assert layer.dpc_wipes == 2

    def test_metric_rows_are_canonical_and_complete(self):
        from repro.telemetry.naming import METRIC_NAMES

        layer = InsightLayer()
        names = [name for name, _ in layer.metric_rows()]
        for name in names:
            assert name in METRIC_NAMES, name
        assert "insight.eviction.victims" in names
        assert "insight.dpc.wipes" in names
        assert "insight.mattson.accesses" in names


class TestLiveDirectoryFeed:
    """The directory hooks feed the layer without changing behavior."""

    def build(self, capacity=4):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=capacity, clock=clock)
        layer = InsightLayer(keep_events=True).attach(bem=bem)
        return clock, bem, layer

    def frag(self, bem, index, ttl=None):
        from repro.core.fragments import FragmentID
        from repro.core.tagging import FragmentMetadata

        fid = FragmentID.create("frag", {"id": index})
        metadata = FragmentMetadata(ttl=ttl)
        bem.process_block(fid, metadata, lambda: "x" * 16)
        return fid.canonical()

    def test_cold_then_hit_then_eviction(self):
        clock, bem, layer = self.build(capacity=2)
        self.frag(bem, 1)
        self.frag(bem, 1)
        assert layer.ledger.hits == 1
        assert layer.ledger.counts["cold"] == 1
        # Two more distinct fragments force an eviction at capacity 2.
        self.frag(bem, 2)
        self.frag(bem, 3)
        assert layer.eviction_victims == 1
        self.frag(bem, 1)  # victim was LRU frag 1 -> evicted_capacity miss
        assert layer.ledger.counts["evicted_capacity"] == 1
        layer.check_invariants(bem.directory)

    def test_ttl_expiry_attributed(self):
        clock, bem, layer = self.build()
        self.frag(bem, 1, ttl=1.0)
        clock.advance(5.0)
        self.frag(bem, 1, ttl=1.0)
        assert layer.ledger.counts["ttl_expired"] == 1
        layer.check_invariants(bem.directory)
