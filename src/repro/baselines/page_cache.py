"""Baseline: page-level proxy caching (§3.2.1).

"Page level caching solutions must rely on the request URL to identify
pages in cache" — so Bob's personalized page is happily served to Alice,
and hit ratios crater on personalized sites because every page instance is
unique.  This implementation is faithful to that design: the cache key is
the URL and *only* the URL, with an LRU eviction and a fixed TTL, exactly
like a 2002 reverse-proxy appliance in front of a dynamic site.

Used by the comparison benches to quantify the two failure modes the paper
describes: incorrect pages served, and low reuse.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..appserver.http import HttpRequest, HttpResponse
from ..errors import ConfigurationError
from ..network.clock import SimulatedClock


@dataclass
class PageCacheStats:
    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    origin_bytes: int = 0     # payload bytes fetched from the origin
    served_bytes: int = 0     # payload bytes delivered to clients

    @property
    def hit_ratio(self) -> float:
        """Requests served from cache, as a fraction."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


@dataclass
class _CachedPage:
    body: str
    header_bytes: int
    stored_at: float


class PageLevelCache:
    """URL-keyed full-page cache with LRU eviction and TTL expiry."""

    def __init__(
        self,
        clock: SimulatedClock,
        capacity: int = 256,
        ttl_s: Optional[float] = 60.0,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError("ttl must be positive when given")
        self.clock = clock
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._pages: "OrderedDict[str, _CachedPage]" = OrderedDict()
        self.stats = PageCacheStats()

    def serve(
        self,
        request: HttpRequest,
        origin: Callable[[HttpRequest], HttpResponse],
    ) -> Tuple[HttpResponse, bool]:
        """Serve a request, consulting the cache by URL.

        Returns ``(response, from_cache)``.  The response returned on a hit
        is whatever was cached for this URL — which may have been generated
        for a *different user*.  That is the point.
        """
        self.stats.requests += 1
        now = self.clock.now()
        url = request.url

        cached = self._pages.get(url)
        if cached is not None:
            if self.ttl_s is not None and now - cached.stored_at >= self.ttl_s:
                self.stats.expirations += 1
                del self._pages[url]
            else:
                self._pages.move_to_end(url)
                self.stats.hits += 1
                response = HttpResponse(
                    body=cached.body,
                    header_bytes=cached.header_bytes,
                    meta={"from_cache": True, "url": url},
                )
                self.stats.served_bytes += response.payload_bytes
                return response, True

        self.stats.misses += 1
        response = origin(request)
        self.stats.origin_bytes += response.payload_bytes
        self.stats.served_bytes += response.payload_bytes
        self._store(url, response, now)
        response.meta["from_cache"] = False
        return response, False

    def _store(self, url: str, response: HttpResponse, now: float) -> None:
        if url in self._pages:
            self._pages.move_to_end(url)
        self._pages[url] = _CachedPage(
            body=response.body, header_bytes=response.header_bytes, stored_at=now
        )
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_url(self, url: str) -> bool:
        """Drop the cached page for one URL; True if present."""
        return self._pages.pop(url, None) is not None

    def invalidate_all(self) -> int:
        """Page-level invalidation is all-or-nothing per URL; when source
        data changes and the operator cannot map it to URLs, the safe move
        is a full flush — the over-invalidation §3.2.1 complains about."""
        count = len(self._pages)
        self._pages.clear()
        return count

    def __len__(self) -> int:
        return len(self._pages)
