"""User profiles: the source of dynamic layout and personalized content.

Section 2.1's motivating example: registered users have a profile that
"specifies the user's content preferences and allows him to control the
layout of the page", while non-registered visitors get a default layout.
The *same URL* therefore produces different pages for different users — the
core reason URL-keyed proxy caches serve wrong pages.

Profiles are stored in the DBMS (they are data like any other), so profile
edits also flow through triggers and can invalidate the fragments derived
from them (the Personal Greeting, Recommended Products, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..database import Database, schema
from ..errors import UnknownUserError

PROFILE_TABLE = "user_profiles"

#: Layout slots a registered user can reorder.  The default layout (used for
#: non-registered visitors) is this exact order.
DEFAULT_LAYOUT = ("navigation", "greeting", "main", "recommendations", "promos")

_PROFILE_SCHEMA = schema(
    PROFILE_TABLE,
    [
        ("user_id", "str"),
        ("display_name", "str"),
        ("preferred_categories", "str"),  # comma-separated category ids
        ("layout_order", "str"),          # comma-separated slot names
        ("show_promos", "bool"),
    ],
    primary_key="user_id",
)


@dataclass(frozen=True)
class Profile:
    """An immutable view of one registered user's preferences."""

    user_id: str
    display_name: str
    preferred_categories: tuple
    layout_order: tuple
    show_promos: bool

    @property
    def registered(self) -> bool:
        """Always True: this is a registered user's profile."""
        return True


@dataclass(frozen=True)
class AnonymousProfile:
    """The profile stand-in for a non-registered visitor."""

    user_id: str = ""
    display_name: str = ""
    preferred_categories: tuple = ()
    layout_order: tuple = DEFAULT_LAYOUT
    show_promos: bool = True

    @property
    def registered(self) -> bool:
        """Always False: the default anonymous experience."""
        return False


ANONYMOUS = AnonymousProfile()


class ProfileStore:
    """CRUD over registered-user profiles, DBMS-backed."""

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.has_table(PROFILE_TABLE):
            db.create_table(_PROFILE_SCHEMA)
        self._table = db.table(PROFILE_TABLE)

    def register(
        self,
        user_id: str,
        display_name: str,
        preferred_categories: Optional[List[str]] = None,
        layout_order: Optional[List[str]] = None,
        show_promos: bool = True,
    ) -> Profile:
        """Create a profile for a new registered user."""
        categories = list(preferred_categories or [])
        layout = list(layout_order or DEFAULT_LAYOUT)
        for slot in layout:
            if slot not in DEFAULT_LAYOUT:
                raise UnknownUserError(
                    "layout slot %r is not one of %s" % (slot, DEFAULT_LAYOUT)
                )
        self._table.insert(
            {
                "user_id": user_id,
                "display_name": display_name,
                "preferred_categories": ",".join(categories),
                "layout_order": ",".join(layout),
                "show_promos": show_promos,
            }
        )
        return self.get(user_id)

    def get(self, user_id: str) -> Profile:
        """Profile for a registered user; raises if unknown."""
        row = self._table.get(user_id)
        if row is None:
            raise UnknownUserError("no registered user %r" % user_id)
        return _profile_from_row(row)

    def lookup(self, user_id: Optional[str]):
        """Profile for a user id, or :data:`ANONYMOUS` for None/unknown.

        This mirrors the login check a site performs on every request: an
        unknown or absent user id silently falls back to the default
        experience rather than failing.
        """
        if not user_id:
            return ANONYMOUS
        row = self._table.get(user_id)
        if row is None:
            return ANONYMOUS
        return _profile_from_row(row)

    def set_layout(self, user_id: str, layout_order: List[str]) -> None:
        """Let a registered user reorder their page (dynamic layout!)."""
        self.get(user_id)  # raises if unknown
        for slot in layout_order:
            if slot not in DEFAULT_LAYOUT:
                raise UnknownUserError(
                    "layout slot %r is not one of %s" % (slot, DEFAULT_LAYOUT)
                )
        self._table.update({"layout_order": ",".join(layout_order)}, key=user_id)

    def set_preferences(self, user_id: str, preferred_categories: List[str]) -> None:
        """Replace a user's preferred content categories."""
        self.get(user_id)
        self._table.update(
            {"preferred_categories": ",".join(preferred_categories)}, key=user_id
        )

    def user_ids(self) -> List[str]:
        """All registered user ids."""
        return [str(key) for key in self._table.keys()]

    def __len__(self) -> int:
        return len(self._table)


def _profile_from_row(row: Dict[str, object]) -> Profile:
    categories = str(row["preferred_categories"])
    layout = str(row["layout_order"])
    return Profile(
        user_id=str(row["user_id"]),
        display_name=str(row["display_name"]),
        preferred_categories=tuple(c for c in categories.split(",") if c),
        layout_order=tuple(s for s in layout.split(",") if s) or DEFAULT_LAYOUT,
        show_promos=bool(row["show_promos"]),
    )
