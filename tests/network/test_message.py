"""Tests for wire messages and the TCP/IP overhead model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.message import (
    DEFAULT_HEADER_BYTES,
    DEFAULT_MSS,
    ProtocolOverheadModel,
    WireMessage,
    request_message,
    response_message,
)


class TestProtocolOverheadModel:
    def test_defaults_match_ethernet_tcp_ip(self):
        model = ProtocolOverheadModel()
        assert model.mss == 1460
        assert model.header_bytes == 40

    def test_zero_payload_still_costs_one_packet(self):
        model = ProtocolOverheadModel()
        assert model.packets_for(0) == 1
        assert model.wire_bytes_for(0) == (
            DEFAULT_HEADER_BYTES + model.per_message_bytes
        )

    def test_one_byte_payload(self):
        model = ProtocolOverheadModel()
        assert model.packets_for(1) == 1
        assert model.wire_bytes_for(1) == 1 + 40 + 120

    def test_exact_mss_boundary(self):
        model = ProtocolOverheadModel()
        assert model.packets_for(DEFAULT_MSS) == 1
        assert model.packets_for(DEFAULT_MSS + 1) == 2

    def test_multi_packet_wire_bytes(self):
        model = ProtocolOverheadModel()
        payload = 3 * DEFAULT_MSS + 10  # 4 packets
        assert model.wire_bytes_for(payload) == payload + 4 * 40 + 120

    def test_disabled_model_counts_payload_only(self):
        model = ProtocolOverheadModel(enabled=False)
        assert model.packets_for(5000) == 0
        assert model.wire_bytes_for(5000) == 5000

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolOverheadModel().packets_for(-1)

    def test_invalid_mss_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolOverheadModel(mss=0)

    def test_negative_header_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolOverheadModel(header_bytes=-1)

    def test_negative_per_message_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolOverheadModel(per_message_bytes=-1)

    def test_overhead_grows_relatively_for_small_payloads(self):
        """The §6 observation: 'the smaller the response, the greater this
        overhead is' — relative overhead shrinks as payloads grow."""
        model = ProtocolOverheadModel()
        small = model.wire_bytes_for(100) / 100
        large = model.wire_bytes_for(100_000) / 100_000
        assert small > large


class TestWireMessage:
    def test_kind_validation(self):
        with pytest.raises(ConfigurationError):
            WireMessage(kind="ack", payload_bytes=0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            WireMessage(kind="request", payload_bytes=-5)

    def test_wire_bytes_uses_model(self):
        message = WireMessage(kind="response", payload_bytes=2000)
        assert message.wire_bytes(ProtocolOverheadModel()) == 2000 + 2 * 40 + 120
        assert message.wire_bytes(ProtocolOverheadModel(enabled=False)) == 2000

    def test_request_helper(self):
        message = request_message(120, source="a", destination="b", page="/x")
        assert message.kind == "request"
        assert message.source == "a"
        assert message.meta["page"] == "/x"

    def test_response_helper(self):
        message = response_message(500)
        assert message.kind == "response"
        assert message.payload_bytes == 500

    def test_packets_delegates_to_model(self):
        """WireMessage.packets is the same arithmetic as the model's."""
        model = ProtocolOverheadModel()
        message = response_message(3 * DEFAULT_MSS + 1)
        assert message.packets(model) == model.packets_for(3 * DEFAULT_MSS + 1)
        assert message.packets(model) == 4

    def test_empty_message_still_one_packet(self):
        """The zero-payload edge is encoded once, in the model."""
        model = ProtocolOverheadModel()
        message = request_message(0)
        assert message.packets(model) == 1
        assert message.wire_bytes(model) == model.wire_bytes_for(0)

    def test_packets_disabled_model(self):
        message = response_message(5000)
        assert message.packets(ProtocolOverheadModel(enabled=False)) == 0

    def test_slots_no_instance_dict(self):
        """Hot-path messages stay dict-free (one per send on the serve path)."""
        message = response_message(10)
        assert not hasattr(message, "__dict__")
        with pytest.raises(AttributeError):
            message.unknown_attribute = 1

    def test_trace_stays_assignable(self):
        """Channels stamp trace context after construction."""
        message = response_message(10)
        assert message.trace is None
        message.trace = object()
        assert message.trace is not None

    def test_equality_by_fields(self):
        assert request_message(5, page="/x") == request_message(5, page="/x")
        assert request_message(5) != request_message(6)
