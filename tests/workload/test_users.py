"""Tests for the visitor population."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.users import UserPopulation, Visitor, split_counts


class TestUserPopulation:
    def test_registered_fraction_respected(self):
        population = UserPopulation(
            ["u%d" % i for i in range(10)], registered_fraction=0.7
        )
        visitors = population.draw_many(random.Random(5), 5000)
        registered, anonymous = split_counts(visitors)
        assert registered / 5000 == pytest.approx(0.7, abs=0.03)

    def test_all_anonymous(self):
        population = UserPopulation([], registered_fraction=0.0)
        visitors = population.draw_many(random.Random(1), 100)
        assert all(not visitor.registered for visitor in visitors)

    def test_all_registered(self):
        population = UserPopulation(["a", "b"], registered_fraction=1.0)
        visitors = population.draw_many(random.Random(1), 100)
        assert all(visitor.registered for visitor in visitors)

    def test_registered_without_users_rejected(self):
        with pytest.raises(ConfigurationError):
            UserPopulation([], registered_fraction=0.5)

    def test_user_sessions_are_stable(self):
        population = UserPopulation(["bob"], registered_fraction=1.0)
        a = population.draw(random.Random(1))
        b = population.draw(random.Random(2))
        assert a.session_id == b.session_id == "sess-bob"

    def test_anonymous_sessions_rotate_within_pool(self):
        population = UserPopulation([], registered_fraction=0.0,
                                    anonymous_sessions=3)
        sessions = {
            population.draw(random.Random(seed)).session_id for seed in range(50)
        }
        assert len(sessions) <= 3

    def test_user_popularity_is_skewed(self):
        population = UserPopulation(
            ["u%d" % i for i in range(20)], registered_fraction=1.0, user_alpha=1.0
        )
        rng = random.Random(11)
        counts = {}
        for _ in range(5000):
            visitor = population.draw(rng)
            counts[visitor.user_id] = counts.get(visitor.user_id, 0) + 1
        assert counts["u0"] > counts.get("u19", 0) * 3

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            UserPopulation(["a"], registered_fraction=1.5)

    def test_invalid_anonymous_pool(self):
        with pytest.raises(ConfigurationError):
            UserPopulation([], registered_fraction=0.0, anonymous_sessions=0)


class TestVisitor:
    def test_registered_property(self):
        assert Visitor(user_id="bob", session_id="s").registered
        assert not Visitor(user_id=None, session_id="s").registered

    def test_split_counts(self):
        visitors = [
            Visitor("a", "s1"),
            Visitor(None, "s2"),
            Visitor("b", "s3"),
        ]
        assert split_counts(visitors) == (2, 1)
