"""The Section 3 comparison systems, implemented with their real flaws.

* :class:`PageLevelCache` — URL-keyed full-page proxy (serves wrong pages
  to personalized users; low reuse).
* :class:`EsiAssembler` — dynamic page assembly (fixed template per URL;
  fails on dynamic layouts; zero origin bytes when its preconditions hold).
* :class:`BackendFragmentCache` — back-end fragment cache (always correct,
  saves computation, saves no bandwidth).
"""

from .backend_cache import BackendCacheStats, BackendFragmentCache
from .esi import ESI_TAG_OVERHEAD, EsiAssembler, EsiStats
from .page_cache import PageCacheStats, PageLevelCache

__all__ = [
    "PageLevelCache",
    "PageCacheStats",
    "EsiAssembler",
    "EsiStats",
    "ESI_TAG_OVERHEAD",
    "BackendFragmentCache",
    "BackendCacheStats",
]
