"""HTTP-like messages and their on-the-wire packetization.

The paper measures bandwidth with a Sniffer on the link between the Origin
Site machine and the External machine (Figure 4).  The Sniffer sees *wire*
bytes: the HTTP payload plus TCP/IP protocol headers for every packet.  The
difference between the analytical model (payload only) and the experimental
curves (wire bytes) in Figures 3(b), 5 and 6 is exactly this protocol
overhead, so the message model here is byte-exact about it.

A :class:`WireMessage` carries an application payload of a known size.  When
it is transmitted over a :class:`~repro.network.channel.Channel` it is split
into packets of at most ``mss`` payload bytes, each charged ``header_bytes``
of TCP/IP header (20 B TCP + 20 B IP by default).  Empty messages (e.g. pure
ACKs are not modeled) still cost one packet.

Packetization is *analytic*: packet counts and wire bytes are integer
arithmetic on the payload size — no per-packet objects are ever built.
:meth:`ProtocolOverheadModel.packets_for` is the single source of truth;
:meth:`WireMessage.packets`, :meth:`WireMessage.wire_bytes`, the Channel's
transfer-time charge, and the Sniffer's counters all delegate to it, so the
empty-message one-packet edge case is encoded exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError

#: Default maximum segment size, matching Ethernet's 1500-byte MTU minus
#: 40 bytes of TCP/IP headers.
DEFAULT_MSS = 1460

#: Default per-packet TCP/IP header cost (20 B TCP + 20 B IP, no options).
DEFAULT_HEADER_BYTES = 40

#: Default per-message (per-HTTP-exchange) connection overhead: 2002-era
#: servers commonly used non-persistent connections, so every response
#: drags along SYN/SYN-ACK/FIN segments and ACK traffic — roughly three
#: bare 40-byte TCP/IP headers.  This constant term is what makes protocol
#: overhead *relatively* larger for small responses, the effect behind the
#: analytical/experimental gaps in the paper's Figures 3(b), 5 and 6.
DEFAULT_PER_MESSAGE_BYTES = 120


@dataclass(frozen=True)
class ProtocolOverheadModel:
    """Parameters describing per-packet and per-message protocol overhead.

    ``enabled=False`` turns the model into a pure payload counter, which is
    what the paper's *analytical* expressions assume.  The experimental
    testbed runs with ``enabled=True``.
    """

    mss: int = DEFAULT_MSS
    header_bytes: int = DEFAULT_HEADER_BYTES
    per_message_bytes: int = DEFAULT_PER_MESSAGE_BYTES
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ConfigurationError("mss must be positive")
        if self.header_bytes < 0:
            raise ConfigurationError("header_bytes cannot be negative")
        if self.per_message_bytes < 0:
            raise ConfigurationError("per_message_bytes cannot be negative")

    def packets_for(self, payload_bytes: int) -> int:
        """Number of packets needed to carry ``payload_bytes``.

        A zero-byte payload still needs one packet: even an empty HTTP
        response occupies at least one TCP segment on the wire.  Computed
        as exact integer ceiling division — payloads are never enumerated
        packet by packet.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes cannot be negative")
        if not self.enabled:
            return 0
        if payload_bytes == 0:
            return 1
        return -(-payload_bytes // self.mss)

    def wire_bytes_for(self, payload_bytes: int) -> int:
        """Total wire bytes for one message: payload + per-packet headers
        + the per-message connection overhead."""
        if not self.enabled:
            return payload_bytes
        return (
            payload_bytes
            + self.packets_for(payload_bytes) * self.header_bytes
            + self.per_message_bytes
        )


class WireMessage:
    """An application-level message with a measurable payload size.

    ``kind`` distinguishes requests from responses (the Sniffer reports them
    separately); ``meta`` carries free-form annotations used by experiments
    (e.g. which page the response belongs to, whether it was a template or a
    full page).

    The class is ``__slots__``-based: one instance is built per send on the
    hot serve path, and slot storage keeps that allocation dict-free.
    """

    __slots__ = ("kind", "payload_bytes", "source", "destination", "meta", "trace")

    def __init__(
        self,
        kind: str,
        payload_bytes: int,
        source: str = "",
        destination: str = "",
        meta: Optional[Dict[str, object]] = None,
        trace: Optional[object] = None,
    ) -> None:
        if kind not in ("request", "response"):
            raise ConfigurationError(
                "message kind must be 'request' or 'response', got %r" % kind
            )
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes cannot be negative")
        self.kind = kind
        self.payload_bytes = payload_bytes
        self.source = source
        self.destination = destination
        #: Free-form experiment annotations; always a fresh dict per message.
        self.meta: Dict[str, object] = {} if meta is None else meta
        #: Trace context (:class:`repro.telemetry.TraceContext`) stamped by
        #: the sending channel when tracing is enabled; ``None`` otherwise.
        self.trace = trace

    def packets(self, overhead: Optional[ProtocolOverheadModel] = None) -> int:
        """Packets this message occupies on a link under an overhead model.

        Delegates to :meth:`ProtocolOverheadModel.packets_for` — the single
        place the packetization arithmetic (including the zero-payload
        one-packet edge) lives.
        """
        model = overhead if overhead is not None else ProtocolOverheadModel()
        return model.packets_for(self.payload_bytes)

    def wire_bytes(self, overhead: Optional[ProtocolOverheadModel] = None) -> int:
        """Bytes this message occupies on a link under an overhead model."""
        model = overhead if overhead is not None else ProtocolOverheadModel()
        return model.wire_bytes_for(self.payload_bytes)

    def __eq__(self, other: object) -> bool:
        if type(other) is not WireMessage:
            return NotImplemented
        return (
            self.kind == other.kind
            and self.payload_bytes == other.payload_bytes
            and self.source == other.source
            and self.destination == other.destination
            and self.meta == other.meta
            and self.trace == other.trace
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "WireMessage(kind=%r, payload_bytes=%d, source=%r, destination=%r)" % (
            self.kind,
            self.payload_bytes,
            self.source,
            self.destination,
        )


def request_message(
    payload_bytes: int,
    source: str = "client",
    destination: str = "origin",
    **meta: object,
) -> WireMessage:
    """Convenience constructor for a request message."""
    return WireMessage(
        kind="request",
        payload_bytes=payload_bytes,
        source=source,
        destination=destination,
        meta=meta,
    )


def response_message(
    payload_bytes: int,
    source: str = "origin",
    destination: str = "client",
    **meta: object,
) -> WireMessage:
    """Convenience constructor for a response message."""
    return WireMessage(
        kind="response",
        payload_bytes=payload_bytes,
        source=source,
        destination=destination,
        meta=meta,
    )
