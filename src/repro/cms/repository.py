"""Content repository backed by the relational engine.

Figure 1's workflow is JSP -> Servlet -> CMS -> DBMS: the content management
system runs personalization logic and *requests data from the DBMS*.  This
repository does the same — content items live in database tables, so updates
to them flow through the trigger bus and can invalidate cached fragments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..database import Database, schema
from ..errors import ContentNotFound

CONTENT_TABLE = "cms_content"

_CONTENT_SCHEMA = schema(
    CONTENT_TABLE,
    [
        ("content_id", "str"),
        ("kind", "str"),        # e.g. 'article', 'promo', 'headline'
        ("category", "str"),    # grouping key used by category pages
        ("title", "str"),
        ("body", "str"),
        ("rank", "int"),        # display ordering within a category
        ("updated_at", "float"),
    ],
    primary_key="content_id",
)


class ContentRepository:
    """CRUD over content items, with category-indexed retrieval.

    The repository owns its table inside a caller-provided
    :class:`~repro.database.Database`, so multiple subsystems (catalog,
    news, promos) can share one DBMS exactly as a real site would.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.has_table(CONTENT_TABLE):
            table = db.create_table(_CONTENT_SCHEMA)
            table.create_index("category")
            table.create_index("kind")
        self._table = db.table(CONTENT_TABLE)

    # -- writes -----------------------------------------------------------------

    def put(
        self,
        content_id: str,
        kind: str,
        category: str,
        title: str,
        body: str,
        rank: int = 0,
        updated_at: float = 0.0,
    ) -> None:
        """Insert a content item, or fully replace it if it exists."""
        row = {
            "content_id": content_id,
            "kind": kind,
            "category": category,
            "title": title,
            "body": body,
            "rank": rank,
            "updated_at": float(updated_at),
        }
        if content_id in self._table:
            changes = {k: v for k, v in row.items() if k != "content_id"}
            self._table.update(changes, key=content_id)
        else:
            self._table.insert(row)

    def touch(self, content_id: str, body: str, updated_at: float) -> None:
        """Update an item's body (e.g. refreshed headline or quote text)."""
        if content_id not in self._table:
            raise ContentNotFound("no content item %r" % content_id)
        self._table.update({"body": body, "updated_at": float(updated_at)}, key=content_id)

    def remove(self, content_id: str) -> None:
        """Delete one content item; raises if absent."""
        if self._table.delete(key=content_id) == 0:
            raise ContentNotFound("no content item %r" % content_id)

    # -- reads ------------------------------------------------------------------

    def get(self, content_id: str) -> Dict[str, object]:
        """Fetch one content item by id; raises if absent."""
        row = self._table.get(content_id)
        if row is None:
            raise ContentNotFound("no content item %r" % content_id)
        return row

    def by_category(
        self, category: str, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Items in a category ordered by rank (the category-page query)."""
        rows = self._table.lookup("category", category)
        if kind is not None:
            rows = [row for row in rows if row["kind"] == kind]
        rows.sort(key=lambda row: (row["rank"], row["content_id"]))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def categories(self) -> List[str]:
        """All distinct content categories, sorted."""
        seen = sorted({row["category"] for row in self._table.scan()})
        return seen

    def __len__(self) -> int:
        return len(self._table)
