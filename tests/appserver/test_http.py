"""Tests for HTTP request/response objects and size accounting."""

import pytest

from repro.appserver.http import (
    DEFAULT_RESPONSE_HEADER_BYTES,
    HttpRequest,
    HttpResponse,
)
from repro.errors import ConfigurationError


class TestHttpRequest:
    def test_url_sorts_params(self):
        request = HttpRequest("/catalog.jsp", {"b": "2", "a": "1"})
        assert request.url == "/catalog.jsp?a=1&b=2"

    def test_url_without_params(self):
        assert HttpRequest("/home.jsp").url == "/home.jsp"

    def test_same_url_different_users(self):
        """Bob and Alice: identical URL, different identity."""
        bob = HttpRequest("/catalog.jsp", {"c": "Fiction"}, user_id="bob")
        alice = HttpRequest("/catalog.jsp", {"c": "Fiction"}, user_id=None)
        assert bob.url == alice.url
        assert bob.user_id != alice.user_id

    def test_payload_bytes_counts_request_line_and_headers(self):
        request = HttpRequest("/x", header_bytes=100)
        # "GET /x HTTP/1.1\r\n" = 3 + 1 + 2 + 11 = 17
        assert request.payload_bytes == 17 + 100

    def test_path_must_be_absolute(self):
        with pytest.raises(ConfigurationError):
            HttpRequest("relative")

    def test_negative_header_rejected(self):
        with pytest.raises(ConfigurationError):
            HttpRequest("/x", header_bytes=-1)

    def test_param_with_default(self):
        request = HttpRequest("/x", {"a": "1"})
        assert request.param("a") == "1"
        assert request.param("zzz", "fallback") == "fallback"


class TestHttpResponse:
    def test_payload_is_body_plus_headers(self):
        response = HttpResponse(body="x" * 100)
        assert response.body_bytes == 100
        assert response.payload_bytes == 100 + DEFAULT_RESPONSE_HEADER_BYTES

    def test_utf8_body_bytes(self):
        assert HttpResponse(body="é", header_bytes=0).payload_bytes == 2

    def test_custom_header_bytes(self):
        assert HttpResponse(body="ab", header_bytes=10).payload_bytes == 12

    def test_negative_header_rejected(self):
        with pytest.raises(ConfigurationError):
            HttpResponse(body="", header_bytes=-1)

    def test_meta_annotations(self):
        response = HttpResponse(body="", meta={"hits": 3})
        assert response.meta["hits"] == 3
