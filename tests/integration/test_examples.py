"""Smoke tests: every example script runs clean and says what it should.

Examples are documentation that executes; these tests keep them honest as
the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "cold cache" in out
        assert "warm cache" in out
        assert "<~G:0000~>" in out            # the wire template is shown
        assert "only the header regenerated" in out

    def test_books_online(self):
        out = run_example("books_online.py")
        assert out.count("WRONG PAGE") == 2   # page cache + ESI fail
        assert out.count("CORRECT") >= 2      # DPC serves both correctly
        assert "dynamic layouts" in out

    def test_brokerage(self):
        out = run_example("brokerage.py")
        assert "market ticks" in out
        assert "reduction" in out
        assert "matches the uncached oracle: True" in out

    def test_edge_network(self):
        out = run_example("edge_network.py")
        assert "session affinity" in out
        assert "failover" in out
        assert "page still correct" in out

    def test_operations(self):
        out = run_example("operations.py")
        assert "warming a cold proxy" in out
        assert "fail-stop as designed" in out
        assert "page correct: True" in out
        # Section 4: full span trees for one miss and one hit, in order.
        assert "-- cold miss --" in out
        assert "-- warm hit --" in out
        assert out.index("-- cold miss --") < out.index("-- warm hit --")
        miss, hit = out.split("-- cold miss --")[1].split("-- warm hit --")
        for tree in (miss, hit):
            assert "request" in tree and "ms" in tree
            assert "bem.process" in tree
            assert "dpc.assemble" in tree
        assert "hit=False" in miss
        assert "hit=True" in hit

    def test_flash_crowd(self):
        out = run_example("flash_crowd.py")
        assert "collapse" in out
        assert "graceful" in out
        assert "hits shed: 0" in out
        assert "0 incorrect" in out
        assert "queue_full" in out            # the drops table is printed

    def test_all_examples_exist(self):
        present = sorted(
            name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
        )
        assert present == [
            "books_online.py",
            "brokerage.py",
            "edge_network.py",
            "flash_crowd.py",
            "operations.py",
            "quickstart.py",
            "reproduce_figures.py",
        ]
