"""Table 2: baseline parameter settings, plus the derived baseline numbers.

Regenerates the parameter table and reports the closed-form quantities the
rest of the evaluation hangs off (S_NC, S_C, B_C/B_NC, savings%).
"""

from repro.analysis import (
    TABLE2,
    bytes_ratio,
    expected_bytes_cached,
    expected_bytes_no_cache,
    response_size_cached,
    response_size_no_cache,
    savings_percent,
)


def test_table2_baseline(benchmark, report):
    def compute():
        return {
            "S_NC": response_size_no_cache(TABLE2),
            "S_C": response_size_cached(TABLE2),
            "B_NC": expected_bytes_no_cache(TABLE2),
            "B_C": expected_bytes_cached(TABLE2),
            "ratio": bytes_ratio(TABLE2),
            "savings%": savings_percent(TABLE2),
        }

    derived = benchmark(compute)

    report(
        "Table 2: Baseline Parameter Settings for Analysis",
        ["parameter", "value"],
        list(TABLE2.as_table().items()),
    )
    report(
        "Derived baseline quantities (Section 5 model)",
        ["quantity", "value"],
        [
            ["S_NC (bytes/response, no cache)", "%.1f" % derived["S_NC"]],
            ["S_C (bytes/response, DPC)", "%.1f" % derived["S_C"]],
            ["B_NC (bytes over interval)", "%.3e" % derived["B_NC"]],
            ["B_C (bytes over interval)", "%.3e" % derived["B_C"]],
            ["B_C / B_NC", "%.4f" % derived["ratio"]],
            ["savings in bytes served", "%.1f%%" % derived["savings%"]],
        ],
    )

    assert derived["ratio"] < 1.0
    assert derived["savings%"] > 0.0
