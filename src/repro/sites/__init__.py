"""Reference web applications built on the substrate.

* :mod:`repro.sites.books` — BooksOnline, the paper's running e-commerce
  example (dynamic layouts, Bob/Alice correctness scenario).
* :mod:`repro.sites.financial` — the brokerage/portal of §3.2.1 and the
  deployment case study (mixed-TTL fragments, market ticks).
* :mod:`repro.sites.synthetic` — the Table 2-parameterized test application
  the Section 6 experiments run against.
"""

from . import books, financial, synthetic

__all__ = ["books", "financial", "synthetic"]
