"""Integration: the §7 forward-proxy extension — routing + coherency
working together over a multi-edge deployment of BooksOnline."""

import pytest

from repro.appserver import HttpRequest
from repro.core.coherency import ProxyGroup
from repro.core.routing import RequestRouter
from repro.network.latency import FREE
from repro.sites import books


class ForwardDeployment:
    """Three edge DPCs, one origin, session-affinity routing."""

    def __init__(self):
        self.group = ProxyGroup(capacity_per_proxy=512)
        self.router = RequestRouter()
        for name in ("edge-1", "edge-2", "edge-3"):
            self.group.add_proxy(name)
            self.router.add_proxy(name)
        self.services = books.build_services()
        self.group.attach_database(self.services.db.bus)
        # One origin server per proxy's BEM (the BEM is origin-side state
        # scoped to the proxy it manages).
        self.servers = {}
        for name in self.group.names():
            bem, _ = self.group.member(name)
            self.servers[name] = books.build_server(
                services=self.services, clock=self.group.clock, bem=bem,
                cost_model=FREE,
            )
        self.oracle = books.build_server(
            services=self.services, clock=self.group.clock, cost_model=FREE
        )

    def serve(self, request):
        proxy_name = self.router.route(request.user_id, request.session_id)
        _, dpc = self.group.member(proxy_name)
        response = self.servers[proxy_name].handle(request)
        return dpc.process_response(response.body).html, proxy_name


@pytest.fixture
def deployment():
    return ForwardDeployment()


def catalog_request(user, category="Fiction"):
    return HttpRequest(
        "/catalog.jsp", {"categoryID": category},
        user_id=user, session_id="sess-%s" % (user or "anon"),
    )


class TestRoutingAffinity:
    def test_users_stick_to_their_proxy(self, deployment):
        _, first = deployment.serve(catalog_request("user000"))
        for _ in range(5):
            _, proxy = deployment.serve(catalog_request("user000"))
            assert proxy == first

    def test_users_spread_across_proxies(self, deployment):
        proxies = {
            deployment.serve(catalog_request("user%03d" % i))[1]
            for i in range(10)
        }
        assert len(proxies) >= 2

    def test_affinity_builds_hit_ratio(self, deployment):
        for _ in range(4):
            deployment.serve(catalog_request("user001"))
        assert deployment.group.group_hit_ratio() > 0.5


class TestCorrectnessAcrossEdges:
    def test_every_edge_serves_correct_pages(self, deployment):
        for i in range(8):
            user = "user%03d" % (i % 4) if i % 2 == 0 else None
            request = catalog_request(user)
            html, _ = deployment.serve(request)
            assert html == deployment.oracle.render_reference_page(request)

    def test_update_coheres_across_all_edges(self, deployment):
        # Warm all three edges with the Fiction listing via distinct users.
        users = ["user%03d" % i for i in range(9)]
        for user in users:
            deployment.serve(catalog_request(user))

        deployment.services.db.table(books.PRODUCTS_TABLE).update(
            {"price": 3.33}, key="FIC-000"
        )

        for user in users:
            request = catalog_request(user)
            html, _ = deployment.serve(request)
            assert "$3.33" in html
            assert html == deployment.oracle.render_reference_page(request)

    def test_failover_preserves_correctness(self, deployment):
        request = catalog_request("user002")
        _, primary = deployment.serve(request)
        deployment.router.mark_down(primary)
        html, backup = deployment.serve(request)
        assert backup != primary
        assert html == deployment.oracle.render_reference_page(request)

    def test_coherency_traffic_scales_with_proxy_count(self, deployment):
        before = deployment.group.coherency_messages
        deployment.services.db.table(books.PRODUCTS_TABLE).update(
            {"price": 9.99}, key="SCI-000"
        )
        assert deployment.group.coherency_messages == before + 3
