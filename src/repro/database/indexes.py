"""Secondary hash indexes for the in-memory engine.

Equality predicates are the dominant access path for the dynamic scripts in
this reproduction (category pages look up ``category_id = ?``, profile
lookups use ``user_id = ?``), so a hash index per indexed column suffices.
Indexes also matter for the latency model: an indexed probe touches only the
matching rows, while a scan touches the whole table, and "rows touched"
feeds the per-row query cost in the generation delay model.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..errors import SchemaError


class HashIndex:
    """Maps one column's values to the set of primary keys holding them.

    ``None`` values are indexed under a private sentinel so that
    ``WHERE col = NULL``-style programmatic lookups behave consistently.
    """

    _NULL = object()

    def __init__(self, table: str, column: str) -> None:
        self.table = table
        self.column = column
        self._buckets: Dict[object, List[object]] = {}
        self.probes = 0

    @staticmethod
    def _bucket_key(value: object) -> object:
        return HashIndex._NULL if value is None else value

    def add(self, value: object, pk: object) -> None:
        """Index ``pk`` under ``value``."""
        self._buckets.setdefault(self._bucket_key(value), []).append(pk)

    def remove(self, value: object, pk: object) -> None:
        """Un-index ``pk`` from ``value``; raises if absent."""
        key = self._bucket_key(value)
        bucket = self._buckets.get(key)
        if not bucket:
            raise SchemaError(
                "index %s.%s has no entry for value %r" % (self.table, self.column, value)
            )
        bucket.remove(pk)
        if not bucket:
            del self._buckets[key]

    def lookup(self, value: object) -> List[object]:
        """Primary keys whose row has ``column == value`` (insertion order)."""
        self.probes += 1
        return list(self._buckets.get(self._bucket_key(value), ()))

    def distinct_values(self) -> Iterator[object]:
        """Iterate the distinct indexed values."""
        for key in self._buckets:
            yield None if key is self._NULL else key

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashIndex(%s.%s, %d entries)" % (self.table, self.column, len(self))
