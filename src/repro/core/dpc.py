"""The Dynamic Proxy Cache (DPC), §4.3.3.

"The structure of the DPC cache is straightforward: it is implemented as an
in-memory array of pointers to cached fragments, where the DpcKey serves as
the array index."

The DPC sits outside the site infrastructure.  For every response coming
from the origin it scans the byte stream for instruction tags (one linear
KMP pass — the ``z``-per-byte cost of the Section 5 analysis), executes the
SET/GET instructions against its slot array, and emits the assembled page.

Note the deliberate asymmetry with the BEM: the DPC holds no metadata at
all — no TTLs, no validity flags, no fragment identities.  All cache
management lives in the BEM ("All cache management functionality for the
DPC is handled by the BEM as well"), and the shared integer dpcKey is the
entire coordination protocol: no explicit BEM->DPC control messages exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import (
    AssemblyError,
    ConfigurationError,
    OversizedFragmentError,
    SlotError,
)
from . import fastpath
from .scanner import TagScanner
from .template import (
    DEFAULT_CONFIG,
    OP_GET,
    OP_SET,
    OP_TEXT,
    SENTINEL,
    GetInstruction,
    Literal,
    SetInstruction,
    Template,
    TemplateCache,
    TemplateConfig,
    parse_template,
)


@dataclass
class DpcStats:
    """Per-proxy counters used by the experiment harness."""

    responses_processed: int = 0
    template_bytes_in: int = 0    # what crossed the origin link (payload)
    page_bytes_out: int = 0       # what was delivered to clients
    fragments_set: int = 0
    fragments_get: int = 0
    literal_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        """Bytes the origin did not have to ship because of assembly."""
        return self.page_bytes_out - self.template_bytes_in


@dataclass
class AssembledPage:
    """Result of assembling one response at the proxy."""

    html: str
    template_bytes: int
    page_bytes: int
    fragments_set: int
    fragments_get: int
    #: The proxy's generation counter at assembly time.  The BEM-side
    #: resync protocol (:mod:`repro.faults.recovery`) watches this value on
    #: returning traffic to detect cold restarts.
    epoch: int = 0

    @property
    def expansion_ratio(self) -> float:
        """page bytes / template bytes — how much the DPC 'inflated'."""
        if self.template_bytes == 0:
            return 0.0
        return self.page_bytes / self.template_bytes


class DynamicProxyCache:
    """Slot array plus the scan-and-assemble loop."""

    def __init__(
        self,
        capacity: int = 1024,
        template_config: TemplateConfig = DEFAULT_CONFIG,
        name: str = "dpc",
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("DPC capacity must be positive")
        if capacity > template_config.max_key + 1:
            raise ConfigurationError(
                "capacity %d exceeds the %d keys representable with key_width=%d"
                % (capacity, template_config.max_key + 1, template_config.key_width)
            )
        self.name = name
        self.capacity = capacity
        self.template_config = template_config
        self._slots: List[Optional[str]] = [None] * capacity
        self.scanner = TagScanner(SENTINEL)
        #: LRU parse cache for the fast lane: wire string -> parsed
        #: template.  A warm proxy repeatedly receives identical GET-only
        #: wire forms; re-parsing them is avoidable interpreter cost.  The
        #: cache only affects *how* a template is obtained — scanned-byte
        #: accounting, stats, and assembled pages are byte-identical.
        self.parse_cache = TemplateCache()
        self.stats = DpcStats()
        #: Generation counter: bumped every time the slot array is wiped
        #: (cold restart).  Carried on every :class:`AssembledPage` so the
        #: BEM can detect a restart from normal SET/GET traffic and run the
        #: resync protocol instead of failing on the first stale GET.
        self.epoch = 0
        #: Duck-typed :class:`repro.insight.InsightLayer` (anything exposing
        #: ``record_dpc_wipe``); notified on :meth:`clear` only, so the
        #: assembly hot path carries no insight cost at all.
        self._insight = None

    def attach_insight(self, insight) -> None:
        """Attach a lifecycle observer notified when the slot array wipes."""
        self._insight = insight

    # -- slot primitives ---------------------------------------------------------

    def store(self, key: int, content: str) -> None:
        """Execute a SET: overwrite slot ``key`` with ``content``.

        Payloads over the configured ``max_fragment_bytes`` are rejected
        with a typed :class:`~repro.errors.OversizedFragmentError` — a
        second line of defense behind the parser's check, for callers that
        build :class:`Template` objects programmatically.
        """
        self._check_key(key)
        if len(content.encode("utf-8")) > self.template_config.max_fragment_bytes:
            raise OversizedFragmentError(
                "fragment for dpcKey %d is %d bytes (max %d) on %r"
                % (
                    key,
                    len(content.encode("utf-8")),
                    self.template_config.max_fragment_bytes,
                    self.name,
                )
            )
        self._slots[key] = content

    def fetch(self, key: int) -> str:
        """Execute a GET: read slot ``key``; empty slots are a protocol error."""
        self._check_key(key)
        content = self._slots[key]
        if content is None:
            raise AssemblyError(
                "GET for dpcKey %d but slot is empty on %r" % (key, self.name)
            )
        return content

    def slot_in_use(self, key: int) -> bool:
        """Whether slot ``key`` currently holds content."""
        self._check_key(key)
        return self._slots[key] is not None

    def occupied_slots(self) -> int:
        """How many slots hold content."""
        return sum(1 for slot in self._slots if slot is not None)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.capacity:
            raise SlotError(
                "dpcKey %d out of range [0, %d) on %r" % (key, self.capacity, self.name)
            )

    # -- the assembly loop --------------------------------------------------------

    def process_response(self, wire: str) -> AssembledPage:
        """Scan an origin response and assemble the user-deliverable page.

        This is the ISAPI-filter equivalent: one pass over the bytes, tags
        dispatched as encountered, literals copied through.  On the fast
        lanes a wire form the proxy has already parsed is served from the
        LRU parse cache; the scan-cost counter is still charged for every
        response byte (:meth:`TagScanner.charge`), so Result 1 accounting
        is identical in both lanes.
        """
        if fastpath.enabled():
            template = self.parse_cache.get(wire)
            if template is None:
                template = parse_template(
                    wire, self.template_config, scanner=self.scanner
                )
                self.parse_cache.put(wire, template)
            else:
                self.scanner.charge(len(wire))
            return self.assemble(template, wire_bytes=len(wire.encode("utf-8")))
        template = parse_template(wire, self.template_config, scanner=self.scanner)
        return self.assemble(template, wire_bytes=len(wire.encode("utf-8")))

    def assemble(self, template: Template, wire_bytes: Optional[int] = None) -> AssembledPage:
        """Execute a parsed template against the slot array.

        The fast lane runs the template's precompiled plan
        (:meth:`~repro.core.template.Template.compiled`) — literal splices
        and slot reads collected into one list, joined once — while the
        reference lane keeps the original per-instruction ``isinstance``
        walk.  Both produce the same page bytes, stats, and errors in the
        same order.
        """
        if wire_bytes is None:
            wire_bytes = template.wire_bytes()
        parts: List[str] = []
        sets = 0
        gets = 0
        if fastpath.enabled():
            slots = self._slots
            store = self.store
            append = parts.append
            for op in template.compiled():
                kind = op[0]
                if kind == OP_TEXT:
                    append(op[1])
                elif kind == OP_GET:
                    key = op[1]
                    content = slots[key] if 0 <= key < self.capacity else None
                    if content is None:
                        # Fall back to fetch() for the exact typed error.
                        content = self.fetch(key)
                    append(content)
                    gets += 1
                else:  # OP_SET
                    store(op[1], op[2])
                    append(op[2])
                    sets += 1
        else:
            for instruction in template.instructions:
                if isinstance(instruction, Literal):
                    parts.append(instruction.text)
                elif isinstance(instruction, SetInstruction):
                    self.store(instruction.key, instruction.content)
                    parts.append(instruction.content)
                    sets += 1
                elif isinstance(instruction, GetInstruction):
                    parts.append(self.fetch(instruction.key))
                    gets += 1
                else:  # pragma: no cover - exhaustive over Instruction
                    raise AssemblyError("unknown instruction %r" % (instruction,))
        html = "".join(parts)
        page_bytes = len(html.encode("utf-8"))

        self.stats.responses_processed += 1
        self.stats.template_bytes_in += wire_bytes
        self.stats.page_bytes_out += page_bytes
        self.stats.fragments_set += sets
        self.stats.fragments_get += gets
        self.stats.literal_bytes += template.literal_bytes
        return AssembledPage(
            html=html,
            template_bytes=wire_bytes,
            page_bytes=page_bytes,
            fragments_set=sets,
            fragments_get=gets,
            epoch=self.epoch,
        )

    # -- maintenance ---------------------------------------------------------------

    def clear(self) -> None:
        """Drop every slot (proxy restart) and advance the epoch.

        Safe: the BEM re-SETs on the next request for each fragment because
        its directory is the source of truth — though after a restart the
        directory must be resynchronized too (flushed, or epoch-resynced via
        :class:`repro.faults.recovery.ResyncProtocol`), or GETs would
        reference empty slots."""
        self._slots = [None] * self.capacity
        self.parse_cache.clear()
        self.epoch += 1
        if self._insight is not None:
            self._insight.record_dpc_wipe(self.epoch)

    @property
    def bytes_scanned(self) -> int:
        """Total response bytes KMP-scanned so far."""
        return self.scanner.bytes_scanned

    def metric_rows(self) -> List[tuple]:
        """Registry rows: the proxy cache's health under ``dpc.*``.

        Same rows, order, and rounding the deployment snapshot always
        published (the savings ratio appears only once pages have been
        emitted, as before).
        """
        rows: List[tuple] = [
            ("dpc.epoch", self.epoch),
            ("dpc.responses_processed", self.stats.responses_processed),
            ("dpc.template_bytes_in", self.stats.template_bytes_in),
            ("dpc.page_bytes_out", self.stats.page_bytes_out),
            ("dpc.bytes_saved", self.stats.bytes_saved),
        ]
        if self.stats.page_bytes_out:
            rows.append((
                "dpc.byte_savings_ratio",
                round(self.stats.bytes_saved / self.stats.page_bytes_out, 4),
            ))
        rows.extend([
            ("dpc.fragments_set", self.stats.fragments_set),
            ("dpc.fragments_get", self.stats.fragments_get),
            ("dpc.slots_occupied", self.occupied_slots()),
            ("dpc.capacity", self.capacity),
            ("dpc.bytes_scanned", self.bytes_scanned),
        ])
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DynamicProxyCache(%r, %d/%d slots)" % (
            self.name,
            self.occupied_slots(),
            self.capacity,
        )
