"""§7 extension bench: what edge placement buys.

Reverse-proxy mode (the paper's implementation) saves bytes *inside* the
site; forward-proxy mode saves them across the WAN and delivers pages from
next to the user — "end users would see dramatic improvements in response
time".  This bench measures both claims on one workload.
"""

from repro.harness.edge import compare_deployments


def test_edge_placement(benchmark, report):
    results = benchmark.pedantic(
        lambda: compare_deployments(requests=300, warmup=80),
        rounds=1,
        iterations=1,
    )

    rows = []
    base = results["origin_only"]
    for name in ("origin_only", "reverse_proxy", "forward_proxy"):
        r = results[name]
        rows.append(
            [
                name,
                "%.1f" % (r.mean_response_time * 1000),
                "%.1fx" % (base.mean_response_time / r.mean_response_time),
                r.wan_payload_bytes,
                "%.1f%%" % (100.0 * r.wan_payload_bytes
                            / base.wan_payload_bytes),
            ]
        )

    report(
        "Edge placement: response time and WAN traffic by deployment",
        ["deployment", "mean RT (ms)", "speedup", "WAN payload bytes",
         "vs no cache"],
        rows,
    )

    reverse = results["reverse_proxy"]
    forward = results["forward_proxy"]
    # Reverse proxy helps (generation savings) but ships full pages on the WAN.
    assert reverse.mean_response_time < base.mean_response_time
    assert reverse.wan_payload_bytes >= 0.9 * base.wan_payload_bytes
    # Forward proxy wins on both axes, decisively.
    assert forward.mean_response_time < 0.5 * reverse.mean_response_time
    assert forward.wan_payload_bytes < 0.5 * base.wan_payload_bytes
    assert forward.measured_hit_ratio > 0.9
