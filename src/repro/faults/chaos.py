"""Chaos harness: a Figure 4 testbed run under a fault schedule.

Replays a seeded workload through the standard testbed topology while a
:class:`~repro.faults.injectors.FaultSchedule` crashes the DPC, partitions
or degrades the origin link, drops messages, and corrupts directory
bookkeeping.  The harness holds the line on the assembly-correctness
invariant (DESIGN.md §6 invariant #1): every delivered page is checked
against the caching-disabled oracle, and any mismatch is counted as an
incorrect page — the chaos acceptance bar is that this count stays zero
under every fault scenario.

Fault handling per request:

* proxy down → the paper's graceful degradation (BEM bypass: serve fully
  dynamic, full-page bytes on the origin link) or, if bypass is disabled,
  a typed failure;
* transport errors → retried under a seeded
  :class:`~repro.faults.retry.RetryPolicy`; a dead-lettered response
  quarantines its unconfirmed SETs (so a recycled slot can never serve a
  predecessor's bytes) and fails the request rather than serve wrongly;
* ``AssemblyError`` (fail-stop desync) → the
  :class:`~repro.faults.recovery.ResyncProtocol` runs, then the request is
  retried once through the normal path.

The run emits a deterministic time-series of per-bucket hit ratio and
origin-link bytes, from which :func:`summarize_recovery` derives recovery
time and hit-ratio dip/re-climb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.dpc import AssembledPage
from ..errors import (
    AssemblyError,
    ConfigurationError,
    DeliveryTimeoutError,
    NetworkError,
    ProxyUnavailableError,
    RecoveryError,
)
from ..harness.testbed import Testbed, TestbedConfig
from ..network import request_message, response_message
from .degradation import DegradationStats, GracefulDegrader
from .injectors import FaultContext, FaultInjector, FaultSchedule
from .recovery import RecoveryEvent, RecoveryStats, ResyncProtocol
from .retry import DeliveryStats, ReliableDelivery, RetryPolicy


@dataclass
class ChaosConfig:
    """One chaos run: a testbed configuration plus a fault schedule."""

    testbed: TestbedConfig = field(default_factory=lambda: TestbedConfig(mode="dpc"))
    faults: List[FaultInjector] = field(default_factory=list)
    #: Time-series resolution: requests per bucket.
    bucket_requests: int = 100
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: The paper's fallback: serve fully dynamic while the DPC is down.
    #: With it off, downtime requests fail (for availability comparisons).
    bypass_when_down: bool = True
    #: Check every assembled page against the no-cache oracle.
    check_correctness: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.testbed.mode != "dpc":
            raise ConfigurationError("chaos harness requires mode='dpc'")
        if self.bucket_requests <= 0:
            raise ConfigurationError("bucket_requests must be positive")


@dataclass
class ChaosBucket:
    """One time-series point: counters over ``bucket_requests`` requests."""

    index: int
    start_request: int
    start_time: float
    requests: int = 0
    hits: int = 0
    misses: int = 0
    wire_bytes: int = 0
    bypassed: int = 0
    failed: int = 0
    incorrect: int = 0
    recoveries: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fragment hit ratio over this bucket's cacheable accesses."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


@dataclass
class ChaosResult:
    """Everything one chaos run measured."""

    requests: int
    warmup_requests: int
    buckets: List[ChaosBucket] = field(default_factory=list)
    pages_checked: int = 0
    incorrect_pages: int = 0
    recovered_requests: int = 0
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    recovery: Optional[RecoveryStats] = None
    degradation: Optional[DegradationStats] = None
    delivery: Optional[DeliveryStats] = None
    messages_dropped: int = 0

    @property
    def bypassed_requests(self) -> int:
        """Requests served fully dynamic because the DPC was unreachable."""
        return self.degradation.bypassed_requests if self.degradation else 0

    @property
    def failed_requests(self) -> int:
        """Requests that could not be served at all."""
        return self.degradation.failed_requests if self.degradation else 0

    def series(self) -> List[Tuple[float, float, int]]:
        """The time-series as (start_time, hit_ratio, wire_bytes) rows."""
        return [(b.start_time, b.hit_ratio, b.wire_bytes) for b in self.buckets]


@dataclass
class RecoverySummary:
    """Recovery metrics derived from a chaos time-series."""

    steady_hit_ratio: float
    dip_hit_ratio: float
    recovered_at: Optional[float]
    recovery_time_s: Optional[float]

    @property
    def recovered(self) -> bool:
        """Whether the hit ratio re-climbed to within tolerance."""
        return self.recovered_at is not None


def summarize_recovery(
    result: ChaosResult, fault_at: float, tolerance: float = 0.05
) -> RecoverySummary:
    """Derive crash → dip → re-climb metrics from the bucket series.

    ``steady`` is the aggregate hit ratio of complete post-warmup buckets
    that ended before ``fault_at``; recovery is the first bucket at or
    after ``fault_at`` whose hit ratio is back within ``tolerance`` of
    steady state.
    """
    pre = [
        b
        for b in result.buckets
        if b.start_request >= result.warmup_requests and b.start_time < fault_at
    ]
    pre_hits = sum(b.hits for b in pre)
    pre_total = pre_hits + sum(b.misses for b in pre)
    steady = pre_hits / pre_total if pre_total else 0.0
    post = [b for b in result.buckets if b.start_time >= fault_at]
    dip = min((b.hit_ratio for b in post), default=steady)
    recovered_at = None
    for bucket in post:
        if bucket.hit_ratio >= steady - tolerance:
            recovered_at = bucket.start_time
            break
    return RecoverySummary(
        steady_hit_ratio=steady,
        dip_hit_ratio=dip,
        recovered_at=recovered_at,
        recovery_time_s=None if recovered_at is None else recovered_at - fault_at,
    )


class ChaosHarness:
    """Runs one workload under one fault schedule and measures the damage."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.testbed = Testbed(config.testbed)
        self.resync = ResyncProtocol(self.testbed.monitor, self.testbed.dpc)
        self.degrader = GracefulDegrader(bem=self.testbed.monitor)
        self.delivery = ReliableDelivery(
            config.retry,
            clock=self.testbed.clock,
            seed=config.seed,
            tracer=self.testbed.tracer,
        )
        self.schedule = FaultSchedule(config.faults)
        self.context = FaultContext(
            clock=self.testbed.clock,
            bem=self.testbed.monitor,
            dpc=self.testbed.dpc,
            channel=self.testbed.origin_link,
        )
        self._current: Optional[ChaosBucket] = None
        self._marks = (0, 0, 0)

    # -- the run loop --------------------------------------------------------

    def run(self) -> ChaosResult:
        """Replay the workload under the fault schedule."""
        tb, config = self.testbed, self.config
        total = config.testbed.warmup_requests + config.testbed.requests
        workload = tb.build_workload().materialize(total)
        result = ChaosResult(
            requests=total, warmup_requests=config.testbed.warmup_requests
        )

        for index, timed in enumerate(workload):
            if index % config.bucket_requests == 0:
                self._open_bucket(result, index)
            tb.clock.advance_to(timed.at)
            self.schedule.tick(self.context, tb.clock.now())
            tb._churn_fragments(timed.request)
            bucket = self._current
            try:
                html, kind = self._serve(timed.request, bucket)
            except ProxyUnavailableError:
                self.degrader.record_failure()
                html, kind = None, "failed"
            self._account(result, bucket, timed.request, html, kind)

        self._close_bucket(result)
        result.recovery_events = list(self.resync.stats.events)
        result.recovery = self.resync.stats
        result.degradation = self.degrader.stats
        result.delivery = self.delivery.stats
        result.messages_dropped = tb.origin_link.messages_dropped
        return result

    # -- per-request fault-aware pipeline ------------------------------------

    def _serve(self, request, bucket: ChaosBucket) -> Tuple[Optional[str], str]:
        """One request under faults, beneath a trace root.

        The whole fault-aware pipeline — bypass, retries, fail-stop
        recovery — runs inside one ``request`` span annotated with how the
        page was ultimately produced; a request that fails outright leaves
        a root whose status records the escaping error.
        """
        with self.testbed.tracer.request_span(request, harness="chaos") as root:
            html, kind = self._serve_inner(request, bucket)
            root.annotate(kind=kind, epoch=self.testbed.monitor.epoch)
            return html, kind

    def _serve_inner(
        self, request, bucket: ChaosBucket
    ) -> Tuple[Optional[str], str]:
        tb = self.testbed
        if self.schedule.proxy_down(tb.clock.now()):
            if not self.config.bypass_when_down:
                raise ProxyUnavailableError("DPC down and bypass disabled")
            try:
                return self._serve_bypass(request), "bypass"
            except (NetworkError, DeliveryTimeoutError):
                self.degrader.record_failure()
                return None, "failed"
        try:
            assembled = self._serve_assembled(request)
        except AssemblyError:
            # Fail-stop tripped: the directory references slots the DPC no
            # longer holds.  Run recovery, then retry the request once.
            with tb.tracer.span("faults.recover", trigger="assembly_error"):
                self.resync.recover(tb.clock.now())
            bucket.recoveries += 1
            try:
                assembled = self._serve_assembled(request)
            except AssemblyError as exc:
                raise RecoveryError(
                    "assembly still failing after recovery: %s" % exc
                ) from exc
            except (NetworkError, DeliveryTimeoutError):
                self.degrader.record_failure()
                return None, "failed"
            return assembled.html, "recovered"
        except (NetworkError, DeliveryTimeoutError):
            self.degrader.record_failure()
            return None, "failed"
        # Epoch detection on normal returning traffic.
        if self.resync.observe_epoch(assembled.epoch, tb.clock.now()) is not None:
            bucket.recoveries += 1
        return assembled.html, "assembled"

    def _serve_assembled(self, request) -> AssembledPage:
        """The testbed pipeline with fault-aware, retried transfers."""
        tb = self.testbed
        config = self.config.testbed
        with tb.tracer.span("firewall.scan", direction="request"):
            tb.clock.advance(tb.firewall.scan_bytes(request.payload_bytes))
        self.delivery.deliver(
            lambda: tb.origin_link.send(
                request_message(
                    request.payload_bytes, source="external", destination="origin"
                )
            )
        )
        response = tb.server.handle(request)
        try:
            self.delivery.deliver(
                lambda: tb.origin_link.send(
                    response_message(
                        response.payload_bytes,
                        source="origin",
                        destination="external",
                        page=request.url,
                    )
                )
            )
        except (NetworkError, DeliveryTimeoutError):
            # The template never reached the proxy: every SET on it is
            # unconfirmed and must be quarantined, or a recycled slot could
            # later serve a predecessor fragment's bytes.
            self.resync.quarantine_undelivered(response.body, tb.clock.now())
            raise
        with tb.tracer.span("firewall.scan", direction="response"):
            tb.clock.advance(tb.firewall.scan_bytes(response.payload_bytes))
        with tb.tracer.span("dpc.assemble") as assemble_span:
            scanned_before = tb.dpc.bytes_scanned
            assembled = tb.dpc.process_response(response.body)
            scan_bytes = tb.dpc.bytes_scanned - scanned_before
            tb.clock.advance(
                scan_bytes * tb.firewall.scan_cost_per_byte
                + config.cost_model.assembly_cost(
                    assembled.fragments_set + assembled.fragments_get
                )
            )
            assemble_span.annotate(
                fragments_set=assembled.fragments_set,
                fragments_get=assembled.fragments_get,
            )
        return assembled

    def _serve_bypass(self, request) -> str:
        """The paper's fallback: origin generates the full page, uncached."""
        tb = self.testbed
        with tb.tracer.span("firewall.scan", direction="request"):
            tb.clock.advance(tb.firewall.scan_bytes(request.payload_bytes))
        self.delivery.deliver(
            lambda: tb.origin_link.send(
                request_message(
                    request.payload_bytes, source="external", destination="origin"
                )
            )
        )
        html = tb.render_oracle(request)
        page_bytes = len(html.encode("utf-8"))
        self.delivery.deliver(
            lambda: tb.origin_link.send(
                response_message(
                    page_bytes, source="origin", destination="external",
                    page=request.url, bypass=True,
                )
            )
        )
        with tb.tracer.span("firewall.scan", direction="response"):
            tb.clock.advance(tb.firewall.scan_bytes(page_bytes))
        self.degrader.record_bypass(page_bytes)
        return html

    # -- accounting ----------------------------------------------------------

    def _account(self, result, bucket, request, html, kind) -> None:
        bucket.requests += 1
        if kind == "bypass":
            bucket.bypassed += 1
            return
        if kind == "failed":
            bucket.failed += 1
            return
        if kind == "recovered":
            result.recovered_requests += 1
        if self.config.check_correctness:
            result.pages_checked += 1
            if html != self.testbed.render_oracle(request):
                result.incorrect_pages += 1
                bucket.incorrect += 1

    def _open_bucket(self, result: ChaosResult, index: int) -> None:
        self._close_bucket(result)
        stats = self.testbed.monitor.stats
        self._marks = (
            stats.fragment_hits,
            stats.fragment_misses,
            self.testbed.sniffer.total_wire_bytes,
        )
        self._current = ChaosBucket(
            index=len(result.buckets),
            start_request=index,
            start_time=self.testbed.clock.now(),
        )

    def _close_bucket(self, result: ChaosResult) -> None:
        if self._current is None:
            return
        stats = self.testbed.monitor.stats
        hits0, misses0, wire0 = self._marks
        bucket = self._current
        bucket.hits = stats.fragment_hits - hits0
        bucket.misses = stats.fragment_misses - misses0
        bucket.wire_bytes = self.testbed.sniffer.total_wire_bytes - wire0
        result.buckets.append(bucket)
        self._current = None


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Convenience one-shot: build the harness, run it, return the result."""
    return ChaosHarness(config).run()
