"""Simulated point-to-point links with byte accounting and latency.

A :class:`Channel` models the link between two machines in the Figure 4
topology (e.g. Origin Site <-> External).  Sending a message:

1. packetizes it under the channel's :class:`ProtocolOverheadModel`,
2. lets every attached :class:`~repro.network.sniffer.Sniffer` observe it,
3. returns the transfer time implied by the channel's bandwidth/latency,
   which the caller may add to a :class:`SimulatedClock`.

Channels are synchronous and — by default — lossless: the paper's testbed is
a quiet LAN; queueing and loss are not what its experiments measure.  The
fault-injection subsystem (:mod:`repro.faults`) can make a channel lossy or
slow through :meth:`Channel.add_fault` hooks, and partitions are modeled
with :meth:`Channel.close` / :meth:`Channel.reopen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ChannelClosed, ConfigurationError, NetworkError
from ..telemetry.tracing import NULL_TRACER
from .clock import SimulatedClock
from .message import ProtocolOverheadModel, WireMessage
from .sniffer import Sniffer


@dataclass
class LinkParameters:
    """Physical characteristics of a link.

    ``bandwidth_bytes_per_s`` of 0 means "infinitely fast" (transfer time is
    just the propagation latency); useful for tests that only count bytes.
    """

    latency_s: float = 0.0005  # one-way propagation delay (LAN-ish)
    bandwidth_bytes_per_s: float = 12_500_000.0  # 100 Mbit/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("latency cannot be negative")
        if self.bandwidth_bytes_per_s < 0:
            raise ConfigurationError("bandwidth cannot be negative")

    def transfer_time(self, wire_bytes: int) -> float:
        """Seconds to move ``wire_bytes`` across this link."""
        serialization = 0.0
        if self.bandwidth_bytes_per_s > 0:
            serialization = wire_bytes / self.bandwidth_bytes_per_s
        return self.latency_s + serialization


class Channel:
    """A monitored, bidirectional link between two named endpoints."""

    def __init__(
        self,
        name: str,
        endpoint_a: str,
        endpoint_b: str,
        link: Optional[LinkParameters] = None,
        overhead: Optional[ProtocolOverheadModel] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.name = name
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        #: Precomputed endpoint set: membership is checked on every send.
        self._ends = frozenset((endpoint_a, endpoint_b))
        self.link = link if link is not None else LinkParameters()
        self.overhead = overhead if overhead is not None else ProtocolOverheadModel()
        self.clock = clock
        self._sniffers: List[Sniffer] = []
        self._faults: List[Callable[[WireMessage], Optional[float]]] = []
        self._closed = False
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Tracer wrapping every send in a ``channel.transfer`` span.
        #: Defaults to the shared disabled tracer so sends stay cheap.
        self.tracer = NULL_TRACER

    # -- monitoring ---------------------------------------------------------

    def attach_sniffer(self, sniffer: Optional[Sniffer] = None) -> Sniffer:
        """Attach a sniffer (creating one if needed) and return it.

        The sniffer adopts this channel's overhead model so that its wire
        byte counts match what the channel charges.
        """
        if sniffer is None:
            sniffer = Sniffer(overhead=self.overhead)
        else:
            sniffer.overhead = self.overhead
        self._sniffers.append(sniffer)
        return sniffer

    def detach_sniffer(self, sniffer: Sniffer) -> None:
        """Stop a sniffer from observing this channel."""
        self._sniffers.remove(sniffer)

    # -- fault injection ----------------------------------------------------

    def add_fault(self, fault: Callable[[WireMessage], Optional[float]]) -> None:
        """Install a fault hook consulted on every send.

        A hook may raise a :class:`~repro.errors.NetworkError` subclass to
        drop the message (it never reaches the sniffers and is counted in
        ``messages_dropped``), or return a number of seconds of extra delay
        to model link degradation.  Returning ``None``/``0`` leaves the
        send untouched.
        """
        self._faults.append(fault)

    def remove_fault(self, fault: Callable[[WireMessage], Optional[float]]) -> None:
        """Uninstall a fault hook; unknown hooks are ignored (idempotent)."""
        if fault in self._faults:
            self._faults.remove(fault)

    # -- transmission -------------------------------------------------------

    def send(self, message: WireMessage) -> float:
        """Transmit a message and return the transfer time in seconds.

        The channel advances its clock (if it has one) by the transfer time,
        so latency accumulates naturally as a request/response exchange
        bounces over the topology.  Raises :class:`ChannelClosed` (a typed
        :class:`~repro.errors.NetworkError`) after :meth:`close`, and
        whatever a fault hook raises when an injected fault drops the
        message.
        """
        with self.tracer.span(
            "channel.transfer", channel=self.name, kind=message.kind
        ) as span:
            if message.trace is None:
                context = self.tracer.current_context()
                if context is not None:
                    message.trace = context
            if self._closed:
                raise ChannelClosed("channel %r is closed" % self.name)
            self._validate_endpoints(message)
            extra_delay = 0.0
            for fault in list(self._faults):
                try:
                    penalty = fault(message)
                except NetworkError:
                    self.messages_dropped += 1
                    span.set_status("dropped")
                    raise
                if penalty:
                    extra_delay += penalty
            for sniffer in self._sniffers:
                sniffer.observe(message)
            self.messages_sent += 1
            wire = message.wire_bytes(self.overhead)
            elapsed = self.link.transfer_time(wire) + extra_delay
            if self.clock is not None:
                self.clock.advance(elapsed)
            return elapsed

    def _validate_endpoints(self, message: WireMessage) -> None:
        """Messages with named endpoints must match the channel's ends."""
        ends = self._ends
        if message.source and message.destination:
            if message.source not in ends or message.destination not in ends:
                raise ConfigurationError(
                    "message %s->%s does not belong on channel %r (%s<->%s)"
                    % (
                        message.source,
                        message.destination,
                        self.name,
                        self.endpoint_a,
                        self.endpoint_b,
                    )
                )

    def close(self) -> None:
        """Close the channel; further sends raise :class:`ChannelClosed`."""
        self._closed = True

    def reopen(self) -> None:
        """Heal a partition: sends succeed again after a :meth:`close`."""
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether the channel has been closed."""
        return self._closed

    def metric_rows(self) -> List[tuple]:
        """Registry rows: delivery and drop counts under ``channel.*``."""
        return [
            ("channel.messages_sent", self.messages_sent),
            ("channel.messages_dropped", self.messages_dropped),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Channel(%r, %s<->%s, sent=%d)" % (
            self.name,
            self.endpoint_a,
            self.endpoint_b,
            self.messages_sent,
        )
