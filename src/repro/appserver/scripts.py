"""Dynamic scripts and their execution context.

"A user request maps to an invocation of a script.  This script executes
the necessary logic to generate the requested page, which involves
contacting various resources (e.g., database systems) to retrieve, process,
and format the requested content into a user deliverable HTML page." (§2)

A :class:`DynamicScript` is the JSP/ASP equivalent: a class with a ``path``
and a ``run(ctx)`` method that writes the page through the
:class:`ScriptContext`.  The context exposes the tagged-block API (wired to
the BEM when caching is on), the site's services (DBMS, CMS,
personalization), the session, and an intermediate-object memo.  Scripts
are mode-oblivious: the same script text serves the no-cache baseline and
the DPC deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..cms import ContentRepository, PersonalizationEngine, ProfileStore
from ..core.bem import BackEndMonitor
from ..core.tagging import PageBuilder, TagRegistry
from ..database import Database
from ..errors import ScriptError, ScriptNotFound
from ..network.latency import GenerationCostModel
from .http import HttpRequest
from .mvc import ComponentRegistry, TierAccounting
from .session import Session


@dataclass
class SiteServices:
    """Everything a site's scripts may touch, bundled for injection."""

    db: Database
    repository: Optional[ContentRepository] = None
    profiles: Optional[ProfileStore] = None
    personalization: Optional[PersonalizationEngine] = None
    components: ComponentRegistry = field(default_factory=ComponentRegistry)
    tags: TagRegistry = field(default_factory=TagRegistry)


class ScriptContext:
    """Per-request execution context handed to ``DynamicScript.run``."""

    def __init__(
        self,
        request: HttpRequest,
        session: Session,
        services: SiteServices,
        builder: PageBuilder,
        cost_model: GenerationCostModel,
        bem: Optional[BackEndMonitor] = None,
    ) -> None:
        self.request = request
        self.session = session
        self.services = services
        self.builder = builder
        self.cost_model = cost_model
        self.bem = bem
        self.tiers = TierAccounting()
        #: Accumulated server-side generation time (virtual seconds).
        self.generation_cost_s = cost_model.request_dispatch_s
        #: The database's share of ``generation_cost_s`` (connection waits
        #: plus per-row charges), so tracing can break out a ``db.query``
        #: span from pure compute.
        self.db_cost_s = 0.0
        #: Rows the database touched on behalf of this request's blocks.
        self.db_rows = 0

    # -- page writing -----------------------------------------------------------

    def write(self, text: str) -> "ScriptContext":
        """Emit layout markup (never cacheable, ships with every response)."""
        self.builder.literal(text)
        return self

    def block(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        generate: Callable[[], str] = None,
    ) -> "ScriptContext":
        """Execute one code block through the tagging API, with costing.

        Generation cost is charged only when the generator actually runs
        (i.e. on misses and for non-cacheable blocks); hits pay just the
        directory probe.  DB work inside the generator is measured by
        row-touch deltas and charged per row.
        """
        if generate is None:
            raise ScriptError("block %r needs a generate callable" % name)
        hops_before = self.tiers.cross_tier_hops

        def costed_generate() -> str:
            rows_before = self.services.db.total_rows_read()
            content = generate()
            rows = self.services.db.total_rows_read() - rows_before
            hops = self.tiers.cross_tier_hops - hops_before
            self.generation_cost_s += self.cost_model.block_generation_cost(
                output_bytes=len(content.encode("utf-8")),
                db_rows=rows,
                cross_tier_hops=max(hops, 1),
                needs_db_connection=rows > 0,
            )
            self.db_cost_s += self.cost_model.db_block_cost(
                db_rows=rows, needs_db_connection=rows > 0
            )
            self.db_rows += rows
            return content

        hits_before = self.builder.stats.hits
        self.builder.block(name, params, costed_generate)
        if self.builder.stats.hits > hits_before:
            self.generation_cost_s += self.cost_model.block_hit_cost()
        return self

    # -- intermediate objects ------------------------------------------------------

    def memo(
        self, key: str, compute: Callable[[], object], ttl: Optional[float] = None
    ) -> object:
        """Fetch an intermediate object via the BEM's object cache.

        This is the §3.2.2 user-profile-object pattern: fetched once, shared
        by every fragment derived from it.  Without a BEM (no-cache mode)
        the object is computed afresh, preserving oracle semantics.
        """
        if self.bem is None:
            return compute()
        return self.bem.objects.fetch(key, compute, ttl=ttl)


class DynamicScript:
    """Base class for JSP/ASP-equivalent page scripts."""

    #: Request path this script serves, e.g. "/catalog.jsp".
    path: str = ""

    def run(self, ctx: ScriptContext) -> None:  # pragma: no cover - interface
        """Build the page for one request via ``ctx`` (override)."""
        raise NotImplementedError


class ScriptRegistry:
    """Maps request paths to script instances (the servlet mapping table)."""

    def __init__(self) -> None:
        self._scripts: Dict[str, DynamicScript] = {}

    def register(self, script: DynamicScript) -> DynamicScript:
        """Map a script's path to the script instance."""
        if not script.path:
            raise ScriptError(
                "script %r has no path" % type(script).__name__
            )
        if script.path in self._scripts:
            raise ScriptError("a script is already registered at %r" % script.path)
        self._scripts[script.path] = script
        return script

    def resolve(self, path: str) -> DynamicScript:
        """The script serving ``path``; raises ScriptNotFound if absent."""
        try:
            return self._scripts[path]
        except KeyError:
            raise ScriptNotFound("no script registered at %r" % path) from None

    def paths(self) -> List[str]:
        """All registered request paths, sorted."""
        return sorted(self._scripts)

    def __len__(self) -> int:
        return len(self._scripts)
